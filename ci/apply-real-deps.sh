#!/usr/bin/env bash
# Swap the vendored dependency stand-ins (vendor/*) for their crates.io
# versions — the "real-deps overlay".
#
# Cargo features cannot change where a dependency comes *from*, and a
# `[patch.crates-io]` table pointing at vendor/ would still contact the
# registry during resolution, which the offline build environment cannot.
# So the default workspace builds purely from in-repo path crates, and this
# script rewrites the workspace manifest in place for network-capable
# environments (CI's feature-matrix job):
#
#   * drops `vendor/*` from the member lists (the stand-ins shadow the
#     crates.io package names, so they must leave the workspace),
#   * points the `[workspace.dependencies]` entries for rand / crossbeam /
#     proptest / criterion at their registry versions,
#   * removes Cargo.lock so the graph re-resolves against the registry.
#
# Afterwards, build/test with `--features real-deps` so the crates that
# care can tell the two dependency worlds apart (bench artifacts stamp it
# as `"deps": "crates.io"`).
#
# The edit is intentionally destructive to the working tree — CI applies it
# to a throwaway checkout. Locally, `git checkout -- Cargo.toml Cargo.lock`
# reverts it.
set -euo pipefail
cd "$(dirname "$0")/.."

sed -i \
  -e 's#^members = \["crates/\*", "vendor/\*"\]#members = ["crates/*"]#' \
  -e 's#^default-members = \[".", "crates/\*", "vendor/\*"\]#default-members = [".", "crates/*"]#' \
  -e 's#^rand = { path = "vendor/rand" }#rand = "0.8"#' \
  -e 's#^crossbeam = { path = "vendor/crossbeam" }#crossbeam = "0.8"#' \
  -e 's#^proptest = { path = "vendor/proptest" }#proptest = "1"#' \
  -e 's#^criterion = { path = "vendor/criterion" }#criterion = { version = "0.5", default-features = false }#' \
  Cargo.toml

if grep -q 'path = "vendor/' Cargo.toml; then
  echo "apply-real-deps: manifest rewrite incomplete — vendored entries remain" >&2
  exit 1
fi

rm -f Cargo.lock
echo "apply-real-deps: workspace now resolves rand/crossbeam/proptest/criterion from crates.io"
