//! Crash-consistency fuzz over committed segment images.
//!
//! The durability contract (see `storage::durable`) promises that a
//! damaged segment log **recovers or errors — never panics, never
//! silently yields a wrong chain**: framing damage in the final segment
//! is a torn write (discarded, recovery succeeds), anything else is
//! [`storage::DurableError::Corrupt`]. This suite pins that contract on
//! real images — v2 `CheckpointCodec` payloads produced by durable
//! simulator runs exercising commits, rollback truncations and GC prunes
//! — with an exhaustive byte-truncation sweep and seeded bit-flip fuzz,
//! on single- and multi-segment logs.

use desim::{SimDuration, SimTime};
use hc3i::core::CheckpointCodec;
use netsim::NodeId;
use simdriver::SimConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use storage::{DurableOptions, DurableStore, Recovered};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hc3i-crashfuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable simulator run exercising every frame type: genesis
/// snapshots, timer commits, a rollback truncation and a GC prune.
fn build_sim_image(dir: &Path) {
    use workload::Workload;
    let topo = netsim::Topology::new(
        vec![
            netsim::ClusterSpec {
                nodes: 3,
                intra: netsim::LinkSpec::myrinet_like(),
            };
            2
        ],
        netsim::LinkSpec::ethernet_like(),
    );
    let sends = workload::TargetCountWorkload {
        cluster_sizes: vec![3, 3],
        duration: SimDuration::from_minutes(15),
        counts: vec![vec![20, 6], vec![6, 20]],
        payload_bytes: 256,
    }
    .schedule(&desim::RngStreams::new(424242));
    let cfg = SimConfig::new(topo, SimDuration::from_minutes(15))
        .with_clc_delay(0, SimDuration::from_minutes(3))
        .with_clc_delay(1, SimDuration::from_minutes(4))
        .with_sends(sends)
        .with_fault(
            SimTime::ZERO + SimDuration::from_minutes(8),
            NodeId::new(1, 1),
        )
        .with_scripted_gc(SimTime::ZERO + SimDuration::from_minutes(13))
        .with_durable_dir(dir);
    let report = simdriver::run(cfg);
    assert!(report.total_rollbacks() >= 1, "image holds truncate frames");
}

/// Recovery under `catch_unwind`: the contract is recover-or-error, so a
/// panic is a failure wherever the damage sits.
fn recover_must_not_panic(dir: &Path, what: &str) -> Result<Recovered<CheckpointCodec>, String> {
    catch_unwind(AssertUnwindSafe(|| storage::recover(dir, &CheckpointCodec)))
        .unwrap_or_else(|_| panic!("{what}: recovery panicked"))
        .map_err(|e| e.to_string())
}

/// Chains must be internally sane however the image was damaged: strictly
/// increasing SNs with monotone DDVs (what `ClcStore::commit` asserts —
/// recovery validates *before* committing, so damage surfaces as an
/// error, not a panic or an incoherent chain).
fn assert_chains_sane(image: &Recovered<CheckpointCodec>, what: &str) {
    for (node, chain) in image.stores.iter() {
        let mut prev: Option<&storage::ClcMeta> = None;
        for e in chain.iter() {
            if let Some(p) = prev {
                assert!(p.sn < e.meta.sn, "{what}: node {node} SNs not increasing");
                assert!(
                    p.ddv.dominated_by(&e.meta.ddv),
                    "{what}: node {node} DDVs not monotone"
                );
            }
            prev = Some(&e.meta);
        }
    }
}

#[test]
fn every_truncation_point_of_a_committed_image_recovers() {
    let dir = temp_dir("truncate");
    build_sim_image(&dir);
    let bytes = std::fs::read(dir.join("seg-00000000.log")).expect("read segment");
    let full = storage::recover(&dir, &CheckpointCodec).expect("clean image recovers");

    let cut_dir = temp_dir("truncate-cut");
    std::fs::create_dir_all(&cut_dir).expect("mkdir");
    let seg = cut_dir.join("seg-00000000.log");
    for cut in 0..=bytes.len() {
        std::fs::write(&seg, &bytes[..cut]).expect("write cut");
        // Truncation only ever removes tail frames of the final segment:
        // that is precisely a torn write, so recovery must *succeed* at
        // every single byte position.
        let image = recover_must_not_panic(&cut_dir, &format!("cut at {cut}"))
            .unwrap_or_else(|e| panic!("cut at {cut}: expected recovery, got {e}"));
        assert_chains_sane(&image, &format!("cut at {cut}"));
        assert!(
            image.frames <= full.frames,
            "cut at {cut}: more frames than the intact image"
        );
        if cut < bytes.len() {
            assert!(
                image.torn.is_some() || image.frames < full.frames,
                "cut at {cut}: shortened image replayed the full frame count with no torn tail"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cut_dir);
}

/// Deterministic xorshift64* for the flip schedule.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn seeded_bit_flips_recover_or_error_never_panic() {
    let dir = temp_dir("bitflip");
    build_sim_image(&dir);
    let bytes = std::fs::read(dir.join("seg-00000000.log")).expect("read segment");

    let flip_dir = temp_dir("bitflip-cut");
    std::fs::create_dir_all(&flip_dir).expect("mkdir");
    let seg = flip_dir.join("seg-00000000.log");
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut recovered = 0u32;
    let mut errored = 0u32;
    for _ in 0..2000 {
        let pos = (rng.next() % bytes.len() as u64) as usize;
        let bit = (rng.next() % 8) as u8;
        let mut damaged = bytes.clone();
        damaged[pos] ^= 1 << bit;
        std::fs::write(&seg, &damaged).expect("write flip");
        let what = format!("flip bit {bit} of byte {pos}");
        match recover_must_not_panic(&flip_dir, &what) {
            Ok(image) => {
                assert_chains_sane(&image, &what);
                recovered += 1;
            }
            Err(_) => errored += 1,
        }
    }
    // Both outcomes must actually occur over 2000 flips: the torn-tail
    // path (framing damage in the final segment) and the corruption path
    // (e.g. a flipped byte that survives framing but fails validation).
    assert!(recovered > 0, "no flip took the torn-tail recovery path");
    assert!(
        recovered + errored == 2000,
        "accounting: {recovered} + {errored}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&flip_dir);
}

/// Fuzz a *multi-segment* log: damage in a non-final segment must
/// surface as an error, and truncating the final segment must still
/// recover. Steady-state logs are single-segment (compaction deletes
/// what it replaces), so a multi-segment directory is exactly the state
/// a crash *during* compaction leaves behind — a prefix of old segments
/// plus the complete, fsync-ed snapshot segment. Build that state by
/// stashing the old segment across a manual [`DurableStore::compact`].
#[test]
fn multi_segment_images_recover_or_error_at_every_damage_site() {
    let multi_dir = temp_dir("multiseg");
    build_sim_image(&multi_dir);
    let source = storage::recover(&multi_dir, &CheckpointCodec).expect("clean image recovers");
    let old_seg = multi_dir.join("seg-00000000.log");
    let old_bytes = std::fs::read(&old_seg).expect("read old segment");
    {
        let mut log = DurableStore::open(&multi_dir, CheckpointCodec, DurableOptions::default())
            .expect("reopen log");
        log.compact().expect("manual compaction");
    }
    // The crash-mid-compaction state: the snapshot segment exists and is
    // durable, the old segment was never deleted.
    std::fs::write(&old_seg, &old_bytes).expect("restore old segment");
    let segments = vec![old_seg, multi_dir.join("seg-00000001.log")];
    for seg in &segments {
        assert!(seg.is_file(), "{} exists", seg.display());
    }
    let full = storage::recover(&multi_dir, &CheckpointCodec).expect("multi-segment recovers");
    assert_eq!(full.segments, 2, "image spans two segments");
    for (node, chain) in source.stores.iter() {
        // The snapshot *replaces* whatever the old segment replayed, so
        // the recovered chains equal the pre-compaction state exactly.
        let rebuilt = &full.stores[node];
        assert_eq!(rebuilt.len(), chain.len(), "node {node} chain survives");
        for (a, b) in rebuilt.iter().zip(chain.iter()) {
            assert_eq!(a.meta, b.meta, "node {node} chain survives");
            assert_eq!(a.payload, b.payload, "node {node} chain survives");
        }
    }

    // Truncating the *final* segment is a torn tail: always recovers.
    let last = segments.last().expect("at least one segment").clone();
    let tail_bytes = std::fs::read(&last).expect("read final segment");
    let mut rng = Rng(0xD1B5_4A32_D192_ED03);
    for _ in 0..64 {
        let cut = (rng.next() % (tail_bytes.len() as u64 + 1)) as usize;
        std::fs::write(&last, &tail_bytes[..cut]).expect("write cut");
        let what = format!("final-segment cut at {cut}");
        let image = recover_must_not_panic(&multi_dir, &what)
            .unwrap_or_else(|e| panic!("{what}: expected recovery, got {e}"));
        assert_chains_sane(&image, &what);
    }
    std::fs::write(&last, &tail_bytes).expect("restore final segment");

    // Bit flips across *every* segment: recover-or-error, never panic;
    // flips that corrupt a non-final segment must error (a tear there is
    // not a tail).
    let mut nonfinal_errors = 0u32;
    for (i, seg) in segments.iter().enumerate() {
        let bytes = std::fs::read(seg).expect("read segment");
        for _ in 0..200 {
            let pos = (rng.next() % bytes.len() as u64) as usize;
            let bit = (rng.next() % 8) as u8;
            let mut damaged = bytes.clone();
            damaged[pos] ^= 1 << bit;
            std::fs::write(seg, &damaged).expect("write flip");
            let what = format!("segment {i} flip bit {bit} of byte {pos}");
            match recover_must_not_panic(&multi_dir, &what) {
                Ok(image) => {
                    assert!(
                        i == segments.len() - 1,
                        "{what}: damage in a non-final segment must not recover"
                    );
                    assert_chains_sane(&image, &what);
                }
                Err(_) => {
                    if i < segments.len() - 1 {
                        nonfinal_errors += 1;
                    }
                }
            }
        }
        std::fs::write(seg, &bytes).expect("restore segment");
    }
    assert!(
        nonfinal_errors > 0,
        "no flip exercised the non-final corruption path"
    );
    let _ = std::fs::remove_dir_all(&multi_dir);
}
