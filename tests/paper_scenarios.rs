//! End-to-end regression tests of the paper's evaluation shapes.
//!
//! These run the same full-fidelity experiments the bench binaries
//! regenerate, at the paper's scale (2–3 clusters × 100 nodes, 10 simulated
//! hours — tens of milliseconds of wall time each), and pin the qualitative
//! findings of §5.

use campaign::invariants::{self, FaultWave};
use desim::{RngStreams, SimDuration, SimTime};
use hc3i::prelude::*;
use netsim::NodeId;

const SEED: u64 = 20040426;

/// A fault wave window for [`invariants::rollback_waves`]: opens at the
/// fault instant and covers detection plus cascade propagation.
fn wave_at(at: SimTime, direct: Vec<usize>) -> FaultWave {
    FaultWave {
        from: at,
        until: at + SimDuration::from_minutes(5),
        direct,
    }
}

/// Seeds for the sweep variants: every paper shape must hold at each of
/// them, not just at the reference seed.
const SWEEP_SEEDS: [u64; 3] = [SEED, 7, 424242];

fn reference_run_seeded(
    seed: u64,
    c0_delay_min: Option<u64>,
    c1_delay_min: Option<u64>,
    reverse_msgs: u64,
    gc_hours: Option<u64>,
) -> RunReport {
    let w = TargetCountWorkload::paper_with_reverse_count(reverse_msgs);
    let sends = w.schedule(&RngStreams::new(seed));
    let mut cfg = SimConfig::new(Topology::paper_reference(2), w.duration)
        .with_sends(sends)
        .with_seed(seed);
    if let Some(d) = c0_delay_min {
        cfg = cfg.with_clc_delay(0, SimDuration::from_minutes(d));
    }
    if let Some(d) = c1_delay_min {
        cfg = cfg.with_clc_delay(1, SimDuration::from_minutes(d));
    }
    if let Some(h) = gc_hours {
        cfg = cfg.with_gc_interval(SimDuration::from_hours(h));
    }
    simdriver::run(cfg)
}

fn reference_run(
    c0_delay_min: Option<u64>,
    c1_delay_min: Option<u64>,
    reverse_msgs: u64,
    gc_hours: Option<u64>,
) -> RunReport {
    reference_run_seeded(SEED, c0_delay_min, c1_delay_min, reverse_msgs, gc_hours)
}

#[test]
fn table1_message_counts_are_exact() {
    let r = reference_run(Some(30), None, 11, None);
    assert_eq!(r.app_matrix[0][0], 2920);
    assert_eq!(r.app_matrix[1][1], 2497);
    assert_eq!(r.app_matrix[0][1], 145);
    assert_eq!(r.app_matrix[1][0], 11);
    assert_eq!(r.app_delivered, r.app_sent);
    assert_eq!(r.late_crossings, 0);
}

#[test]
fn figure6_unforced_falls_with_timer_forced_constant() {
    // Paper: "Cluster 0 stores some forced CLCs (8) because of the
    // communications from cluster 1. This number of forced CLCs is
    // constant."
    let delays = [10u64, 30, 60, 120];
    let runs: Vec<RunReport> = delays
        .iter()
        .map(|&d| reference_run(Some(d), None, 11, None))
        .collect();
    // Unforced strictly decreases along the sweep.
    for w in runs.windows(2) {
        assert!(
            w[0].clusters[0].unforced_clcs > w[1].clusters[0].unforced_clcs,
            "unforced must fall as the timer grows"
        );
    }
    // Forced stays constant (bounded by the 11 reverse messages).
    let forced: Vec<u64> = runs.iter().map(|r| r.clusters[0].forced_clcs).collect();
    assert!(forced.windows(2).all(|w| w[0] == w[1]), "forced {forced:?}");
    assert!(forced[0] <= 11);
}

#[test]
fn figure7_cluster1_takes_only_forced_clcs() {
    // Cluster 1's timer is infinite: all of its CLCs are forced by the
    // incoming 0→1 traffic, roughly tracking cluster 0's CLC count.
    let fast = reference_run(Some(10), None, 11, None);
    let slow = reference_run(Some(60), None, 11, None);
    for r in [&fast, &slow] {
        assert_eq!(r.clusters[1].unforced_clcs, 0);
        assert!(r.clusters[1].forced_clcs > 0);
    }
    assert!(
        fast.clusters[1].forced_clcs > slow.clusters[1].forced_clcs,
        "more cluster-0 CLCs -> more forced CLCs in cluster 1"
    );
    // Proportionality: forced in cluster 1 never exceeds cluster 0's total
    // (each forced CLC needs a fresh cluster-0 SN).
    for r in [&fast, &slow] {
        assert!(r.clusters[1].forced_clcs <= r.clusters[0].total_clcs() + 1);
    }
}

#[test]
fn figure8_cluster0_unaffected_by_cluster1_timer() {
    // Paper: "cluster 0 … do not store more CLCs even if cluster 1 timer
    // is set to 15 minutes … thanks to the low number of messages from
    // cluster 1 to cluster 0."
    let slow = reference_run(Some(30), Some(60), 11, None);
    let fast = reference_run(Some(30), Some(15), 11, None);
    let diff = (slow.clusters[0].total_clcs() as i64 - fast.clusters[0].total_clcs() as i64).abs();
    assert!(diff <= 1, "cluster 0 CLC count moved by {diff}");
    assert!(
        fast.clusters[1].total_clcs() > slow.clusters[1].total_clcs(),
        "cluster 1 itself does checkpoint more often"
    );
}

#[test]
fn figure9_forced_clcs_grow_with_reverse_traffic() {
    let counts = [10u64, 50, 110];
    let forced: Vec<u64> = counts
        .iter()
        .map(|&rev| reference_run(Some(30), Some(30), rev, None).clusters[0].forced_clcs)
        .collect();
    assert!(
        forced[0] < forced[1] && forced[1] < forced[2],
        "forced CLCs must grow with reverse traffic: {forced:?}"
    );
    // At 110 reverse messages, most CLCs in cluster 0 are forced (the
    // paper's "most of the messages will induce a forced CLC").
    let r = reference_run(Some(30), Some(30), 110, None);
    assert!(r.clusters[0].forced_clcs * 10 >= r.clusters[0].total_clcs() * 8);
}

#[test]
fn table2_gc_collapses_stored_clcs() {
    let r = reference_run(Some(30), Some(30), 103, Some(2));
    for (c, stats) in r.clusters.iter().enumerate() {
        assert!(
            stats.gc_before_after.len() >= 4,
            "cluster {c}: expected >= 4 collections in 10 h"
        );
        for &(before, after) in &stats.gc_before_after {
            assert!(after <= 3, "cluster {c}: after-GC count {after} (paper: 2)");
            assert!(before >= after);
        }
    }
}

#[test]
fn table3_three_clusters_gc() {
    let w = workload::presets::paper_three_clusters();
    let sends = w.schedule(&RngStreams::new(SEED));
    let mut cfg = SimConfig::new(Topology::paper_reference(3), w.duration)
        .with_sends(sends)
        .with_seed(SEED)
        .with_gc_interval(SimDuration::from_hours(2))
        .with_protocol(ProtocolConfig::new(vec![100, 100, 100]));
    for c in 0..3 {
        cfg = cfg.with_clc_delay(c, SimDuration::from_minutes(30));
    }
    let r = simdriver::run(cfg);
    for stats in &r.clusters {
        for &(_, after) in &stats.gc_before_after {
            assert!(after <= 4, "after-GC count {after} (paper: 2)");
        }
    }
    assert_eq!(r.late_crossings, 0);
}

#[test]
fn single_fault_recovers_within_one_period() {
    // A fault mid-run: the cluster restores its newest CLC and the work
    // lost stays below one checkpoint period.
    let w = TargetCountWorkload::paper_table1();
    let sends = w.schedule(&RngStreams::new(SEED));
    let at = SimTime::ZERO + SimDuration::from_minutes(4 * 60 + 13);
    let cfg = SimConfig::new(Topology::paper_reference(2), w.duration)
        .with_sends(sends)
        .with_clc_delay(0, SimDuration::from_minutes(30))
        .with_clc_delay(1, SimDuration::from_minutes(30))
        .with_fault(at, NodeId::new(0, 42));
    let r = simdriver::run(cfg);
    invariants::assert_clean(
        [
            invariants::soundness(&r),
            invariants::rollback_waves(&r, &[wave_at(at, vec![0])]),
            invariants::work_lost_bounded(&r, SimDuration::from_minutes(31)),
        ]
        .concat(),
    );
}

#[test]
fn fault_storm_stays_consistent() {
    // One fault every simulated hour, alternating clusters, heavy-ish
    // cross traffic: the run must stay consistent and every fault must be
    // recoverable.
    let w = TargetCountWorkload::paper_with_reverse_count(103);
    let sends = w.schedule(&RngStreams::new(SEED));
    let mut cfg = SimConfig::new(Topology::paper_reference(2), w.duration)
        .with_sends(sends)
        .with_clc_delay(0, SimDuration::from_minutes(30))
        .with_clc_delay(1, SimDuration::from_minutes(30))
        .with_gc_interval(SimDuration::from_hours(2));
    let mut waves = Vec::new();
    for h in 1..10u64 {
        let at = SimTime::ZERO + SimDuration::from_minutes(h * 60 + 11);
        cfg = cfg.with_fault(at, NodeId::new((h % 2) as u16, (h * 13 % 100) as u32));
        waves.push(wave_at(at, vec![(h % 2) as usize]));
    }
    let r = simdriver::run(cfg);
    // Exactly one rollback per directly-hit cluster per wave (a cascade in
    // the other cluster is allowed, a stray rollback anywhere is not).
    invariants::assert_clean(
        [
            invariants::soundness(&r),
            invariants::rollback_waves(&r, &waves),
        ]
        .concat(),
    );
    assert!(r.total_rollbacks() >= 9, "every fault triggered recovery");
    // The protocol kept making progress: checkpoints continued to the end.
    assert!(r.clusters[0].total_clcs() >= 15);
}

#[test]
fn detect_faults_multi_failure_sweep() {
    // The §7 replication extension, end-to-end and simulator-driven: two
    // nodes of cluster 0 fail at the same instant — one detection round
    // reaches the recovery coordinator as a single multi-failure report
    // (the engine's `DetectFaults` path) — while cluster 1 concurrently
    // loses a node of its own. Degree-2 fragment replication keeps the
    // adjacent cluster-0 pair recoverable. Swept over 3 seeds like every
    // other paper shape.
    for seed in SWEEP_SEEDS {
        let w = TargetCountWorkload::paper_with_reverse_count(103);
        let sends = w.schedule(&RngStreams::new(seed));
        let at = SimTime::ZERO + SimDuration::from_minutes(5 * 60 + 17);
        let mut cfg = SimConfig::new(Topology::paper_reference(2), w.duration)
            .with_sends(sends)
            .with_seed(seed)
            .with_protocol(
                ProtocolConfig::new(vec![100, 100])
                    .with_replication(hc3i::core::ReplicationPolicy::with_degree(2)),
            )
            .with_gc_interval(SimDuration::from_hours(2));
        for c in 0..2 {
            cfg = cfg.with_clc_delay(c, SimDuration::from_minutes(30));
        }
        // Concurrent failures: an adjacent pair in cluster 0, plus one in
        // the distinct cluster 1, all at the same simulated instant.
        cfg = cfg
            .with_fault(at, NodeId::new(0, 10))
            .with_fault(at, NodeId::new(0, 11))
            .with_fault(at, NodeId::new(1, 42));
        let r = simdriver::run(cfg);
        // Exactly one rollback per cluster: the cluster-0 pair was
        // detected *together* (a second, per-fault detection would have
        // produced a second rollback), and cluster 1 recovered its own.
        // Both waves are direct hits, so the shared invariant demands
        // exactly one rollback each, inside the window, and none outside.
        invariants::assert_clean(
            [
                invariants::soundness(&r),
                invariants::rollback_waves(&r, &[wave_at(at, vec![0, 1])]),
                invariants::work_lost_bounded(&r, SimDuration::from_minutes(31)),
            ]
            .concat(),
        );
        // The federation kept checkpointing to the end of the run.
        assert!(r.clusters[0].total_clcs() >= 15, "seed {seed}");
    }
}

#[test]
fn full_ddv_reduces_forced_clcs_on_ring() {
    // The §7 transitivity extension on a 3-cluster ring with second-hop
    // traffic: strictly fewer (or equal) forced CLCs.
    let counts = vec![vec![300, 40, 15], vec![15, 300, 40], vec![40, 15, 300]];
    let w = TargetCountWorkload {
        cluster_sizes: vec![50, 50, 50],
        duration: SimDuration::from_hours(10),
        counts,
        payload_bytes: 1024,
    };
    let sends = w.schedule(&RngStreams::new(SEED));
    let run_mode = |mode| {
        let mut cfg = SimConfig::new(
            netsim::Topology::new(
                vec![
                    netsim::ClusterSpec {
                        nodes: 50,
                        intra: netsim::LinkSpec::myrinet_like(),
                    };
                    3
                ],
                netsim::LinkSpec::ethernet_like(),
            ),
            w.duration,
        )
        .with_sends(sends.clone())
        .with_protocol(ProtocolConfig::new(vec![50, 50, 50]).with_piggyback(mode));
        for c in 0..3 {
            cfg = cfg.with_clc_delay(c, SimDuration::from_minutes(30));
        }
        simdriver::run(cfg)
    };
    let sn_only = run_mode(PiggybackMode::SnOnly);
    let full = run_mode(PiggybackMode::FullDdv);
    let f_sn: u64 = sn_only.clusters.iter().map(|c| c.forced_clcs).sum();
    let f_ddv: u64 = full.clusters.iter().map(|c| c.forced_clcs).sum();
    assert!(
        f_ddv <= f_sn,
        "transitivity must not force more: {f_ddv} vs {f_sn}"
    );
    assert_eq!(full.app_delivered, full.app_sent);
}

#[test]
fn simulation_is_deterministic_per_seed() {
    for seed in SWEEP_SEEDS {
        let a = reference_run_seeded(seed, Some(30), Some(30), 103, Some(2));
        let b = reference_run_seeded(seed, Some(30), Some(30), 103, Some(2));
        assert_eq!(a.events_processed, b.events_processed, "seed {seed}");
        assert_eq!(a.protocol_messages, b.protocol_messages, "seed {seed}");
        assert_eq!(a.clusters[0].total_clcs(), b.clusters[0].total_clcs());
        assert_eq!(a.clusters[1].gc_before_after, b.clusters[1].gc_before_after);
    }
}

// ---- seed sweeps: the paper's shapes must not be one-seed accidents ----

#[test]
fn table1_counts_are_exact_at_every_seed() {
    // TargetCountWorkload hits its per-pair targets exactly; only the send
    // *times* vary with the seed. Table 1 must therefore reproduce at any
    // seed, and every message must still be delivered.
    for seed in SWEEP_SEEDS {
        let r = reference_run_seeded(seed, Some(30), None, 11, None);
        assert_eq!(r.app_matrix[0][0], 2920, "seed {seed}");
        assert_eq!(r.app_matrix[1][1], 2497, "seed {seed}");
        assert_eq!(r.app_matrix[0][1], 145, "seed {seed}");
        assert_eq!(r.app_matrix[1][0], 11, "seed {seed}");
        assert_eq!(r.app_delivered, r.app_sent, "seed {seed}");
        assert_eq!(r.late_crossings, 0, "seed {seed}");
    }
}

#[test]
fn figure6_7_shapes_hold_across_seeds() {
    for seed in SWEEP_SEEDS {
        let runs: Vec<RunReport> = [10u64, 30, 120]
            .iter()
            .map(|&d| reference_run_seeded(seed, Some(d), None, 11, None))
            .collect();
        for w in runs.windows(2) {
            assert!(
                w[0].clusters[0].unforced_clcs > w[1].clusters[0].unforced_clcs,
                "seed {seed}: unforced must fall as the timer grows"
            );
        }
        for r in &runs {
            // Figure 6: forced CLCs in cluster 0 are bounded by the reverse
            // traffic; Figure 7: cluster 1 (timer off) takes forced only.
            assert!(r.clusters[0].forced_clcs <= 11, "seed {seed}");
            assert_eq!(r.clusters[1].unforced_clcs, 0, "seed {seed}");
            assert!(r.clusters[1].forced_clcs > 0, "seed {seed}");
        }
    }
}

#[test]
fn fault_recovery_bounded_at_every_seed() {
    for seed in SWEEP_SEEDS {
        let w = TargetCountWorkload::paper_table1();
        let sends = w.schedule(&RngStreams::new(seed));
        let at = SimTime::ZERO + SimDuration::from_minutes(4 * 60 + 13);
        let cfg = SimConfig::new(Topology::paper_reference(2), w.duration)
            .with_sends(sends)
            .with_seed(seed)
            .with_clc_delay(0, SimDuration::from_minutes(30))
            .with_clc_delay(1, SimDuration::from_minutes(30))
            .with_fault(at, NodeId::new(0, 42));
        let r = simdriver::run(cfg);
        invariants::assert_clean(
            [
                invariants::soundness(&r),
                invariants::rollback_waves(&r, &[wave_at(at, vec![0])]),
                invariants::work_lost_bounded(&r, SimDuration::from_minutes(31)),
            ]
            .concat(),
        );
    }
}

// ---- §5.2: the overhead percentages, not just the shapes ----

#[test]
fn section_5_2_overhead_percentages_within_tolerance() {
    // Paper §5.2: "if no CLC is initiated, the only protocol cost consists
    // in logging optimistically in volatile memory inter-cluster messages
    // and transmitting an integer (SN) with them" — the steady-state
    // inter-cluster overhead is the 8-byte SN piggyback plus the small ack,
    // a fraction of a percent of the payload bytes. Pin the accounting
    // exactly and the percentages within tolerance, at every sweep seed.
    for seed in SWEEP_SEEDS {
        let r = reference_run_seeded(seed, Some(30), None, 11, None);
        let intra = r.app_matrix[0][0] + r.app_matrix[1][1];
        let inter = r.app_matrix[0][1] + r.app_matrix[1][0];
        // Exact wire accounting: 1024-byte payloads, SN-only piggyback is
        // 8 bytes per inter-cluster message.
        assert_eq!(
            r.app_bytes,
            intra * 1024 + inter * (1024 + 8),
            "seed {seed}: app byte accounting"
        );
        assert_eq!(r.ack_messages, inter, "seed {seed}: one ack per delivery");
        assert_eq!(r.ack_bytes, inter * 16, "seed {seed}: 16-byte acks");
        // Piggyback overhead: 8/1032 of the inter-cluster stream ≈ 0.78 %,
        // and well under 0.03 % of the whole application stream here.
        let piggyback_pct = (inter * 8) as f64 / r.app_bytes as f64 * 100.0;
        assert!(
            piggyback_pct < 0.05,
            "seed {seed}: piggyback overhead {piggyback_pct:.4} % of app bytes"
        );
        let ack_pct = r.ack_bytes as f64 / r.app_bytes as f64 * 100.0;
        assert!(
            ack_pct < 0.05,
            "seed {seed}: ack overhead {ack_pct:.4} % of app bytes"
        );
    }
}

#[test]
fn section_5_2_no_timer_cost_is_first_contact_only() {
    // With every checkpoint timer off and one-way traffic, the only CLCs
    // in the whole 10-hour run are the first-contact forced CLC in the
    // receiving cluster — after that, the sender's SN never changes, so no
    // further message can force anything (the paper's "only protocol cost"
    // regime).
    for seed in SWEEP_SEEDS {
        let r = reference_run_seeded(seed, None, None, 0, None);
        assert_eq!(r.clusters[0].total_clcs(), 0, "seed {seed}");
        assert_eq!(r.clusters[1].unforced_clcs, 0, "seed {seed}");
        assert_eq!(
            r.clusters[1].forced_clcs, 1,
            "seed {seed}: exactly the first-contact forced CLC"
        );
        assert_eq!(r.app_delivered, r.app_sent, "seed {seed}");
    }
}
