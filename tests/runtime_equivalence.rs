//! Property test: the sharded runtime and the discrete-event simulator
//! agree on every random workload, at every shard count.
//!
//! Each case generates a random scripted scenario (sends, manual
//! checkpoints, single faults, garbage collections) and runs it twice:
//!
//! * through `simdriver`, with the steps spaced one simulated second
//!   apart (each step fully quiesces before the next — network latencies
//!   are sub-millisecond) and the checkpoints/GCs injected via the
//!   scripted `ClcNow`/`GcNow` events;
//! * through the threaded [`runtime::Federation`] at shard counts
//!   {1, 2, 8}, with a ping barrier quiescing each step.
//!
//! Both substrates produce a `RunReport` — the simulator natively, the
//! runtime through [`runtime::Federation::report`] — and the comparable
//! artifact is a fingerprint over the deterministic protocol outcomes:
//! commit counts by kind, rollback restore points and discard counts,
//! end-of-run storage and log occupancy, deliveries and soundness
//! counters. Wall-clock timings and wire-byte totals are
//! substrate-specific and excluded. All four runs must produce the
//! identical fingerprint.

use hc3i::prelude::*;
use netsim::NodeId;
use proptest::prelude::*;
use runtime::{Federation, RtEvent, RunReport, RuntimeConfig};
use std::time::Duration;

const CLUSTERS: usize = 2;
const PER_CLUSTER: u32 = 3;
const NODES: usize = CLUSTERS * PER_CLUSTER as usize;
const TICK: Duration = Duration::from_secs(10);
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn node(i: usize) -> NodeId {
    NodeId::new(
        (i / PER_CLUSTER as usize) as u16,
        (i % PER_CLUSTER as usize) as u32,
    )
}

#[derive(Debug, Clone, Copy)]
enum Step {
    Send { from: usize, to: usize },
    Checkpoint { cluster: usize },
    Fault { victim: usize },
    Gc,
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0u32..NODES as u32, 0u32..NODES as u32 - 1).prop_map(|(f, t)| {
                // Skip the sender's own slot so from != to.
                let to = if t >= f { t + 1 } else { t };
                Step::Send { from: f as usize, to: to as usize }
            }),
            2 => (0u32..CLUSTERS as u32).prop_map(|c| Step::Checkpoint { cluster: c as usize }),
            1 => (0u32..NODES as u32).prop_map(|v| Step::Fault { victim: v as usize }),
            1 => Just(Step::Gc),
        ],
        6..=14,
    )
}

/// The deterministic protocol outcomes of a run, extracted identically
/// from either substrate's `RunReport`.
/// Per cluster: (unforced commits, forced commits, rollback
/// `(restore SN, discarded)` pairs in order, GC before/after pairs,
/// stored CLCs at end, logged messages at end).
type ClusterFingerprint = (
    u64,
    u64,
    Vec<(u64, usize)>,
    Vec<(usize, usize)>,
    usize,
    usize,
);

#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    clusters: Vec<ClusterFingerprint>,
    delivered: u64,
    late_crossings: u64,
    unrecoverable: u64,
}

impl Fingerprint {
    fn of(r: &RunReport) -> Self {
        Fingerprint {
            clusters: r
                .clusters
                .iter()
                .map(|c| {
                    (
                        c.unforced_clcs,
                        c.forced_clcs,
                        c.rollbacks
                            .iter()
                            .map(|&(_, sn, discarded)| (sn.value(), discarded))
                            .collect(),
                        c.gc_before_after.clone(),
                        c.stored_clcs,
                        c.logged_messages as usize,
                    )
                })
                .collect(),
            delivered: r.app_delivered,
            late_crossings: r.late_crossings,
            unrecoverable: r.unrecoverable_faults,
        }
    }
}

fn sim_report(steps: &[Step]) -> RunReport {
    let topo = Topology::new(
        vec![
            netsim::ClusterSpec {
                nodes: PER_CLUSTER,
                intra: netsim::LinkSpec::myrinet_like(),
            };
            CLUSTERS
        ],
        netsim::LinkSpec::ethernet_like(),
    );
    let duration = SimDuration::from_secs(steps.len() as u64 + 5);
    let mut cfg = SimConfig::new(topo, duration);
    let mut sends = Vec::new();
    for (k, s) in steps.iter().enumerate() {
        let at = SimTime::ZERO + SimDuration::from_secs(1 + k as u64);
        match *s {
            Step::Send { from, to } => sends.push(workload::SendEvent {
                at,
                from: node(from),
                to: node(to),
                bytes: 512,
            }),
            Step::Checkpoint { cluster } => cfg = cfg.with_scripted_clc(at, cluster),
            Step::Fault { victim } => cfg = cfg.with_fault(at, node(victim)),
            Step::Gc => cfg = cfg.with_scripted_gc(at),
        }
    }
    cfg = cfg.with_sends(sends);
    simdriver::run(cfg)
}

fn threaded_report(steps: &[Step], shards: usize) -> RunReport {
    let fed =
        Federation::spawn(RuntimeConfig::manual(vec![PER_CLUSTER; CLUSTERS]).with_shards(shards));
    let wait = |fed: &Federation, what: &str, mut pred: Box<dyn FnMut(&RtEvent) -> bool>| {
        fed.wait_for(TICK, |e| pred(e))
            .unwrap_or_else(|| panic!("timed out waiting for {what} @ {shards} shards"));
    };
    for (k, s) in steps.iter().enumerate() {
        // Mirror the simulator's one-second step spacing with a ping
        // barrier: everything a step caused settles before the next.
        assert_eq!(fed.quiesce(4, TICK), NODES, "barrier @ {shards} shards");
        match *s {
            Step::Send { from, to } => {
                let tag = k as u64;
                fed.send_app(
                    node(from),
                    node(to),
                    hc3i::core::AppPayload { bytes: 512, tag },
                );
                wait(
                    &fed,
                    "delivery",
                    Box::new(
                        move |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == tag),
                    ),
                );
            }
            Step::Checkpoint { cluster } => {
                fed.checkpoint_now(cluster);
                wait(
                    &fed,
                    "commit",
                    Box::new(
                        move |e| matches!(e, RtEvent::Committed { cluster: c, .. } if *c == cluster),
                    ),
                );
            }
            Step::Fault { victim } => {
                let v = node(victim);
                fed.fail(v);
                // The detector reports to the lowest-ranked survivor, like
                // the simulator's recovery coordinator.
                let detector = NodeId::new(v.cluster.0, u32::from(v.rank == 0));
                fed.detect(detector, v.rank);
                wait(
                    &fed,
                    "rollback",
                    Box::new(move |e| matches!(e, RtEvent::RolledBack { node: n, .. } if *n == v)),
                );
            }
            Step::Gc => {
                fed.gc_now();
                let mut reports = 0;
                wait(
                    &fed,
                    "gc reports",
                    Box::new(move |e| {
                        if matches!(e, RtEvent::GcReport { .. }) {
                            reports += 1;
                        }
                        reports == CLUSTERS
                    }),
                );
            }
        }
    }
    assert_eq!(
        fed.quiesce(4, TICK),
        NODES,
        "final barrier @ {shards} shards"
    );
    fed.report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_workloads_fingerprint_identically(steps in steps_strategy()) {
        let sim = sim_report(&steps);
        prop_assert_eq!(&sim.late_crossings, &0u64, "sim must stay sound: {:?}", steps);
        let sim_fp = Fingerprint::of(&sim);
        for shards in SHARD_COUNTS {
            let threaded = threaded_report(&steps, shards);
            prop_assert_eq!(
                &threaded.app_sent,
                &sim.app_sent,
                "send counts disagree at {} shards on {:?}",
                shards,
                steps
            );
            let threaded_fp = Fingerprint::of(&threaded);
            prop_assert_eq!(
                &sim_fp,
                &threaded_fp,
                "substrates disagree at {} shards on {:?}",
                shards,
                steps
            );
        }
    }
}
