//! Property-based tests of the protocol's core invariants.
//!
//! Random operation sequences (sends, checkpoints, faults, garbage
//! collections) drive a real federation of `NodeEngine`s through the
//! instant test network; afterwards the run must satisfy the invariants
//! the paper's correctness argument rests on.

use hc3i::core::testkit::InstantFederation;
use hc3i::core::{gc, is_consistent_cut, recovery_line, AppPayload, ProtocolConfig};
use hc3i::core::{PiggybackMode, SeqNum};
use netsim::NodeId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Send { from: (u16, u32), to: (u16, u32) },
    Timer { cluster: usize },
    Fault { cluster: u16, rank: u32 },
    Gc,
}

/// Two clusters of three, one cluster of two.
const SIZES: [u32; 3] = [3, 3, 2];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => ((0u16..3, 0u32..3), (0u16..3, 0u32..3)).prop_filter_map(
            "distinct nodes",
            |(f, t)| {
                let from = (f.0, f.1 % SIZES[f.0 as usize]);
                let to = (t.0, t.1 % SIZES[t.0 as usize]);
                (from != to).then_some(Op::Send { from, to })
            }
        ),
        2 => (0usize..3).prop_map(|cluster| Op::Timer { cluster }),
        1 => (0u16..3, 0u32..3).prop_map(|(c, r)| Op::Fault {
            cluster: c,
            rank: r % SIZES[c as usize],
        }),
        1 => Just(Op::Gc),
    ]
}

fn run_ops(ops: &[Op], piggyback: PiggybackMode) -> InstantFederation {
    let cfg = ProtocolConfig::new(SIZES.to_vec()).with_piggyback(piggyback);
    let mut fed = InstantFederation::new(cfg);
    let mut tag = 0u64;
    for op in ops {
        match op {
            Op::Send { from, to } => {
                tag += 1;
                fed.app_send(
                    NodeId::new(from.0, from.1),
                    NodeId::new(to.0, to.1),
                    AppPayload { bytes: 256, tag },
                );
            }
            Op::Timer { cluster } => fed.fire_clc_timer(*cluster),
            Op::Fault { cluster, rank } => {
                let node = NodeId::new(*cluster, *rank);
                if !fed.engine(node).is_failed() {
                    fed.fail_node(node);
                }
            }
            Op::Gc => fed.run_gc(),
        }
    }
    fed
}

fn check_invariants(fed: &InstantFederation) {
    // 1. The consistency monitor never fired.
    assert_eq!(fed.late_crossings, 0, "intra message crossed a checkpoint");

    for (c, &size) in SIZES.iter().enumerate() {
        let coord = fed.engine(NodeId::new(c as u16, 0));
        // 2. Cluster coherence: every node of a cluster agrees on SN, DDV
        //    and the stored checkpoint stamps.
        for r in 1..size {
            let e = fed.engine(NodeId::new(c as u16, r));
            assert_eq!(e.sn(), coord.sn(), "cluster {c} rank {r} SN diverged");
            assert_eq!(e.ddv(), coord.ddv(), "cluster {c} rank {r} DDV diverged");
            assert_eq!(
                e.store().ddv_list(),
                coord.store().ddv_list(),
                "cluster {c} rank {r} store diverged"
            );
        }
        // 3. DDV self-entry equals the cluster SN (paper §3.2).
        assert_eq!(coord.ddv().get(c), coord.sn());
        // 4. DDVs are monotone across the stored CLC sequence.
        let list = coord.store().ddv_list();
        for w in list.windows(2) {
            assert!(w[0].0 < w[1].0, "SNs strictly increase");
            assert!(w[0].1.dominated_by(&w[1].1), "DDV monotone");
        }
    }

    // 5. Every single-cluster failure has a consistent recovery line
    //    computable from the *currently stored* checkpoints (GC never
    //    pruned something a failure could need).
    let lists: Vec<_> = (0..SIZES.len())
        .map(|c| fed.engine(NodeId::new(c as u16, 0)).store().ddv_list())
        .collect();
    for faulty in 0..SIZES.len() {
        let line = recovery_line(&lists, faulty);
        assert!(
            is_consistent_cut(&lists, &line.sns, &line.rolled_back),
            "failure of {faulty} yields inconsistent line {line:?}"
        );
    }

    // 6. GC minima never exceed any recovery line's restored SNs.
    let mins = gc::safe_minimum_sns(&lists);
    for faulty in 0..SIZES.len() {
        let line = recovery_line(&lists, faulty);
        for (sn, min) in line.sns.iter().zip(&mins) {
            assert!(
                sn >= min,
                "GC would prune a CLC needed after a failure of {faulty}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_random_ops_sn_only(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        let fed = run_ops(&ops, PiggybackMode::SnOnly);
        check_invariants(&fed);
    }

    #[test]
    fn invariants_hold_under_random_ops_full_ddv(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        let fed = run_ops(&ops, PiggybackMode::FullDdv);
        check_invariants(&fed);
    }

    #[test]
    fn ddv_knowledge_never_exceeds_reality(
        ops in prop::collection::vec(op_strategy(), 1..40)
    ) {
        // Fault-free runs (rollbacks legitimately leave stale stamps that
        // reference discarded SNs): a cluster's DDV entry for a peer can
        // never exceed the peer's actual sequence number, in either
        // piggyback mode — dependency tracking cannot invent knowledge.
        let ops: Vec<Op> = ops
            .into_iter()
            .filter(|o| !matches!(o, Op::Fault { .. }))
            .collect();
        for mode in [PiggybackMode::SnOnly, PiggybackMode::FullDdv] {
            let fed = run_ops(&ops, mode);
            for c in 0..SIZES.len() {
                let e = fed.engine(NodeId::new(c as u16, 0));
                for other in 0..SIZES.len() {
                    if other == c {
                        continue;
                    }
                    let peer_sn = fed.engine(NodeId::new(other as u16, 0)).sn();
                    prop_assert!(
                        e.ddv().get(other) <= peer_sn,
                        "cluster {c} claims {other} reached {} but it is at {peer_sn} ({mode:?})",
                        e.ddv().get(other)
                    );
                }
            }
        }
    }

    #[test]
    fn deliveries_never_duplicate_within_incarnation(
        ops in prop::collection::vec(op_strategy(), 1..50)
    ) {
        // Between two rollbacks of the receiving cluster, a given
        // (sender, tag) pair is delivered at most once.
        let fed = run_ops(&ops, PiggybackMode::SnOnly);
        let mut rollback_idx = 0usize;
        // Reconstruct delivery epochs per receiving cluster from the order
        // of recorded events: conservatively split on every rollback.
        let mut seen: std::collections::HashMap<(NodeId, u64, usize), u32> =
            std::collections::HashMap::new();
        let _ = &mut rollback_idx;
        // The testkit records rollbacks and deliveries separately; a full
        // interleaved log is not kept, so check the weaker global bound:
        // duplicates can appear at most (1 + rollbacks of the receiving
        // cluster) times.
        for d in &fed.deliveries {
            *seen.entry((d.from, d.payload.tag, d.to.cluster.index())).or_default() += 1;
        }
        for ((_, tag, cluster), count) in seen {
            let rb = fed
                .rollbacks
                .iter()
                .filter(|&&(c, _)| c == cluster)
                .count() as u32;
            prop_assert!(
                count <= 1 + rb,
                "tag {tag} delivered {count} times with only {rb} rollbacks in cluster {cluster}"
            );
        }
    }
}

#[test]
fn figure5_scenario_regression() {
    // The exact Figure 5 cascade as a pinned regression (the walkthrough
    // example prints it; this asserts it).
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2, 2]));
    let n = NodeId::new;
    let pay = |tag| AppPayload { bytes: 512, tag };
    fed.app_send(n(0, 0), n(1, 0), pay(1)); // m1 forces in C1
    fed.app_send(n(0, 1), n(1, 1), pay(2)); // m2 no force
    fed.fire_clc_timer(0);
    fed.app_send(n(0, 0), n(2, 0), pay(3)); // m3 forces in C2
    fed.fire_clc_timer(1);
    fed.app_send(n(1, 0), n(2, 1), pay(4)); // m4 forces in C2
    fed.fire_clc_timer(2);
    fed.app_send(n(2, 0), n(0, 0), pay(5)); // m5 forces in C0

    assert_eq!(fed.engine(n(0, 0)).sn(), SeqNum(3));
    assert_eq!(fed.engine(n(1, 0)).sn(), SeqNum(3));
    assert_eq!(fed.engine(n(2, 0)).sn(), SeqNum(4));

    fed.fail_node(n(1, 1));
    // C1 restores its latest (SN 3); C2 falls to its CLC3 (first with
    // DDV[1] >= 3); C0 falls to its CLC3 (first with DDV[2] >= 3, the one
    // stamped "4 in cluster 3's entry" in the paper's words).
    assert_eq!(fed.engine(n(1, 0)).sn(), SeqNum(3));
    assert_eq!(fed.engine(n(2, 0)).sn(), SeqNum(3));
    assert_eq!(fed.engine(n(0, 0)).sn(), SeqNum(3));
    assert_eq!(fed.late_crossings, 0);
}
