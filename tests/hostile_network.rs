//! Property-based tests of the protocol under hostile networks.
//!
//! Random partition/duplication/reorder schedules drive full simulator
//! runs; every run must satisfy the campaign invariants (no committed
//! work lost, delivered-record consistency, sound recovery) and be
//! bit-deterministic for its seed.

use campaign::invariants::{self, FaultWave};
use desim::{RngStreams, SimDuration, SimTime};
use hc3i::prelude::*;
use netsim::{ClusterSpec, HostileSpec, LinkSpec, NodeId};
use proptest::prelude::*;

fn minutes(m: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_minutes(m)
}

/// Two clusters of four on a LAN/WAN split: small enough that a full run
/// is milliseconds, real enough to exercise every protocol path.
fn small_topology() -> Topology {
    Topology::new(
        vec![
            ClusterSpec {
                nodes: 4,
                intra: LinkSpec::myrinet_like(),
            };
            2
        ],
        LinkSpec::ethernet_like(),
    )
}

/// A randomly drawn hostile schedule.
#[derive(Debug, Clone)]
struct Schedule {
    seed: u64,
    /// Duplication probability in percent (0–50).
    dup_pct: u32,
    /// Reorder probability in percent (0–50).
    reorder_pct: u32,
    /// Partition window `(start_min, len_min)` cutting cluster 0 off.
    partition: Option<(u64, u64)>,
    /// Asymmetric cut: only cluster 0's egress is severed; its ingress
    /// flows throughout the window.
    oneway: bool,
    /// Inter-cluster packet-loss probability in percent. Non-zero loss
    /// enables the host-level reliable transport — without it, a lossy
    /// wire genuinely loses committed work.
    loss_pct: u32,
    /// Whether node (0, 1) fails at minute 7.
    fault: bool,
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (
        0u64..(1 << 48),
        0u32..=50,
        0u32..=50,
        (any::<bool>(), 2u64..=6, 1u64..=2),
        any::<bool>(),
        // The issue's loss sweep: off, 1%, 10%, and an even-odds wire.
        prop_oneof![Just(0u32), Just(1), Just(10), Just(50)],
        any::<bool>(),
    )
        .prop_map(
            |(seed, dup_pct, reorder_pct, (cut, at, len), oneway, loss_pct, fault)| Schedule {
                seed,
                dup_pct,
                reorder_pct,
                partition: cut.then_some((at, len)),
                oneway,
                loss_pct,
                fault,
            },
        )
}

fn build_config(s: &Schedule) -> SimConfig {
    let sends = TargetCountWorkload {
        cluster_sizes: vec![4, 4],
        duration: SimDuration::from_minutes(8),
        counts: vec![vec![10, 6], vec![6, 10]],
        payload_bytes: 256,
    }
    .schedule(&RngStreams::new(s.seed));
    let spec = HostileSpec::seeded(s.seed ^ 0xB057)
        .with_duplication(s.dup_pct as f64 / 100.0, SimDuration::from_millis(1))
        .with_reorder(s.reorder_pct as f64 / 100.0, SimDuration::from_micros(500))
        .with_loss(s.loss_pct as f64 / 100.0);
    let mut cfg = SimConfig::new(small_topology(), SimDuration::from_minutes(10))
        .with_sends(sends)
        .with_seed(s.seed)
        .with_clc_delay(0, SimDuration::from_minutes(1))
        .with_clc_delay(1, SimDuration::from_minutes(1))
        .with_hostile(spec)
        .with_delivery_ledger();
    if s.loss_pct > 0 {
        cfg = cfg.with_reliable_transport();
    }
    if let Some((at, len)) = s.partition {
        cfg = if s.oneway {
            cfg.with_oneway_partition(minutes(at), minutes(at + len), vec![0])
        } else {
            cfg.with_partition(minutes(at), minutes(at + len), vec![0])
        };
    }
    if s.fault {
        cfg = cfg.with_fault(minutes(7), NodeId::new(0, 1));
    }
    cfg
}

fn waves(s: &Schedule) -> Vec<FaultWave> {
    if s.fault {
        vec![FaultWave {
            from: minutes(7),
            until: minutes(10),
            direct: vec![0],
        }]
    } else {
        vec![]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any random partition/duplication/reorder schedule: no committed
    /// inter-cluster work is lost, no tag is delivered twice in one
    /// incarnation, recovery stays sound, and rollbacks happen exactly
    /// when the schedule says they may.
    #[test]
    fn hostile_schedules_lose_no_committed_work(s in schedule_strategy()) {
        let (report, hostile) = simdriver::run_hostile(build_config(&s));
        invariants::assert_clean(
            [
                invariants::soundness(&report),
                invariants::rollback_waves(&report, &waves(&s)),
                invariants::no_lost_committed_work(&hostile),
                invariants::delivered_record_consistency(&hostile),
            ]
            .concat(),
        );
    }

    /// The same seed twice produces bit-identical reports and hostile
    /// statistics — the determinism contract extends to the hostile
    /// fault model.
    #[test]
    fn hostile_schedules_are_seed_deterministic(s in schedule_strategy()) {
        let (ra, ha) = simdriver::run_hostile(build_config(&s));
        let (rb, hb) = simdriver::run_hostile(build_config(&s));
        prop_assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        prop_assert_eq!(ha.duplicates_injected, hb.duplicates_injected);
        prop_assert_eq!(ha.messages_held, hb.messages_held);
        prop_assert_eq!(ha.messages_reordered, hb.messages_reordered);
        prop_assert_eq!(ha.messages_lost, hb.messages_lost);
        prop_assert_eq!(ha.retransmissions, hb.retransmissions);
        prop_assert_eq!(
            ha.ledger.as_ref().map(|l| l.delivered_tags()),
            hb.ledger.as_ref().map(|l| l.delivered_tags())
        );
    }
}

/// Full duplication (every inter-cluster message sent twice) is invisible
/// to the protocol outcome: same checkpoints, same deliveries, same
/// cluster statistics — only the ack traffic doubles, because every
/// duplicate delivery is re-acknowledged from the delivered record.
#[test]
fn full_duplication_changes_nothing_but_acks() {
    let base_cfg = || {
        let sends = TargetCountWorkload {
            cluster_sizes: vec![4, 4],
            duration: SimDuration::from_minutes(8),
            counts: vec![vec![10, 6], vec![6, 10]],
            payload_bytes: 256,
        }
        .schedule(&RngStreams::new(20040426));
        SimConfig::new(small_topology(), SimDuration::from_minutes(10))
            .with_sends(sends)
            .with_seed(20040426)
            .with_clc_delay(0, SimDuration::from_minutes(1))
            .with_clc_delay(1, SimDuration::from_minutes(1))
    };
    let baseline = simdriver::run(base_cfg());
    let (dup, hostile) =
        simdriver::run_hostile(base_cfg().with_hostile(
            HostileSpec::seeded(99).with_duplication(1.0, SimDuration::from_micros(10)),
        ));
    assert!(hostile.duplicates_injected > 0);
    assert_eq!(
        format!("{:?}", baseline.clusters),
        format!("{:?}", dup.clusters),
        "per-cluster checkpoint statistics must be duplication-blind"
    );
    assert_eq!(baseline.app_sent, dup.app_sent);
    assert_eq!(baseline.app_delivered, dup.app_delivered);
    assert_eq!(baseline.app_bytes, dup.app_bytes);
    assert_eq!(baseline.late_crossings, 0);
    assert_eq!(dup.late_crossings, 0);
    // Duplicates delivered after the original are re-acked from the
    // delivered record (extra acks); duplicates arriving while the
    // original is still held for a forced CLC are dropped without an ack
    // (acknowledging before delivery would break sender-log replay). So
    // ack traffic grows, but never past one extra ack per duplicate.
    assert!(
        dup.ack_messages > baseline.ack_messages,
        "re-acks missing: {} vs {}",
        dup.ack_messages,
        baseline.ack_messages
    );
    assert!(
        dup.ack_messages <= 2 * baseline.ack_messages,
        "more than one extra ack per duplicated delivery: {} vs {}",
        dup.ack_messages,
        baseline.ack_messages
    );
}

/// A wire that drops half of all inter-cluster traffic, with the reliable
/// transport restoring exactly-once delivery underneath the engines:
/// every workload tag still arrives, no tag arrives twice in one
/// incarnation, and the protocol outcome (checkpoints, deliveries) is
/// identical to a loss-free run — only retransmissions and acks grow.
#[test]
fn half_lossy_wire_with_transport_delivers_everything() {
    let base_cfg = || {
        let sends = TargetCountWorkload {
            cluster_sizes: vec![4, 4],
            duration: SimDuration::from_minutes(8),
            counts: vec![vec![10, 6], vec![6, 10]],
            payload_bytes: 256,
        }
        .schedule(&RngStreams::new(20040426));
        SimConfig::new(small_topology(), SimDuration::from_minutes(10))
            .with_sends(sends)
            .with_seed(20040426)
            .with_clc_delay(0, SimDuration::from_minutes(1))
            .with_clc_delay(1, SimDuration::from_minutes(1))
            .with_delivery_ledger()
    };
    let (baseline, _) = simdriver::run_hostile(base_cfg());
    let (report, hostile) = simdriver::run_hostile(
        base_cfg()
            .with_hostile(HostileSpec::seeded(0xB057).with_loss(0.5))
            .with_reliable_transport(),
    );
    assert!(hostile.messages_lost > 0, "a 50% wire must drop something");
    assert!(
        hostile.retransmissions > 0,
        "loss must force retransmission"
    );
    invariants::assert_clean(
        [
            invariants::soundness(&report),
            invariants::no_lost_committed_work(&hostile),
            invariants::delivered_record_consistency(&hostile),
        ]
        .concat(),
    );
    let ledger = hostile.ledger.as_ref().expect("ledger enabled");
    assert_eq!(ledger.undelivered(), Vec::<u64>::new());
    assert_eq!(
        baseline.app_delivered, report.app_delivered,
        "application deliveries must be loss-blind under the transport"
    );
}
