//! Property test: the conservative parallel executive is invisible.
//!
//! Each case builds a random scripted scenario — application sends,
//! manual checkpoints, faults, garbage collections, periodic CLC timers,
//! and optionally a hostile-network spec (duplication, reordering, loss
//! behind the reliable transport, scripted partitions) — and runs the
//! *identical* `SimConfig` at simulator shard counts {1, 2, 4, 8}.
//!
//! The `Debug` dump of a `RunReport` is the repo's fingerprint artifact
//! (`hc3i_baselines --fingerprint` diffs exactly these dumps), so the
//! oracle here is the strongest one available: every run must produce a
//! byte-identical report dump, and hostile runs must also agree on the
//! side statistics (counters and the per-tag delivery ledger). This
//! mirrors how `tests/runtime_equivalence.rs` proves the threaded runtime
//! against the simulator, and how PR 7 proved the calendar queue against
//! the retained heap.
//!
//! A deterministic suite below covers the parallel executive's edge
//! cases: shards with no local events, cross-shard arrivals tied at one
//! instant, lookahead shrunk by a fast link override, shard counts above
//! the cluster count, and durable runs degrading to the sequential path.

use desim::{RngStreams, SimDuration, SimTime};
use hc3i::prelude::*;
use netsim::{ClusterSpec, HostileSpec, LinkSpec, NodeId, Topology};
use proptest::prelude::*;

const CLUSTERS: usize = 8;
const PER_CLUSTER: u32 = 3;
const NODES: usize = CLUSTERS * PER_CLUSTER as usize;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn node(i: usize) -> NodeId {
    NodeId::new(
        (i / PER_CLUSTER as usize) as u16,
        (i % PER_CLUSTER as usize) as u32,
    )
}

fn topology() -> Topology {
    Topology::new(
        vec![
            ClusterSpec {
                nodes: PER_CLUSTER,
                intra: LinkSpec::myrinet_like(),
            };
            CLUSTERS
        ],
        LinkSpec::ethernet_like(),
    )
}

#[derive(Debug, Clone, Copy)]
enum Step {
    Send { from: usize, to: usize },
    Checkpoint { cluster: usize },
    Fault { victim: usize },
    Gc,
}

#[derive(Debug, Clone)]
struct Scenario {
    steps: Vec<Step>,
    seed: u64,
    /// Periodic CLC timers on clusters 0 and 5 when set.
    timers: bool,
    /// Hostile model: (duplication %, reorder %, loss %); loss enables
    /// the reliable transport, as every real lossy config does.
    hostile: Option<(u8, u8, u8)>,
    /// Scripted partition: `(group size, oneway)` cutting the first
    /// clusters off mid-run.
    partition: Option<(usize, bool)>,
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            5 => (0u32..NODES as u32, 0u32..NODES as u32 - 1).prop_map(|(f, t)| {
                // Skip the sender's own slot so from != to.
                let to = if t >= f { t + 1 } else { t };
                Step::Send { from: f as usize, to: to as usize }
            }),
            2 => (0u32..CLUSTERS as u32).prop_map(|c| Step::Checkpoint { cluster: c as usize }),
            1 => (0u32..NODES as u32).prop_map(|v| Step::Fault { victim: v as usize }),
            1 => Just(Step::Gc),
        ],
        8..=20,
    )
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        steps_strategy(),
        any::<u64>(),
        any::<bool>(),
        prop_oneof![
            1 => Just(None),
            2 => (0u8..=25, 0u8..=25, 0u8..=10).prop_map(Some),
        ],
        prop_oneof![
            1 => Just(None),
            1 => (1usize..CLUSTERS, any::<bool>()).prop_map(Some),
        ],
    )
        .prop_map(|(steps, seed, timers, hostile, partition)| Scenario {
            steps,
            seed,
            timers,
            hostile,
            partition,
        })
}

fn build_config(s: &Scenario) -> SimConfig {
    let duration = SimDuration::from_secs(s.steps.len() as u64 + 5);
    let mut cfg = SimConfig::new(topology(), duration)
        .with_seed(s.seed)
        .with_delivery_ledger();
    let mut sends = Vec::new();
    for (k, step) in s.steps.iter().enumerate() {
        let at = SimTime::ZERO + SimDuration::from_secs(1 + k as u64);
        match *step {
            Step::Send { from, to } => sends.push(workload::SendEvent {
                at,
                from: node(from),
                to: node(to),
                bytes: 512,
            }),
            Step::Checkpoint { cluster } => cfg = cfg.with_scripted_clc(at, cluster),
            Step::Fault { victim } => cfg = cfg.with_fault(at, node(victim)),
            Step::Gc => cfg = cfg.with_scripted_gc(at),
        }
    }
    cfg = cfg.with_sends(sends);
    if s.timers {
        cfg = cfg
            .with_clc_delay(0, SimDuration::from_secs(2))
            .with_clc_delay(5, SimDuration::from_secs(3));
    }
    if let Some((dup, reorder, loss)) = s.hostile {
        let spec = HostileSpec::seeded(s.seed ^ 0xB057)
            .with_duplication(dup as f64 / 100.0, SimDuration::from_millis(1))
            .with_reorder(reorder as f64 / 100.0, SimDuration::from_micros(500))
            .with_loss(loss as f64 / 100.0);
        cfg = cfg.with_hostile(spec);
        if loss > 0 {
            cfg = cfg.with_reliable_transport();
        }
    }
    if let Some((group, oneway)) = s.partition {
        let at = SimTime::ZERO + SimDuration::from_secs(2);
        let until = SimTime::ZERO + SimDuration::from_secs(4);
        let cut: Vec<u16> = (0..group as u16).collect();
        cfg = if oneway {
            cfg.with_oneway_partition(at, until, cut)
        } else {
            cfg.with_partition(at, until, cut)
        };
    }
    cfg
}

/// Run at every shard count and assert byte-identical fingerprints.
fn assert_shard_invariant(cfg: &SimConfig, label: &str) {
    let (seq_report, seq_hostile) = simdriver::run_hostile(cfg.clone().with_sim_shards(1));
    let seq_fp = format!("{seq_report:?}");
    let seq_side = format!("{seq_hostile:?}");
    for shards in SHARD_COUNTS {
        if shards == 1 {
            continue;
        }
        let (report, hostile) = simdriver::run_hostile(cfg.clone().with_sim_shards(shards));
        assert_eq!(
            seq_fp,
            format!("{report:?}"),
            "report fingerprint diverged at {shards} shards: {label}"
        );
        assert_eq!(
            seq_side,
            format!("{hostile:?}"),
            "hostile side stats diverged at {shards} shards: {label}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_workloads_fingerprint_identically_across_shards(s in scenario_strategy()) {
        let cfg = build_config(&s);
        let (seq, _) = simdriver::run_hostile(cfg.clone().with_sim_shards(1));
        let seq_fp = format!("{seq:?}");
        for shards in SHARD_COUNTS {
            if shards == 1 {
                continue;
            }
            let (report, _) = simdriver::run_hostile(cfg.clone().with_sim_shards(shards));
            prop_assert_eq!(
                &seq_fp,
                &format!("{:?}", report),
                "diverged at {} shards on {:?}",
                shards,
                s
            );
        }
    }
}

// --- Deterministic edge cases of the parallel executive ------------------

/// Shards whose clusters see no traffic at all must idle through the whole
/// run (their only event is the horizon `End`) without perturbing anyone.
#[test]
fn empty_shards_idle_to_the_horizon() {
    let sends = vec![
        workload::SendEvent {
            at: SimTime::ZERO + SimDuration::from_secs(1),
            from: node(0),
            to: node(1),
            bytes: 256,
        },
        workload::SendEvent {
            at: SimTime::ZERO + SimDuration::from_secs(2),
            from: node(1),
            to: node(2),
            bytes: 256,
        },
    ];
    // All traffic inside cluster 0: shards 2..K own only silence.
    let cfg = SimConfig::new(topology(), SimDuration::from_secs(10)).with_sends(sends);
    assert_shard_invariant(&cfg, "empty shards");
    let report = simdriver::run(cfg.with_sim_shards(8));
    assert_eq!(report.app_delivered, 2);
    assert_eq!(report.ended_at, SimTime::ZERO + SimDuration::from_secs(10));
}

/// Two clusters on different shards send to a third so that both copies
/// arrive at the very same instant (identical link classes, identical
/// payloads, same send tick). The canonical inbox key must replay the tie
/// identically at every shard count.
#[test]
fn cross_shard_same_instant_ties_replay_identically() {
    let at = SimTime::ZERO + SimDuration::from_secs(1);
    let sends = vec![
        workload::SendEvent {
            at,
            from: node(0),                                   // cluster 0
            to: node((CLUSTERS - 1) * PER_CLUSTER as usize), // cluster 7, rank 0
            bytes: 512,
        },
        workload::SendEvent {
            at,
            from: node(PER_CLUSTER as usize), // cluster 1, rank 0
            to: node((CLUSTERS - 1) * PER_CLUSTER as usize),
            bytes: 512,
        },
    ];
    let cfg = SimConfig::new(topology(), SimDuration::from_secs(6))
        .with_sends(sends)
        .with_clc_delay(CLUSTERS - 1, SimDuration::from_secs(2));
    assert_shard_invariant(&cfg, "same-instant ties");
    let report = simdriver::run(cfg.with_sim_shards(4));
    assert_eq!(report.app_delivered, 2);
}

/// Overriding one cluster pair with a much faster link shrinks the
/// conservative lookahead federation-wide (150 µs → 20 µs here); the runs
/// stay identical, just with 7.5× tighter windows. (The null-message
/// fixpoint climbs one lookahead per publish round through quiet
/// stretches, so wall time scales with `duration / lookahead` — which is
/// also why this test shrinks the lookahead, not obliterates it.)
#[test]
fn shrunken_lookahead_stays_exact() {
    let mut topo = topology();
    topo.set_inter_link(
        netsim::ClusterId(2),
        netsim::ClusterId(3),
        LinkSpec {
            latency: SimDuration::from_micros(20),
            bandwidth_bps: 1_000_000_000,
        },
    );
    assert_eq!(topo.lookahead(), SimDuration::from_micros(20));
    let sends = TargetCountWorkload {
        cluster_sizes: vec![PER_CLUSTER; CLUSTERS],
        duration: SimDuration::from_secs(6),
        counts: {
            let mut m = vec![vec![0u64; CLUSTERS]; CLUSTERS];
            m[2][3] = 40;
            m[3][2] = 40;
            m[0][7] = 10;
            m[5][5] = 25;
            m
        },
        payload_bytes: 256,
    }
    .schedule(&RngStreams::new(41));
    let cfg = SimConfig::new(topo, SimDuration::from_secs(6))
        .with_sends(sends)
        .with_clc_delay(2, SimDuration::from_secs(2))
        .with_clc_delay(3, SimDuration::from_secs(3));
    assert_shard_invariant(&cfg, "shrunken lookahead");
}

/// MTBF fault placement walks one global RNG stream; each shard must keep
/// exactly its own victims, reproducing the sequential fault schedule.
#[test]
fn mtbf_faults_land_identically_across_shards() {
    let mut topo = topology();
    topo.mtbf = Some(SimDuration::from_secs(25));
    let sends = TargetCountWorkload {
        cluster_sizes: vec![PER_CLUSTER; CLUSTERS],
        duration: SimDuration::from_secs(80),
        counts: {
            let mut m = vec![vec![4u64; CLUSTERS]; CLUSTERS];
            for (c, row) in m.iter_mut().enumerate() {
                row[c] = 8;
            }
            m
        },
        payload_bytes: 256,
    }
    .schedule(&RngStreams::new(17));
    let cfg = SimConfig::new(topo, SimDuration::from_secs(80))
        .with_sends(sends)
        .with_seed(20040426)
        .with_clc_delay(0, SimDuration::from_secs(20))
        .with_clc_delay(4, SimDuration::from_secs(30));
    assert_shard_invariant(&cfg, "mtbf faults");
    let report = simdriver::run(cfg.with_sim_shards(4));
    assert!(report.total_rollbacks() >= 1, "MTBF faults must fire");
}

/// Asking for more shards than clusters clamps; asking on a durable run
/// degrades to the sequential path. Both must be silent no-ops for the
/// report.
#[test]
fn clamped_and_degraded_shard_counts_are_benign() {
    let sends = vec![workload::SendEvent {
        at: SimTime::ZERO + SimDuration::from_secs(1),
        from: node(0),
        to: node(PER_CLUSTER as usize),
        bytes: 512,
    }];
    let cfg = SimConfig::new(topology(), SimDuration::from_secs(5))
        .with_sends(sends)
        .with_scripted_clc(SimTime::ZERO + SimDuration::from_secs(2), 0);
    let seq = format!("{:?}", simdriver::run(cfg.clone().with_sim_shards(1)));
    // 64 shards over 8 clusters: clamped to 8.
    let clamped = format!("{:?}", simdriver::run(cfg.clone().with_sim_shards(64)));
    assert_eq!(seq, clamped);
    // Durable runs force the sequential executive (global commit-frame
    // order), whatever the requested shard count.
    let dir = std::env::temp_dir().join(format!("hc3i-par-durable-{}", std::process::id()));
    let durable = format!(
        "{:?}",
        simdriver::run(cfg.with_durable_dir(&dir).with_sim_shards(4))
    );
    assert_eq!(seq, durable);
    std::fs::remove_dir_all(&dir).ok();
}
