//! Durable checkpoint storage: a run mirrored to an on-disk segment log
//! must (a) leave the in-memory run fingerprint untouched, and (b) leave
//! a log that [`storage::recover`] rebuilds to exactly the engines' final
//! CLC stores — on both substrates, across commits, rollback truncations
//! and GC prunes.

use desim::{SimDuration, SimTime};
use hc3i::core::{AppPayload, CheckpointCodec, NodeCheckpoint};
use netsim::NodeId;
use simdriver::SimConfig;
use std::path::PathBuf;
use storage::ClcStore;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hc3i-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg(duration_min: u64) -> SimConfig {
    let topo = netsim::Topology::new(
        vec![
            netsim::ClusterSpec {
                nodes: 3,
                intra: netsim::LinkSpec::myrinet_like(),
            };
            2
        ],
        netsim::LinkSpec::ethernet_like(),
    );
    SimConfig::new(topo, SimDuration::from_minutes(duration_min))
}

/// A scenario exercising every durable frame type: timer CLCs (commits),
/// a mid-run fault (rollback truncations) and a GC (prunes).
fn busy_cfg() -> SimConfig {
    use workload::Workload;
    let sends = workload::TargetCountWorkload {
        cluster_sizes: vec![3, 3],
        duration: SimDuration::from_minutes(30),
        counts: vec![vec![40, 8], vec![8, 40]],
        payload_bytes: 256,
    }
    .schedule(&desim::RngStreams::new(99));
    small_cfg(30)
        .with_clc_delay(0, SimDuration::from_minutes(5))
        .with_clc_delay(1, SimDuration::from_minutes(7))
        .with_sends(sends)
        .with_fault(
            SimTime::ZERO + SimDuration::from_minutes(17),
            NodeId::new(0, 2),
        )
        .with_scripted_gc(SimTime::ZERO + SimDuration::from_minutes(25))
}

fn assert_chains_equal(
    what: &str,
    disk: &ClcStore<NodeCheckpoint>,
    mem: &ClcStore<NodeCheckpoint>,
) {
    assert_eq!(disk.len(), mem.len(), "{what}: chain length");
    for (d, m) in disk.iter().zip(mem.iter()) {
        assert_eq!(d.meta, m.meta, "{what}: CLC metadata");
        assert_eq!(d.payload, m.payload, "{what}: checkpoint payload");
    }
}

#[test]
fn durable_mode_leaves_the_run_fingerprint_untouched() {
    let dir = temp_dir("fingerprint");
    let plain = simdriver::run(busy_cfg());
    let durable = simdriver::run(busy_cfg().with_durable_dir(&dir));
    // The durability sink is observation-only: the full report — event
    // counts, byte counters, rollback times — must be bit-identical.
    assert_eq!(format!("{plain:?}"), format!("{durable:?}"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simulator_durable_log_recovers_every_node_chain() {
    let dir = temp_dir("sim-recover");
    let report = simdriver::run(busy_cfg().with_durable_dir(&dir));
    assert!(
        report.total_rollbacks() >= 1,
        "scenario exercises a rollback"
    );
    assert!(
        !report.clusters[0].gc_before_after.is_empty(),
        "scenario exercises a GC"
    );

    let image = storage::recover(&dir, &CheckpointCodec).expect("clean log recovers");
    assert!(
        image.torn.is_none(),
        "uninterrupted run leaves no torn tail"
    );
    assert_eq!(image.stores.len(), 6, "every node has a chain");

    // CLC stores are cluster-coherent, and after the run each store holds
    // exactly what the report counted for its cluster.
    for cluster in 0..2u64 {
        let base = cluster * 3;
        let expect = report.clusters[cluster as usize].stored_clcs;
        let sns: Vec<_> = image.stores[&base].iter().map(|e| e.meta.sn).collect();
        for rank in 0..3u64 {
            let chain = &image.stores[&(base + rank)];
            assert_eq!(chain.len(), expect, "cluster {cluster} rank {rank}");
            let theirs: Vec<_> = chain.iter().map(|e| e.meta.sn).collect();
            assert_eq!(theirs, sns, "cluster {cluster} chains are coherent");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runtime_durable_log_matches_shutdown_engines() {
    use runtime::{Federation, RtEvent, RuntimeConfig};
    use std::time::Duration;

    const TICK: Duration = Duration::from_secs(10);
    let dir = temp_dir("runtime-recover");
    let fed = Federation::spawn(
        RuntimeConfig::manual(vec![3, 3])
            .with_shards(2)
            .with_durable_dir(&dir),
    );
    let n = |c: u16, r: u32| NodeId::new(c, r);
    for (i, (from, to)) in [
        (n(0, 0), n(1, 1)),
        (n(0, 1), n(0, 2)),
        (n(1, 0), n(0, 0)),
        (n(1, 2), n(1, 0)),
    ]
    .into_iter()
    .enumerate()
    {
        fed.send_app(
            from,
            to,
            AppPayload {
                bytes: 512,
                tag: i as u64,
            },
        );
        fed.wait_for(
            TICK,
            |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == i as u64),
        )
        .expect("delivery");
    }
    for c in 0..2 {
        fed.checkpoint_now(c);
        fed.wait_for(
            TICK,
            |e| matches!(e, RtEvent::Committed { cluster, .. } if *cluster == c),
        )
        .expect("commit");
    }
    fed.gc_now();
    let mut reports = 0;
    fed.wait_for(TICK, |e| {
        if matches!(e, RtEvent::GcReport { .. }) {
            reports += 1;
        }
        reports == 2
    })
    .expect("gc reports");
    assert_eq!(fed.quiesce(4, TICK), 6, "barrier before freezing state");
    let engines = fed.shutdown();

    let image = storage::recover(&dir, &CheckpointCodec).expect("clean log recovers");
    assert!(image.torn.is_none());
    for c in 0..2u16 {
        for r in 0..3u32 {
            let gidx = (c as u64) * 3 + r as u64;
            let disk = &image.stores[&gidx];
            let mem = engines[&n(c, r)].store();
            assert_chains_equal(&format!("node ({c},{r})"), disk, mem);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash-equivalence: any durable prefix of the log (what survives a hard
/// kill after the last completed fsync) recovers to a prefix-consistent
/// image — never an error, never a chain the full run didn't have. Uses a
/// fault-free, GC-free run: with only commit frames the chains grow
/// monotonically, so "prefix of the log" means "prefix of every final
/// chain" exactly. (Runs with truncate/prune frames recover to an older
/// *historic* state instead; tests/crash_consistency.rs sweeps those.)
#[test]
fn truncated_log_recovers_to_a_prefix_of_the_full_image() {
    use workload::Workload;
    let sends = workload::TargetCountWorkload {
        cluster_sizes: vec![3, 3],
        duration: SimDuration::from_minutes(30),
        counts: vec![vec![40, 8], vec![8, 40]],
        payload_bytes: 256,
    }
    .schedule(&desim::RngStreams::new(99));
    let cfg = small_cfg(30)
        .with_clc_delay(0, SimDuration::from_minutes(5))
        .with_clc_delay(1, SimDuration::from_minutes(7))
        .with_sends(sends);
    let dir = temp_dir("truncate-prefix");
    simdriver::run(cfg.with_durable_dir(&dir));
    let full = storage::recover(&dir, &CheckpointCodec).expect("clean log recovers");

    let seg = dir.join("seg-00000000.log");
    let bytes = std::fs::read(&seg).expect("read segment");
    let cut_dir = temp_dir("truncate-prefix-cut");
    std::fs::create_dir_all(&cut_dir).expect("mkdir");
    // Sampled cuts (the exhaustive per-byte sweep lives in
    // tests/crash_consistency.rs): every 97th byte plus both ends.
    let cuts: Vec<usize> = (0..bytes.len()).step_by(97).chain([bytes.len()]).collect();
    for cut in cuts {
        std::fs::write(cut_dir.join("seg-00000000.log"), &bytes[..cut]).expect("write cut");
        let image = storage::recover(&cut_dir, &CheckpointCodec)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery must succeed, got {e}"));
        for (node, chain) in image.stores.iter() {
            let reference = &full.stores[node];
            assert!(
                chain.len() <= reference.len(),
                "cut at {cut}: node {node} chain longer than the full run's"
            );
            for (mine, theirs) in chain.iter().zip(reference.iter()) {
                assert_eq!(mine.meta, theirs.meta, "cut at {cut}: node {node}");
                assert_eq!(mine.payload, theirs.payload, "cut at {cut}: node {node}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cut_dir);
}

/// The 2048-node image the bench recovers, verified end-to-end (slow —
/// run with `--ignored`; the `crash-consistency` CI job includes it).
#[test]
#[ignore = "2048-node image: slow; run explicitly or via the crash-consistency CI job"]
fn recovery_at_federation_scale() {
    let topo = netsim::Topology::new(
        vec![
            netsim::ClusterSpec {
                nodes: 16,
                intra: netsim::LinkSpec::myrinet_like(),
            };
            128
        ],
        netsim::LinkSpec::ethernet_like(),
    );
    let mut cfg = SimConfig::new(topo, SimDuration::from_minutes(30));
    for c in 0..128 {
        cfg = cfg.with_clc_delay(c, SimDuration::from_minutes(7));
    }
    let dir = temp_dir("federation-scale");
    let report = simdriver::run(cfg.with_durable_dir(&dir));
    let image = storage::recover(&dir, &CheckpointCodec).expect("clean log recovers");
    assert_eq!(image.stores.len(), 2048);
    for c in 0..128u64 {
        let expect = report.clusters[c as usize].stored_clcs;
        for r in 0..16u64 {
            assert_eq!(image.stores[&(c * 16 + r)].len(), expect);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
