//! The two substrates must agree: driving the identical scenario through
//! the instant test network and through the threaded messaging runtime
//! must leave the protocol in the same state.

use hc3i::core::testkit::InstantFederation;
use hc3i::core::{AppPayload, ProtocolConfig, SeqNum};
use netsim::NodeId;
use runtime::{Federation, RtEvent, RuntimeConfig};
use std::time::Duration;

const TICK: Duration = Duration::from_secs(5);

fn n(c: u16, r: u32) -> NodeId {
    NodeId::new(c, r)
}

/// The scripted scenario: sends, checkpoints, a fault, a GC.
#[derive(Debug, Clone, Copy)]
enum Step {
    Send(NodeId, NodeId, u64),
    Checkpoint(usize),
    Fault(NodeId),
    Gc,
}

fn scenario() -> Vec<Step> {
    use Step::*;
    vec![
        Send(n(0, 0), n(1, 1), 1),
        Send(n(0, 1), n(0, 2), 2),
        Checkpoint(0),
        Send(n(0, 2), n(1, 0), 3),
        Checkpoint(1),
        Send(n(1, 0), n(0, 0), 4),
        Fault(n(1, 2)),
        Send(n(0, 0), n(1, 1), 5),
        Gc,
        Checkpoint(0),
    ]
}

fn run_instant(steps: &[Step]) -> InstantFederation {
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![3, 3]));
    for s in steps {
        match *s {
            Step::Send(from, to, tag) => fed.app_send(from, to, AppPayload { bytes: 512, tag }),
            Step::Checkpoint(c) => fed.fire_clc_timer(c),
            Step::Fault(node) => fed.fail_node(node),
            Step::Gc => fed.run_gc(),
        }
    }
    fed
}

/// Shard counts every cross-check sweeps: the protocol state must be
/// independent of how the executor multiplexes nodes onto workers.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn run_threaded(
    steps: &[Step],
    shards: usize,
) -> std::collections::HashMap<NodeId, hc3i::core::NodeEngine> {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![3, 3]).with_shards(shards));
    for s in steps {
        // The instant federation runs each step to quiescence; mirror that
        // with a ping barrier so in-flight acks/alert consequences from the
        // previous step cannot race this step's inputs (4 rounds cover the
        // deepest chain: alert → local scan → replay → re-delivery → ack).
        assert_eq!(fed.quiesce(4, TICK), 6, "all six nodes answer the barrier");
        match *s {
            Step::Send(from, to, tag) => {
                fed.send_app(from, to, AppPayload { bytes: 512, tag });
                fed.wait_for(
                    TICK,
                    |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == tag),
                )
                .unwrap_or_else(|| panic!("delivery of tag {tag}"));
            }
            Step::Checkpoint(c) => {
                fed.checkpoint_now(c);
                fed.wait_for(
                    TICK,
                    |e| matches!(e, RtEvent::Committed { cluster, .. } if *cluster == c),
                )
                .expect("commit");
            }
            Step::Fault(node) => {
                fed.fail(node);
                let detector = n(node.cluster.0, if node.rank == 0 { 1 } else { 0 });
                fed.detect(detector, node.rank);
                fed.wait_for(
                    TICK,
                    |e| matches!(e, RtEvent::RolledBack { node: nn, .. } if *nn == node),
                )
                .expect("rollback revives the failed node");
            }
            Step::Gc => {
                fed.gc_now();
                let mut reports = 0;
                fed.wait_for(TICK, |e| {
                    if matches!(e, RtEvent::GcReport { .. }) {
                        reports += 1;
                    }
                    reports == 2
                })
                .expect("gc reports");
            }
        }
    }
    // Flush in-flight acks/alert consequences before freezing the final
    // engine states: without the barrier a message still on the wire races
    // the Shutdown envelope and the cross-check flakes.
    assert_eq!(fed.quiesce(4, TICK), 6, "all six nodes answer the barrier");
    fed.shutdown()
}

#[test]
fn instant_and_threaded_reach_the_same_protocol_state() {
    let steps = scenario();
    let instant = run_instant(&steps);
    for shards in SHARD_COUNTS {
        let threaded = run_threaded(&steps, shards);
        for c in 0..2u16 {
            for r in 0..3u32 {
                let id = n(c, r);
                let a = instant.engine(id);
                let b = &threaded[&id];
                assert_eq!(a.sn(), b.sn(), "{id} @ {shards} shards: SN mismatch");
                assert_eq!(a.ddv(), b.ddv(), "{id} @ {shards} shards: DDV mismatch");
                assert_eq!(
                    a.store().ddv_list(),
                    b.store().ddv_list(),
                    "{id} @ {shards} shards: stored CLC stamps mismatch"
                );
                assert_eq!(
                    a.epoch(),
                    b.epoch(),
                    "{id} @ {shards} shards: epoch mismatch"
                );
                assert_eq!(
                    a.log().len(),
                    b.log().len(),
                    "{id} @ {shards} shards: log length mismatch"
                );
                assert_eq!(a.late_crossings(), 0);
                assert_eq!(b.late_crossings(), 0);
            }
        }
    }
}

#[test]
fn threaded_scenario_sanity() {
    // The threaded run on its own: cluster SNs coherent at shutdown.
    let threaded = run_threaded(&scenario(), 2);
    for c in 0..2u16 {
        let sn0 = threaded[&n(c, 0)].sn();
        for r in 1..3u32 {
            assert_eq!(threaded[&n(c, r)].sn(), sn0, "cluster {c} incoherent");
        }
        assert!(sn0 >= SeqNum(2));
    }
}
