//! # HC3I — Hierarchical Checkpointing for Cluster Federations
//!
//! A full reproduction of *"A Hierarchical Checkpointing Protocol for
//! Parallel Applications in Cluster Federations"* (Monnet, Morin,
//! Badrinath — 9th IEEE FTPDS workshop, 2004): coordinated checkpointing
//! inside clusters, communication-induced checkpointing between them,
//! sender-side optimistic message logging, alert-driven rollback and
//! centralized garbage collection.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`hc3i-core`) — the protocol engine (the paper's
//!   contribution), packaged as a per-node state machine;
//! * [`desim`] — deterministic discrete-event simulation engine (the
//!   C++SIM replacement);
//! * [`netsim`] — federation network model (SAN/WAN latency+bandwidth);
//! * [`storage`] — sequence numbers, DDVs, CLC stores, message logs,
//!   neighbour replication;
//! * [`workload`] — the paper's three config files and traffic generators;
//! * [`simdriver`] — end-to-end federation simulations and reports;
//! * [`baselines`] — global-coordinated / independent / pessimistic-log
//!   comparators;
//! * [`runtime`] — a sharded multiplexed message-passing substrate
//!   (thousands of nodes on a fixed worker pool) driving the identical
//!   protocol engine.
//!
//! ## Quickstart
//!
//! ```
//! use hc3i::prelude::*;
//!
//! // Two clusters of 8 nodes over paper-like links, 1 simulated hour.
//! let topo = netsim::Topology::new(
//!     vec![netsim::ClusterSpec { nodes: 8, intra: netsim::LinkSpec::myrinet_like() }; 2],
//!     netsim::LinkSpec::ethernet_like(),
//! );
//! let sends = workload::TargetCountWorkload {
//!     cluster_sizes: vec![8, 8],
//!     duration: SimDuration::from_hours(1),
//!     counts: vec![vec![200, 20], vec![5, 200]],
//!     payload_bytes: 1024,
//! }
//! .schedule(&RngStreams::new(7));
//!
//! let report = simdriver::run(
//!     SimConfig::new(topo, SimDuration::from_hours(1))
//!         .with_clc_delay(0, SimDuration::from_minutes(10))
//!         .with_sends(sends),
//! );
//! assert_eq!(report.app_delivered, report.app_sent);
//! assert!(report.clusters[1].forced_clcs > 0, "cross traffic forces CLCs");
//! ```

pub use baselines;
pub use desim;
pub use hc3i_core as core;
pub use netsim;
pub use runtime;
pub use simdriver;
pub use storage;
pub use workload;

/// The types most programs need, in one import.
pub mod prelude {
    pub use crate::core::{Input, NodeEngine, Output, PiggybackMode, ProtocolConfig, SeqNum};
    pub use crate::{baselines, desim, netsim, simdriver, storage, workload};
    pub use desim::{RngStreams, SimDuration, SimTime};
    pub use netsim::{ClusterId, NodeId, Topology};
    pub use simdriver::{RunReport, SimConfig};
    pub use workload::{StochasticWorkload, TargetCountWorkload, Workload};
}
