//! Code coupling (the paper's Figure 1): simulation → treatment → display.
//!
//! Three modules on three clusters, traffic trickling down the pipeline,
//! MTBF-driven faults — the application class the protocol was designed
//! for. Compares the SN-only protocol with the full-DDV transitive
//! extension on the identical workload and fault schedule.
//!
//! ```text
//! cargo run --release --example code_coupling
//! ```

use hc3i::prelude::*;

fn build_config(piggyback: PiggybackMode) -> SimConfig {
    // Simulation (40 nodes) → treatment (20) → display (8).
    let topology = netsim::Topology::new(
        vec![
            netsim::ClusterSpec {
                nodes: 40,
                intra: netsim::LinkSpec::myrinet_like(),
            },
            netsim::ClusterSpec {
                nodes: 20,
                intra: netsim::LinkSpec::myrinet_like(),
            },
            netsim::ClusterSpec {
                nodes: 8,
                intra: netsim::LinkSpec::myrinet_like(),
            },
        ],
        netsim::LinkSpec::ethernet_like(),
    );

    let duration = SimDuration::from_hours(4);
    let workload = workload::presets::pipeline(3, 40, duration, 0.03);
    // The preset sizes every stage equally; reuse its pattern but with the
    // real topology sizes.
    let workload = StochasticWorkload {
        cluster_sizes: vec![40, 20, 8],
        ..workload
    };
    let sends = workload.schedule(&RngStreams::new(99));

    let mut topology = topology;
    topology.mtbf = Some(SimDuration::from_hours(2)); // several faults in 4 h

    SimConfig::new(topology, duration)
        .with_clc_delay(0, SimDuration::from_minutes(20))
        .with_clc_delay(1, SimDuration::from_minutes(30))
        .with_clc_delay(2, SimDuration::from_minutes(45))
        .with_gc_interval(SimDuration::from_hours(1))
        .with_sends(sends)
        .with_protocol(ProtocolConfig::new(vec![40, 20, 8]).with_piggyback(piggyback))
        .with_seed(7)
}

fn describe(tag: &str, report: &RunReport) {
    println!("-- {tag} --");
    for (c, s) in report.clusters.iter().enumerate() {
        let stage = ["simulation", "treatment", "display"][c];
        println!(
            "  {stage:<10} CLCs: {:>3} unforced + {:>3} forced; rollbacks: {}; lost: {:.1}s",
            s.unforced_clcs,
            s.forced_clcs,
            s.rollbacks.len(),
            s.work_lost.iter().map(|d| d.as_secs_f64()).sum::<f64>(),
        );
    }
    println!(
        "  delivered {}/{}; forced total {}; late crossings {}\n",
        report.app_delivered,
        report.app_sent,
        report.clusters.iter().map(|c| c.forced_clcs).sum::<u64>(),
        report.late_crossings
    );
}

fn main() {
    println!("== code coupling: simulation -> treatment -> display ==\n");
    let sn_only = simdriver::run(build_config(PiggybackMode::SnOnly));
    let full_ddv = simdriver::run(build_config(PiggybackMode::FullDdv));

    describe("SN-only piggybacking (the paper's protocol)", &sn_only);
    describe(
        "full-DDV piggybacking (the paper's §7 extension)",
        &full_ddv,
    );

    let f_sn: u64 = sn_only.clusters.iter().map(|c| c.forced_clcs).sum();
    let f_ddv: u64 = full_ddv.clusters.iter().map(|c| c.forced_clcs).sum();
    println!(
        "transitive dependency tracking took {} forced CLCs vs {} (SN-only)",
        f_ddv, f_sn
    );
    assert_eq!(sn_only.late_crossings, 0);
    assert_eq!(full_ddv.late_crossings, 0);
}
