//! Protocol tuning: sweep the unforced-CLC timer and plot the trade-off.
//!
//! "The protocol can be tuned according to the underlying network, the
//! application communication patterns and needs" (paper §7). This example
//! sweeps cluster 0's checkpoint timer on the reference workload and
//! prints an ASCII view of Figure 6's trade-off: frequent checkpoints cost
//! protocol traffic; rare checkpoints cost recovery time.
//!
//! ```text
//! cargo run --release --example tuning_sweep
//! ```

use hc3i::prelude::*;

fn main() {
    let duration = SimDuration::from_hours(10);
    let delays_min = [5u64, 10, 20, 30, 45, 60, 90, 120];

    println!("== CLC timer sweep, paper reference workload (10 h) ==\n");
    println!("timer  unforced  forced  total  proto_msgs   bar");

    for &d in &delays_min {
        let sends = TargetCountWorkload::paper_table1().schedule(&RngStreams::new(1));
        let report = simdriver::run(
            SimConfig::new(Topology::paper_reference(2), duration)
                .with_clc_delay(0, SimDuration::from_minutes(d))
                .with_sends(sends),
        );
        let c0 = &report.clusters[0];
        let total = c0.total_clcs();
        let bar = "#".repeat((total as usize).min(70));
        println!(
            "{:>4}m  {:>8}  {:>6}  {:>5}  {:>10}   {bar}",
            d, c0.unforced_clcs, c0.forced_clcs, total, report.protocol_messages
        );
        assert_eq!(report.late_crossings, 0);
    }

    println!(
        "\nreading: the forced component is constant (driven by the {} reverse\n\
         messages), while the unforced component falls off hyperbolically —\n\
         exactly the shape of the paper's Figure 6.",
        11
    );
}
