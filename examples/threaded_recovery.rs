//! The protocol on the hand-rolled sharded messaging layer.
//!
//! Spawns a real federation (a fixed pool of shard workers multiplexing
//! the node engines over crossbeam-channel mailboxes), exchanges
//! messages, kills a node, and watches the cluster restore its forced
//! checkpoint and the sender replay the lost delivery from its optimistic
//! log — live, not simulated.
//!
//! ```text
//! cargo run --release --example threaded_recovery
//! ```

use hc3i::core::AppPayload;
use hc3i::prelude::*;
use runtime::{Federation, RtEvent, RuntimeConfig};
use std::time::Duration;

fn main() {
    let fed = Federation::spawn(RuntimeConfig::manual(vec![3, 3]));
    let n = NodeId::new;
    let tick = Duration::from_secs(5);

    println!(
        "== sharded federation: 2 clusters x 3 nodes on {} worker(s) ==\n",
        fed.shards()
    );

    // A cross-cluster message: the receiver cluster must force a CLC
    // before delivering it.
    fed.send_app(
        n(0, 1),
        n(1, 2),
        AppPayload {
            bytes: 4096,
            tag: 7,
        },
    );
    let events = fed
        .wait_for(
            tick,
            |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 7),
        )
        .expect("delivery");
    for e in &events {
        println!("  {e:?}");
    }

    // Fail a node in the receiver cluster; detection goes to rank 0.
    println!("\n>>> failing node C1.n1, detector reports to C1.n0");
    fed.fail(n(1, 1));
    fed.detect(n(1, 0), 1);

    // The cluster rolls back to the forced CLC (whose state predates the
    // delivery), and the sender's log replays tag 7.
    let events = fed
        .wait_for(
            tick,
            |e| matches!(e, RtEvent::Delivered { payload, .. } if payload.tag == 7),
        )
        .expect("replayed delivery");
    for e in &events {
        println!("  {e:?}");
    }

    let engines = fed.shutdown();
    let receiver = &engines[&n(1, 2)];
    let sender = &engines[&n(0, 1)];
    println!("\nfinal state:");
    println!(
        "  receiver C1.n2: SN={} DDV={} ({} CLCs stored)",
        receiver.sn(),
        receiver.ddv(),
        receiver.store().len()
    );
    println!(
        "  sender   C0.n1: SN={} log entries={} (ack: {:?})",
        sender.sn(),
        sender.log().len(),
        sender.log().iter().next().map(|e| e.ack_sn)
    );
    assert!(!receiver.is_failed());
    assert_eq!(sender.sn(), SeqNum(1), "sender cluster never rolled back");
}
