//! Quickstart: a two-cluster federation, cross-cluster traffic, one fault.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hc3i::prelude::*;

fn main() {
    // Two clusters of 16 nodes on paper-like links (Myrinet-like SANs,
    // Ethernet-like inter-cluster link).
    let topology = netsim::Topology::new(
        vec![
            netsim::ClusterSpec {
                nodes: 16,
                intra: netsim::LinkSpec::myrinet_like(),
            };
            2
        ],
        netsim::LinkSpec::ethernet_like(),
    );

    // One simulated hour: simulation runs on cluster 0 and streams results
    // to a post-processing module on cluster 1.
    let duration = SimDuration::from_hours(1);
    let sends = TargetCountWorkload {
        cluster_sizes: vec![16, 16],
        duration,
        counts: vec![vec![400, 40], vec![4, 350]],
        payload_bytes: 2048,
    }
    .schedule(&RngStreams::new(2024));

    // Checkpoint cluster 0 every 10 minutes; cluster 1 only when the
    // protocol forces it. Collect garbage twice. Kill node 7 of cluster 0
    // at minute 35.
    let report = simdriver::run(
        SimConfig::new(topology, duration)
            .with_clc_delay(0, SimDuration::from_minutes(10))
            .with_gc_interval(SimDuration::from_minutes(25))
            .with_sends(sends)
            .with_fault(
                SimTime::ZERO + SimDuration::from_minutes(35),
                NodeId::new(0, 7),
            ),
    );

    println!("== quickstart: 2 clusters x 16 nodes, 1 simulated hour ==\n");
    print!("{}", report.format_app_matrix());
    println!();
    for (c, s) in report.clusters.iter().enumerate() {
        println!(
            "cluster {c}: {} CLCs ({} unforced, {} forced), {} stored at end",
            s.total_clcs(),
            s.unforced_clcs,
            s.forced_clcs,
            s.stored_clcs
        );
    }
    for (c, s) in report.clusters.iter().enumerate() {
        for (i, &(at, sn, _)) in s.rollbacks.iter().enumerate() {
            println!(
                "cluster {c} rollback #{}: at {at} restored CLC {sn}, {} of work lost",
                i + 1,
                s.work_lost[i]
            );
        }
    }
    println!(
        "\ndelivered {}/{} application messages; {} protocol messages; \
         consistency monitor: {} late crossings",
        report.app_delivered, report.app_sent, report.protocol_messages, report.late_crossings
    );
    assert_eq!(report.late_crossings, 0, "run must be consistent");
}
