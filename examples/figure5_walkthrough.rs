//! A step-by-step replay of the paper's Figure 5 worked example.
//!
//! Three clusters; messages m1..m5 drive forced CLCs and DDV updates; a
//! fault in cluster 2 (paper numbering: "cluster 2", our index 1) triggers
//! the alert cascade. The protocol state is printed after every step so
//! the run can be compared against the paper's three snapshots.
//!
//! ```text
//! cargo run --example figure5_walkthrough
//! ```

use hc3i::core::testkit::InstantFederation;
use hc3i::core::{AppPayload, ProtocolConfig};
use hc3i::prelude::*;

fn show(fed: &InstantFederation, caption: &str) {
    println!("--- {caption}");
    for c in 0..3u16 {
        let e = fed.engine(NodeId::new(c, 0));
        let stored: Vec<String> = e
            .store()
            .iter()
            .map(|entry| {
                format!(
                    "CLC{}{}{}",
                    entry.meta.sn,
                    if entry.meta.forced { "*" } else { "" },
                    entry.meta.ddv
                )
            })
            .collect();
        println!(
            "  C{c}: SN={} DDV={} stored: {}",
            e.sn(),
            e.ddv(),
            stored.join(" ")
        );
    }
    println!();
}

fn main() {
    println!("== Figure 5 walkthrough (paper cluster k = our C(k-1)) ==\n");
    println!("(* marks forced CLCs; DDVs are [C0 C1 C2])\n");

    // Three clusters of two nodes each (the cluster size does not change
    // the protocol state; two nodes keep the trace readable).
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2, 2]));
    let pay = |tag| AppPayload { bytes: 512, tag };
    let n = NodeId::new;

    show(&fed, "start: every cluster holds its initial CLC (SN 1)");

    // m1: C0 -> C1 carrying SN 1; C1's DDV[0] = 0 < 1: forced CLC.
    fed.app_send(n(0, 0), n(1, 0), pay(1));
    show(&fed, "m1: C0->C1 (SN 1) forces a CLC in C1 before delivery");

    // m2: C0 -> C1 again with SN 1: no new CLC in C0, so no force.
    fed.app_send(n(0, 1), n(1, 1), pay(2));
    show(&fed, "m2: C0->C1 (still SN 1) does NOT force");

    // C0 commits an unforced CLC (its timer fires): SN 2.
    fed.fire_clc_timer(0);
    // m3: C0 -> C2 with SN 2: forces a CLC in C2.
    fed.app_send(n(0, 0), n(2, 0), pay(3));
    show(&fed, "C0 checkpoints (SN 2); m3: C0->C2 forces a CLC in C2");

    // C1 commits an unforced CLC: SN 3.
    fed.fire_clc_timer(1);
    // m4: C1 -> C2 with SN 3: forces another CLC in C2.
    fed.app_send(n(1, 0), n(2, 1), pay(4));
    show(&fed, "C1 checkpoints (SN 3); m4: C1->C2 forces a CLC in C2");

    // C2 commits an unforced CLC: SN 4. m5: C2 -> C0 forces a CLC in C0.
    fed.fire_clc_timer(2);
    fed.app_send(n(2, 0), n(0, 0), pay(5));
    show(&fed, "C2 checkpoints (SN 4); m5: C2->C0 forces a CLC in C0");

    // The fault: a node of C1 (paper's cluster 2) fail-stops.
    println!(">>> FAULT in C1: the cluster restores its last stored CLC");
    fed.fail_node(n(1, 1));
    show(&fed, "after the alert cascade settles");

    println!("rollback log (cluster, restored SN): {:?}", fed.rollbacks);
    println!(
        "deliveries after recovery (tags): {:?}",
        fed.deliveries
            .iter()
            .map(|d| d.payload.tag)
            .collect::<Vec<_>>()
    );
    assert_eq!(fed.late_crossings, 0);
    assert!(
        fed.rollbacks.iter().any(|&(c, _)| c == 1),
        "the faulty cluster rolled back"
    );
}
