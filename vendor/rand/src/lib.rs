//! Offline stand-in for the `rand` crate (the 0.8 API subset this
//! workspace uses). The build environment has no access to crates.io, so
//! this vendored crate provides [`rngs::StdRng`], [`Rng`] and
//! [`SeedableRng`] with compatible signatures. `StdRng` is a
//! xoshiro256** generator: not cryptographic (neither is determinism-
//! focused simulation), but high-quality, fast and fully reproducible
//! from a 32-byte seed.

#![warn(missing_docs)]

/// A source of 64-bit random values.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the subset of
/// `rand`'s `Standard` distribution this workspace needs).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width_minus_1 = (hi as u64).wrapping_sub(lo as u64);
                if width_minus_1 == u64::MAX {
                    // Full domain (only reachable for 64-bit types).
                    return rng.next_u64() as $t;
                }
                let width = width_minus_1 + 1;
                let v = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        let x = self.start + u * (self.end - self.start);
        // start + u*(end-start) can round up to `end` when the width is
        // tiny relative to the endpoints; keep the interval half-open.
        if x < self.end {
            x
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        let x = self.start + u * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.end.next_down()
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut st = 0x853C_49E6_748F_EA9B;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::from_seed([1; 32]);
        let mut b = StdRng::from_seed([2; 32]);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(5u32..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            let z = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn inclusive_range_ending_at_max_does_not_panic() {
        let mut r = StdRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let x = r.gen_range(1u64..=u64::MAX);
            assert!(x >= 1);
            let y = r.gen_range(u8::MAX - 3..=u8::MAX);
            assert!(y >= u8::MAX - 3);
            let z = r.gen_range(i64::MIN..=i64::MAX);
            let _ = z;
        }
    }

    #[test]
    fn float_range_stays_below_exclusive_bound() {
        let mut r = StdRng::seed_from_u64(1);
        let (lo, hi) = (1e15f64, 1e15 + 0.25);
        for _ in 0..100_000 {
            let x = r.gen_range(lo..hi);
            assert!((lo..hi).contains(&x), "{x} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
