//! Test-runner plumbing: configuration, the per-test RNG and the error
//! type `prop_assert!` produces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// How a `proptest!` block runs its cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (other settings default).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure of a single generated test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case was rejected (e.g. by a filter) — counts as a skip in real
    /// proptest; here it is reported like a failure if it escapes.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a generated test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    /// Deterministic RNG for the named test: seeded by FNV-1a of the test
    /// name so failures reproduce across runs and machines.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}
