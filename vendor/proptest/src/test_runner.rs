//! Test-runner plumbing: configuration, the per-test RNG, the error type
//! `prop_assert!` produces, and the failure-persistence file that records
//! failing case numbers (`proptest-regressions/<test>.txt`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::path::{Path, PathBuf};

/// How a `proptest!` block runs its cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (other settings default).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure of a single generated test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case was rejected (e.g. by a filter) — counts as a skip in real
    /// proptest; here it is reported like a failure if it escapes.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a generated test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Path of a test's failure-persistence file: real proptest stores failing
/// seeds under `proptest-regressions/`; this stand-in's generation is a
/// pure function of the test name, so the *case number* is the complete
/// reproduction recipe and is what gets stored.
pub fn regression_path(manifest_dir: &str, test: &str) -> PathBuf {
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{test}.txt"))
}

/// Record a failing case number (`cc <case>` lines, mirroring real
/// proptest's `cc <seed>` format). Appends — earlier failures of other
/// cases stay recorded. Best-effort: persistence must never mask the
/// test panic, so I/O errors are swallowed.
pub fn persist_failure(manifest_dir: &str, test: &str, case: u32) {
    let path = regression_path(manifest_dir, test);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    if recorded_cases(&existing).any(|c| c == case) {
        return;
    }
    let mut out = String::new();
    if existing.is_empty() {
        out.push_str(
            "# Failure cases recorded by the vendored proptest stand-in.\n\
             # Generation is deterministic per test name, so each `cc N` line\n\
             # reproduces by rerunning the test (cases 0..=N replay first).\n\
             # This stand-in does not shrink; N is the raw failing case.\n",
        );
    } else {
        out.push_str(&existing);
    }
    out.push_str(&format!("cc {case}\n"));
    let _ = std::fs::write(&path, out);
}

/// The `cc <case>` entries of a persistence file's contents.
fn recorded_cases(contents: &str) -> impl Iterator<Item = u32> + '_ {
    contents
        .lines()
        .filter_map(|l| l.strip_prefix("cc "))
        .filter_map(|n| n.trim().parse().ok())
}

/// How many cases a test must run to replay every recorded failure:
/// `configured`, extended to cover the largest persisted case number (so
/// a recorded failure keeps replaying even if the configured case count
/// is later reduced).
pub fn replay_case_count(manifest_dir: &str, test: &str, configured: u32) -> u32 {
    let contents = std::fs::read_to_string(regression_path(manifest_dir, test)).unwrap_or_default();
    recorded_cases(&contents)
        .map(|c| c.saturating_add(1))
        .fold(configured, u32::max)
}

/// The RNG handed to strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    /// Deterministic RNG for the named test: seeded by FNV-1a of the test
    /// name so failures reproduce across runs and machines.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch manifest dir unique to this test binary run.
    fn scratch(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("proptest-standin-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.to_str().expect("utf-8 temp path").to_string()
    }

    #[test]
    fn persisted_failures_extend_the_replayed_case_count() {
        let dir = scratch("replay");
        assert_eq!(replay_case_count(&dir, "some_test", 64), 64);
        persist_failure(&dir, "some_test", 200);
        assert_eq!(
            replay_case_count(&dir, "some_test", 64),
            201,
            "a recorded case beyond the configured count must still replay"
        );
        assert_eq!(
            replay_case_count(&dir, "some_test", 512),
            512,
            "a larger configured count wins"
        );
        assert_eq!(
            replay_case_count(&dir, "other_test", 64),
            64,
            "persistence is per-test"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_appends_and_dedupes() {
        let dir = scratch("dedupe");
        persist_failure(&dir, "t", 3);
        persist_failure(&dir, "t", 9);
        persist_failure(&dir, "t", 3);
        let contents = std::fs::read_to_string(regression_path(&dir, "t")).expect("file written");
        let cases: Vec<u32> = recorded_cases(&contents).collect();
        assert_eq!(cases, vec![3, 9]);
        assert!(
            contents.starts_with('#'),
            "file carries its format header: {contents}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
