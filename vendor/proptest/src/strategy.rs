//! The [`Strategy`] trait and its combinators (generation only — this
//! offline stand-in does not shrink).

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange};

/// How many times a filtering combinator regenerates before giving up.
const MAX_FILTER_ATTEMPTS: u32 = 4096;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keep only values `f` maps to `Some`, regenerating otherwise.
    /// `reason` labels the filter in the give-up panic message.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            reason,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// Strategy yielding one fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.source.new_value(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected {MAX_FILTER_ATTEMPTS} consecutive values",
            self.reason
        );
    }
}

/// Weighted choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Panics if empty or all-zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.0.gen_range(0..self.total_weight);
        for (w, s) in &self.arms {
            let w = *w as u64;
            if pick < w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed incorrectly")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample(self.clone(), &mut rng.0)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample(self.clone(), &mut rng.0)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample(self.clone(), &mut rng.0)
            }
        }
    )*};
}
impl_float_range_strategy!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
