//! Offline stand-in for the `proptest` crate (the API subset this
//! workspace's property tests use). The build environment has no access to
//! crates.io, so this vendored crate provides strategy combinators
//! (`prop_map`, `prop_filter_map`, `prop_oneof!`, `collection::vec`,
//! `any`, `Just`, `sample::Index`) and the `proptest!` / `prop_assert!`
//! macros with compatible surface syntax.
//!
//! Differences from real proptest, deliberate for an offline build:
//!
//! * **No shrinking** — real proptest minimizes a failing input before
//!   reporting it; this stand-in reports the raw generated value at its
//!   deterministic case number. Expect failure messages to carry larger,
//!   noisier inputs than upstream proptest would show — the trade for a
//!   dependency-free generator. Re-running the test reproduces the case
//!   exactly.
//! * **Deterministic seeding** — each test's RNG is seeded from the test
//!   name (FNV-1a), so failures are stable across runs and machines.
//! * **Failure persistence by case number** — on failure, the failing
//!   case number is appended to
//!   `<crate>/proptest-regressions/<test>.txt` (`cc N` lines, mirroring
//!   real proptest's `cc <seed>` files). Because generation is
//!   deterministic per test name, the case number is the complete
//!   reproduction recipe: later runs extend their case count to cover
//!   every recorded `N`, so a persisted failure keeps replaying even if
//!   the configured `cases` is reduced. Delete the file once the bug is
//!   fixed (or commit it as a regression pin).

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`,
    /// `prop::sample::Index`), mirroring real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Build a strategy choosing between alternatives, optionally weighted
/// (`weight => strategy`). All alternatives must yield the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fail the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: `{:?}`",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `config.cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                // Extend the run to replay any persisted failing case.
                let cases = $crate::test_runner::replay_case_count(
                    env!("CARGO_MANIFEST_DIR"),
                    stringify!($name),
                    config.cases,
                );
                for case in 0..cases {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        $crate::test_runner::persist_failure(
                            env!("CARGO_MANIFEST_DIR"),
                            stringify!($name),
                            case,
                        );
                        panic!(
                            "[proptest] {} failed at case {}/{} (deterministic; rerun \
                             reproduces; recorded in proptest-regressions/): {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}
