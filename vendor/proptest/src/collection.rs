//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A range of collection sizes, convertible from `usize` (exact),
/// `Range<usize>` and `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.0.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
