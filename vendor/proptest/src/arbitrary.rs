//! The [`Arbitrary`] trait and the [`any`] strategy constructor.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "whole domain" generation strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.0.gen::<usize>())
    }
}

/// Strategy generating unconstrained values of `A` (see [`any`]).
pub struct Any<A>(PhantomData<A>);

/// The strategy over `A`'s whole domain: `any::<u64>()`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}
