//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection whose length is unknown at generation time:
/// generate one with `any::<Index>()`, then project with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    pub(crate) fn new(raw: usize) -> Self {
        Index(raw)
    }

    /// Map this sample onto `0..len`. Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        self.0 % len
    }
}
