//! Offline stand-in for the `criterion` crate (the API subset this
//! workspace's benches use). The build environment has no access to
//! crates.io, so this vendored crate provides `Criterion`,
//! `criterion_group!` / `criterion_main!` and `Bencher::iter` with
//! compatible signatures.
//!
//! Measurement is deliberately simple: each benchmark runs a short warmup,
//! then `sample_size` timed iterations, and prints the median, min and max
//! per-iteration wall time. No statistical analysis, no HTML reports —
//! enough for `cargo bench` to exercise every benchmark and give
//! order-of-magnitude numbers.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` once per sample, timing each run.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warmup to populate caches and lazy state.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} no samples recorded");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{id:<48} median {:>12?}  (min {:?}, max {:?}, n={})",
            median,
            min,
            max,
            self.samples.len()
        );
    }
}

/// Group benchmark target functions, optionally with a shared config:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t1, t2, }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the given groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
