//! Offline stand-in for the `crossbeam` crate (the `channel` subset this
//! workspace uses). The build environment has no access to crates.io, so
//! this vendored crate provides unbounded MPMC channels with the
//! `crossbeam-channel` API shape: cloneable senders *and* receivers,
//! `recv_timeout`/`recv_deadline`, and disconnection detection in both
//! directions.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` — slower than the real lock-free
//! crossbeam under contention, but semantically identical for the
//! federation runtime's sharded mailbox pattern (FIFO per channel,
//! reliable, unbounded; shard workers block on `recv_deadline` until the
//! earliest pending timer).

#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap();
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// Block until a message arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Block until a message arrives, `deadline` passes, or all senders
        /// disconnect (the `crossbeam-channel` `recv_deadline` API; used by
        /// the sharded runtime executor, whose workers wait on the earliest
        /// of many per-node timer deadlines).
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self.shared.ready.wait_timeout(q, remaining).unwrap();
                q = guard;
            }
        }

        /// Pop a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterator draining only the messages already queued, without
        /// blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Blocking iterator: yields until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Non-blocking draining iterator (see [`Receiver::try_iter`]).
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Blocking iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_per_sender() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn disconnect_wakes_receiver() {
            let (tx, rx) = unbounded::<u32>();
            let h = thread::spawn(move || rx.recv());
            thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn deadline_in_the_past_times_out_immediately() {
            let (tx, rx) = unbounded::<u32>();
            let past = Instant::now() - Duration::from_millis(5);
            assert_eq!(rx.recv_deadline(past), Err(RecvTimeoutError::Timeout));
            tx.send(9).unwrap();
            // A queued message is returned even when the deadline has passed.
            assert_eq!(rx.recv_deadline(past), Ok(9));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let sender = thread::spawn(move || {
                for i in 0..1000u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0u64;
            for _ in 0..1000 {
                sum += rx.recv().unwrap();
            }
            sender.join().unwrap();
            assert_eq!(sum, 999 * 1000 / 2);
        }

        #[test]
        fn try_iter_drains_without_blocking() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
