//! Offline stand-in for the `crossbeam` crate (the `channel` subset this
//! workspace uses). The build environment has no access to crates.io, so
//! this vendored crate provides unbounded channels with the
//! `crossbeam-channel` API shape: cloneable senders,
//! `recv_timeout`/`recv_deadline`, and disconnection detection in both
//! directions. Builds with network access can swap in the real crate via
//! the workspace's `real-deps` overlay (see the repository README's
//! "Dependencies" section); the API used here is a strict subset of the
//! crates.io `crossbeam` API, so both worlds compile the same sources.
//!
//! # Channel design
//!
//! The original stand-in was a global `Mutex<VecDeque>` + `Condvar` —
//! semantically fine, but every sender serialized on the receiving
//! channel's lock, which made cross-shard traffic in the sharded runtime
//! executor a contention point (and put two syscall-prone condvar
//! operations on the per-message path even uncontended). The channel is
//! now a **lock-free MPSC**, implemented in [`mpsc`]:
//!
//! * messages live in linked fixed-size **blocks** (31 slots each);
//!   producers claim a slot with one CAS on a global tail index and
//!   publish it with a `ready` bit — Michael–Scott linking, amortized
//!   over a block per allocation instead of a node per message;
//! * the single consumer owns the head cursor outright, so a receive is
//!   plain loads plus one atomic tail read — no lock, no RMW;
//! * blocking receives park the OS thread; producers observe a `parked`
//!   flag (SeqCst-fenced on both sides) and unpark — a busy channel never
//!   touches the parking mutex on the send path.
//!
//! The trade against the old MPMC stand-in: receivers are no longer
//! `Clone` (nothing in this workspace shared one, and the sharded
//! executor's mailboxes are single-consumer by construction). See
//! [`mpsc`] for the full algorithm notes and the memory-ordering
//! argument.

#![warn(missing_docs)]

pub mod mpsc;

/// Multi-producer single-consumer FIFO channels (the `crossbeam-channel`
/// API subset used by this workspace, re-exported from [`mpsc`]).
pub mod channel {
    pub use crate::mpsc::{
        unbounded, Iter, Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryIter,
        TryRecvError,
    };
}
