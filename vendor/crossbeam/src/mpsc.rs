//! Lock-free multi-producer single-consumer channel core.
//!
//! This replaces the original `Mutex<VecDeque>` + `Condvar` stand-in, whose
//! global lock made every cross-shard `send` serialize on the receiving
//! shard's mutex (the ROADMAP's "shard-channel contention" item). The new
//! core is a Michael–Scott-style queue over **linked blocks** of slots
//! instead of individual nodes, in the spirit of the real
//! `crossbeam-channel` "list" flavor:
//!
//! * The queue is a singly-linked chain of fixed-size blocks
//!   (`BLOCK_CAP` slots each). Producers claim a slot with one
//!   compare-and-swap on a global tail index, write the message into the
//!   claimed slot, and flip the slot's `ready` bit — no lock, no allocation
//!   for `BLOCK_CAP`−1 out of every `BLOCK_CAP` sends.
//! * The producer that claims the *last* slot of a block installs the next
//!   block (pre-allocated outside the CAS loop) and bumps the tail index
//!   past a reserved *marker offset*, so the chain grows without ever
//!   blocking other producers for more than a few spins.
//! * The single consumer owns the head cursor outright (plain, non-atomic
//!   loads and stores through [`UnsafeCell`]): a `recv` is slot reads plus
//!   one atomic tail load — no read-modify-write at all. Exhausted blocks
//!   are freed by the consumer as it crosses block boundaries.
//! * Blocking receives use a **parked-receiver wakeup path**: the consumer
//!   publishes a `parked` flag plus its thread handle and calls
//!   [`std::thread::park_timeout`]; a producer checks the flag *after*
//!   publishing its message (with a `SeqCst` fence pairing the
//!   store/load on both sides, the classic Dekker handshake) and unparks.
//!   The flag is almost always clear on a busy channel, so the hot send
//!   path never touches the (cold-path-only) park-slot mutex.
//!
//! FIFO is global arrival order, exactly like the old MPMC stand-in: the
//! tail CAS linearizes sends, so per-sender FIFO — the paper's network
//! assumption the sharded runtime relies on — holds a fortiori.
//!
//! The public surface matches the `crossbeam-channel` subset the workspace
//! uses (`unbounded`, `Sender`, `Receiver`, `recv`/`recv_timeout`/
//! `recv_deadline`/`try_recv`, iterators, and the error enums), except
//! that `Receiver` is intentionally neither `Clone` nor `Sync` — the
//! single-consumer contract is enforced by the type system. Nothing in
//! this workspace cloned or shared a receiver, and the real
//! `crossbeam-channel` API is a superset, so `--features real-deps`
//! builds compile against crates.io crossbeam unchanged.

use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

/// Slots per block, plus one reserved *marker* offset (see `LAP`).
const BLOCK_CAP: usize = 31;
/// Index stride per block: indices with `index % LAP == BLOCK_CAP` are the
/// reserved marker offsets that signal "the next block is being installed".
const LAP: usize = 32;

/// One message slot: the payload plus a `ready` bit the producer flips
/// once the write is complete (the consumer spins on it in the rare case
/// it catches a producer between claiming and writing).
struct Slot<T> {
    msg: UnsafeCell<MaybeUninit<T>>,
    ready: AtomicBool,
}

/// A fixed-size segment of the queue.
struct Block<T> {
    slots: [Slot<T>; BLOCK_CAP],
    next: AtomicPtr<Block<T>>,
}

impl<T> Block<T> {
    /// A fresh all-zero block (`ready` bits clear, `next` null, messages
    /// uninitialized — all valid zero patterns).
    fn boxed() -> Box<Block<T>> {
        unsafe { Box::new(MaybeUninit::<Block<T>>::zeroed().assume_init()) }
    }
}

/// Exponential spin that degrades to `yield_now` so single-core machines
/// make progress while another thread holds the resource being awaited.
struct Backoff(u32);

impl Backoff {
    fn new() -> Self {
        Backoff(0)
    }

    fn snooze(&mut self) {
        if self.0 < 6 {
            for _ in 0..(1u32 << self.0) {
                std::hint::spin_loop();
            }
            self.0 += 1;
        } else {
            thread::yield_now();
        }
    }
}

/// The shared channel state.
struct Channel<T> {
    /// Next index to be claimed by a producer (marker offsets are skipped).
    tail_index: AtomicUsize,
    /// Block holding the slot at `tail_index` (null until the first send).
    tail_block: AtomicPtr<Block<T>>,
    /// Consumer-owned head cursor (plain accesses: the `Receiver` is the
    /// unique consumer and is `!Sync`).
    head_index: UnsafeCell<usize>,
    /// Block holding the slot at `head_index`. Written once by the producer
    /// that installs the *first* block (so the consumer starts at the front
    /// of the chain, not wherever the tail has advanced to), thereafter
    /// only by the consumer as it crosses block boundaries.
    head_block: AtomicPtr<Block<T>>,
    /// Live `Sender` clones; 0 means disconnected for the receiver.
    senders: AtomicUsize,
    /// Receiver still alive? Cleared on `Receiver::drop`; senders fail fast.
    receiver_alive: AtomicBool,
    /// Set by the consumer just before parking; producers check it after
    /// publishing (both sides fence `SeqCst`, so at least one of "producer
    /// sees parked" / "consumer sees message" always holds).
    parked: AtomicBool,
    /// The parked consumer's thread handle. Only locked on the park/wake
    /// cold path, never on a hot send.
    park_slot: Mutex<Option<Thread>>,
}

unsafe impl<T: Send> Send for Channel<T> {}
unsafe impl<T: Send> Sync for Channel<T> {}

/// Create an unbounded lock-free MPSC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Channel {
        tail_index: AtomicUsize::new(0),
        tail_block: AtomicPtr::new(ptr::null_mut()),
        head_index: UnsafeCell::new(0),
        head_block: AtomicPtr::new(ptr::null_mut()),
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicBool::new(true),
        parked: AtomicBool::new(false),
        park_slot: Mutex::new(None),
    });
    (
        Sender { chan: chan.clone() },
        Receiver {
            chan,
            _not_sync: PhantomData,
        },
    )
}

impl<T> Channel<T> {
    /// Producer path: claim a slot, write, publish, wake a parked receiver.
    fn push(&self, value: T) {
        let mut backoff = Backoff::new();
        let mut tail = self.tail_index.load(Ordering::Acquire);
        let mut block = self.tail_block.load(Ordering::Acquire);
        let mut next_block: Option<Box<Block<T>>> = None;
        loop {
            let offset = tail % LAP;
            if offset == BLOCK_CAP {
                // Another producer claimed the last slot and is installing
                // the next block; wait for the index to move past the
                // marker. (Index load first: its Release store ordered
                // after the block store, so a fresh index implies a fresh
                // block pointer.)
                backoff.snooze();
                tail = self.tail_index.load(Ordering::Acquire);
                block = self.tail_block.load(Ordering::Acquire);
                continue;
            }
            // About to claim the last slot: pre-allocate the next block
            // outside the CAS so the marker window stays a few instructions.
            if offset + 1 == BLOCK_CAP && next_block.is_none() {
                next_block = Some(Block::boxed());
            }
            if block.is_null() {
                // First message ever: install the first block.
                let new = Box::into_raw(Block::boxed());
                match self.tail_block.compare_exchange(
                    ptr::null_mut(),
                    new,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // The consumer starts at the front of the chain:
                        // publish the first block as the head block too.
                        self.head_block.store(new, Ordering::Release);
                        block = new;
                    }
                    Err(current) => {
                        // Lost the install race; free ours and use theirs.
                        drop(unsafe { Box::from_raw(new) });
                        block = current;
                    }
                }
                tail = self.tail_index.load(Ordering::Acquire);
                continue;
            }
            match self.tail_index.compare_exchange_weak(
                tail,
                tail + 1,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe {
                    // Slot `offset` of `block` is ours. If it is the last
                    // one, link the pre-allocated next block and move the
                    // index past the marker before writing, so other
                    // producers resume immediately.
                    if offset + 1 == BLOCK_CAP {
                        let next = Box::into_raw(next_block.take().expect("pre-allocated above"));
                        self.tail_block.store(next, Ordering::Release);
                        self.tail_index.store(tail + 2, Ordering::Release);
                        (*block).next.store(next, Ordering::Release);
                    }
                    let slot = &(*block).slots[offset];
                    (*slot.msg.get()).write(value);
                    slot.ready.store(true, Ordering::Release);
                    // Dekker handshake with a parking consumer.
                    fence(Ordering::SeqCst);
                    if self.parked.load(Ordering::Relaxed) {
                        self.wake();
                    }
                    return;
                },
                Err(current) => {
                    tail = current;
                    block = self.tail_block.load(Ordering::Acquire);
                    backoff.snooze();
                }
            }
        }
    }

    /// Unpark the registered consumer thread (cold path).
    fn wake(&self) {
        let thread = self.park_slot.lock().unwrap().clone();
        if let Some(t) = thread {
            t.unpark();
        }
    }

    /// Consumer path: pop the head message if one is published.
    ///
    /// Returns `None` when the queue is empty. Only the unique consumer may
    /// call this (guaranteed by `Receiver: !Sync + !Clone`).
    fn pop(&self) -> Option<T> {
        unsafe {
            loop {
                let head = *self.head_index.get();
                let block = self.head_block.load(Ordering::Acquire);
                if block.is_null() {
                    // First block not installed (or its installer is a few
                    // instructions from publishing it): nothing to pop yet.
                    return None;
                }
                let offset = head % LAP;
                if offset == BLOCK_CAP {
                    // Crossed a block boundary. The consumer only reaches a
                    // marker index after consuming the previous slot, whose
                    // `ready` bit was set *after* the next block was linked
                    // — so `next` is always non-null here.
                    let next = (*block).next.load(Ordering::Acquire);
                    debug_assert!(!next.is_null());
                    drop(Box::from_raw(block));
                    self.head_block.store(next, Ordering::Release);
                    *self.head_index.get() = head + 1;
                    continue;
                }
                if head == self.tail_index.load(Ordering::SeqCst) {
                    return None;
                }
                // The slot is claimed; in the rare window between a
                // producer's claim and its write, spin for the ready bit.
                let slot = &(*block).slots[offset];
                let mut backoff = Backoff::new();
                while !slot.ready.load(Ordering::Acquire) {
                    backoff.snooze();
                }
                let value = (*slot.msg.get()).assume_init_read();
                *self.head_index.get() = head + 1;
                return Some(value);
            }
        }
    }

    /// Consumer-side quick emptiness probe (used in the park handshake).
    fn maybe_nonempty(&self) -> bool {
        let head = unsafe { *self.head_index.get() };
        head != self.tail_index.load(Ordering::SeqCst)
    }

    /// Bounded spin-before-park: retry `pop` through one exponential
    /// backoff ramp before the caller falls back to parking.
    ///
    /// A consumer that drains faster than its producers refill used to
    /// re-park between every burst, making each producer-side wakeup a
    /// futex syscall. When a producer is mid-publish (or another burst is
    /// a few hundred cycles away, the common case on a busy shard), a
    /// short spin catches the message without ever touching the parking
    /// path. The ramp is the same shape as [`Backoff`] (adaptive like
    /// crossbeam-channel's): ~6 doubling spin rounds, then a few
    /// `yield_now`s so oversubscribed single-core machines still make
    /// progress, ~16 snoozes total before giving up.
    fn pop_spinning(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        for _ in 0..16 {
            backoff.snooze();
            if let Some(v) = self.pop() {
                return Some(v);
            }
            if self.disconnected() {
                return None;
            }
        }
        None
    }

    fn disconnected(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }

    /// Park the consumer until a message might be available, `deadline`
    /// passes, or the channel disconnects. May wake spuriously.
    fn park(&self, deadline: Option<Instant>) {
        {
            let mut slot = self.park_slot.lock().unwrap();
            let replace = match &*slot {
                Some(t) => t.id() != thread::current().id(),
                None => true,
            };
            if replace {
                *slot = Some(thread::current());
            }
        }
        self.parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Re-check after publishing the flag: a producer that published
        // before our fence is visible now; one that publishes after it will
        // see the flag and unpark us.
        if self.maybe_nonempty() || self.disconnected() {
            self.parked.store(false, Ordering::SeqCst);
            return;
        }
        match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if !remaining.is_zero() {
                    thread::park_timeout(remaining);
                }
            }
            None => thread::park(),
        }
        self.parked.store(false, Ordering::SeqCst);
    }
}

impl<T> Drop for Channel<T> {
    fn drop(&mut self) {
        // Sole owner: drain unconsumed messages, then free the last block.
        while self.pop().is_some() {}
        let block = *self.head_block.get_mut();
        if !block.is_null() {
            drop(unsafe { Box::from_raw(block) });
        }
    }
}

/// The sending half of a channel. Cloneable and shareable across threads.
pub struct Sender<T> {
    chan: Arc<Channel<T>>,
}

/// The receiving half of a channel: the unique consumer (neither `Clone`
/// nor `Sync`; it may be *moved* to another thread freely).
pub struct Receiver<T> {
    chan: Arc<Channel<T>>,
    /// Opt out of `Sync` (a `&Receiver` must not let two threads pop
    /// concurrently — the head cursor is plain, not atomic).
    _not_sync: PhantomData<Cell<()>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`] and
/// [`Receiver::recv_deadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout elapsed.
    Timeout,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty, disconnected channel")
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake a parked receiver unconditionally so
            // it observes the disconnect (drop-while-parked shutdown).
            fence(Ordering::SeqCst);
            self.chan.wake();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.receiver_alive.store(false, Ordering::Release);
    }
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if !self.chan.receiver_alive.load(Ordering::Acquire) {
            return Err(SendError(value));
        }
        self.chan.push(value);
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders disconnect. Spins
    /// briefly before parking (a bounded backoff ramp of retries): on a busy
    /// channel the next burst usually lands within the spin window, so
    /// the park/unpark futex round-trip is skipped entirely.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            if let Some(v) = self.chan.pop() {
                return Ok(v);
            }
            if self.chan.disconnected() {
                // One final pop: a sender may have pushed right before its
                // drop decremented the counter.
                return self.chan.pop().ok_or(RecvError);
            }
            if let Some(v) = self.chan.pop_spinning() {
                return Ok(v);
            }
            if self.chan.disconnected() {
                return self.chan.pop().ok_or(RecvError);
            }
            self.chan.park(None);
        }
    }

    /// Block until a message arrives, the timeout elapses, or all senders
    /// disconnect.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// Block until a message arrives, `deadline` passes, or all senders
    /// disconnect (the `crossbeam-channel` `recv_deadline` API; used by
    /// the sharded runtime executor, whose workers wait on the earliest of
    /// many per-node timer deadlines). A queued message is returned even
    /// when the deadline has already passed.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        loop {
            if let Some(v) = self.chan.pop() {
                return Ok(v);
            }
            if self.chan.disconnected() {
                return self.chan.pop().ok_or(RecvTimeoutError::Disconnected);
            }
            if Instant::now() >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            // Spin before the (timed) park — the shard executor calls this
            // between every message, so skipping the futex round-trip on
            // busy channels is the runtime_throughput lever.
            if let Some(v) = self.chan.pop_spinning() {
                return Ok(v);
            }
            if self.chan.disconnected() {
                return self.chan.pop().ok_or(RecvTimeoutError::Disconnected);
            }
            if Instant::now() >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            self.chan.park(Some(deadline));
        }
    }

    /// Pop a message if one is already queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match self.chan.pop() {
            Some(v) => Ok(v),
            None if self.chan.disconnected() => self.chan.pop().ok_or(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Iterator draining only the messages already queued, without
    /// blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Blocking iterator: yields until all senders disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Non-blocking draining iterator (see [`Receiver::try_iter`]).
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Blocking iterator (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_sender() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn crosses_many_block_boundaries() {
        // > BLOCK_CAP messages several times over, interleaving send/recv
        // phases so the head crosses block boundaries in both the drained
        // and the backlogged regime.
        let (tx, rx) = unbounded();
        let mut expect = 0u64;
        for round in 1..=8u64 {
            for i in 0..round * BLOCK_CAP as u64 {
                tx.send(i + expect).unwrap();
            }
            for _ in 0..round * BLOCK_CAP as u64 {
                assert_eq!(rx.recv(), Ok(expect));
                expect += 1;
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }
    }

    #[test]
    fn multi_producer_exactly_once_fifo_per_sender() {
        // N senders x M messages: every message received exactly once, and
        // each sender's messages arrive in its send order.
        const SENDERS: usize = 8;
        const MSGS: u64 = 5_000;
        let (tx, rx) = unbounded::<(usize, u64)>();
        let handles: Vec<_> = (0..SENDERS)
            .map(|s| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..MSGS {
                        tx.send((s, i)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut next_per_sender = [0u64; SENDERS];
        let mut total = 0u64;
        while let Ok((s, i)) = rx.recv() {
            assert_eq!(i, next_per_sender[s], "FIFO broken for sender {s}");
            next_per_sender[s] += 1;
            total += 1;
        }
        assert_eq!(total, SENDERS as u64 * MSGS);
        assert!(next_per_sender.iter().all(|&n| n == MSGS));
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn recv_deadline_times_out_and_still_drains_backlog() {
        let (tx, rx) = unbounded::<u32>();
        // Empty channel: a past deadline times out immediately…
        let past = Instant::now() - Duration::from_millis(5);
        assert_eq!(rx.recv_deadline(past), Err(RecvTimeoutError::Timeout));
        // …and a short future deadline times out after waiting.
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(10));
        // A queued message is returned even when the deadline has passed.
        tx.send(9).unwrap();
        assert_eq!(rx.recv_deadline(past), Ok(9));
    }

    #[test]
    fn drop_while_parked_wakes_with_disconnect() {
        // The shutdown path the sharded runtime relies on: a receiver
        // blocked in `recv` is woken by the *last* sender dropping and
        // observes the disconnect (after draining any backlog).
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = thread::spawn(move || {
            let first = rx.recv();
            let second = rx.recv();
            (first, second)
        });
        thread::sleep(Duration::from_millis(20));
        tx.send(1).unwrap();
        drop(tx);
        thread::sleep(Duration::from_millis(20));
        drop(tx2);
        assert_eq!(h.join().unwrap(), (Ok(1), Err(RecvError)));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn unconsumed_messages_are_dropped_with_the_channel() {
        // Leak check (run under the whole suite's normal allocator): the
        // channel drop drains heap-owning payloads without leaking them.
        let (tx, rx) = unbounded::<String>();
        for i in 0..1000 {
            tx.send(format!("payload {i}")).unwrap();
        }
        drop(tx);
        drop(rx);
    }

    #[test]
    fn try_iter_drains_without_blocking() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn receiver_moves_across_threads() {
        // The consumer may migrate between threads (the park registration
        // re-registers the current thread each time).
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        let rx = thread::spawn(move || {
            assert_eq!(rx.recv(), Ok(1));
            rx
        })
        .join()
        .unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
