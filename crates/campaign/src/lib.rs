//! # campaign — adversarial scenario library and campaign runner
//!
//! The paper's evaluation only ever ran the protocol under fail-stop
//! faults on a well-behaved FIFO network. This crate turns the
//! deterministic simulator into a standing adversarial correctness
//! harness:
//!
//! * [`invariants`] — machine-checkable protocol invariants over a
//!   [`RunReport`](simdriver::RunReport) and the hostile side statistics:
//!   exactly-one-rollback-per-cluster per fault wave, no committed work
//!   lost across partitions and heals, GC liveness, and delivered-record
//!   consistency. One source of truth, shared by the campaign runner and
//!   the repo's scenario tests.
//! * [`scenarios`](mod@scenarios) — a library of hostile scenarios (partition + heal,
//!   duplication/reorder storms, node churn under partitions, flash
//!   crowds) over small topology presets, each mapping `(topology, seed)`
//!   to a runnable [`SimConfig`](simdriver::SimConfig) plus its expected
//!   fault waves.
//! * [`runner`] — sweeps the scenario × topology × seed matrix, checks
//!   every invariant on every cell, and renders a deterministic JSON
//!   summary that CI diffs against a committed golden
//!   (`campaign/GOLDEN.json`).
//!
//! Everything downstream of a [`SimConfig`](simdriver::SimConfig) is a
//! pure function of it, so campaign summaries are bit-stable across runs
//! and machines — drift in the golden means behaviour changed, not noise.

#![warn(missing_docs)]

pub mod invariants;
pub mod json;
pub mod runner;
pub mod scenarios;

pub use invariants::{FaultWave, GcExpectation};
pub use runner::{run_campaign, CampaignPlan, CampaignSummary, CellOutcome};
pub use scenarios::{scenarios, topologies, Scenario, ScenarioRun};
