//! The adversarial scenario library.
//!
//! Each [`Scenario`] maps a topology preset and a seed to a runnable
//! [`SimConfig`] plus the fault waves and GC expectations the invariant
//! checkers need. Scenarios are deliberately small (tens of nodes, half an
//! hour of simulated time) so the full scenario × topology × seed matrix
//! stays cheap enough for CI while still driving partitions, heals,
//! duplication storms, churn and flash crowds through the real protocol.

use crate::invariants::{FaultWave, GcExpectation};
use desim::{RngStreams, SimDuration, SimTime};
use hc3i_core::ReplicationPolicy;
use netsim::{ClusterSpec, HostileSpec, LatencyDist, LinkSpec, Mix64, NodeId, Topology};
use simdriver::SimConfig;
use workload::{presets, TargetCountWorkload, Workload};

/// Simulated application length of every scenario.
const DURATION_MIN: u64 = 30;
/// Workload sends stop two minutes before the horizon so every in-flight
/// message (including partition-held ones) can drain before the run ends.
const WORKLOAD_MIN: u64 = DURATION_MIN - 2;
/// Unforced-CLC period of every cluster.
const CLC_MIN: u64 = 2;
/// GC period.
const GC_MIN: u64 = 5;
/// Fault-wave window width: covers detection latency (100 ms) and
/// cross-cluster cascade propagation with wide margin.
const WAVE_MIN: u64 = 5;

fn minutes(m: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_minutes(m)
}

/// Topology presets the campaign sweeps: `(name, topology)`.
pub fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        (
            "lan_pair",
            Topology::new(
                vec![
                    ClusterSpec {
                        nodes: 6,
                        intra: LinkSpec::myrinet_like(),
                    };
                    2
                ],
                LinkSpec::ethernet_like(),
            ),
        ),
        (
            "wan_triangle",
            Topology::new(
                vec![
                    ClusterSpec {
                        nodes: 4,
                        intra: LinkSpec::myrinet_like(),
                    };
                    3
                ],
                LinkSpec::wan_like(),
            ),
        ),
        // The paper's own per-cluster scale (100 nodes, §5): hostile runs
        // where every CLC round fans a request/commit broadcast out to 100
        // engines, exercising the same-instant delivery batching that the
        // small presets cannot.
        (
            "paper_scale",
            Topology::new(
                vec![
                    ClusterSpec {
                        nodes: 100,
                        intra: LinkSpec::myrinet_like(),
                    };
                    2
                ],
                LinkSpec::ethernet_like(),
            ),
        ),
    ]
}

/// A scenario instantiated for one topology and seed: the runnable config
/// plus what the invariants should expect of it.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The simulation configuration (delivery ledger always on).
    pub cfg: SimConfig,
    /// Declared fault waves (empty = no rollback is legitimate).
    pub waves: Vec<FaultWave>,
    /// GC liveness expectation.
    pub gc: GcExpectation,
}

/// A named scenario of the library.
pub struct Scenario {
    /// Stable identifier (appears in the campaign summary and golden).
    pub name: &'static str,
    /// One-line description.
    pub describe: &'static str,
    build: fn(&Topology, u64) -> ScenarioRun,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .finish()
    }
}

impl Scenario {
    /// Instantiate for a topology and seed.
    pub fn build(&self, topo: &Topology, seed: u64) -> ScenarioRun {
        (self.build)(topo, seed)
    }
}

/// Cluster sizes of a topology.
fn sizes(topo: &Topology) -> Vec<u32> {
    topo.cluster_ids().map(|c| topo.nodes_in(c)).collect()
}

/// The scenarios' common chassis: a target-count workload (40 intra per
/// cluster, 12 per directed inter pair), periodic CLCs, periodic GC and
/// the delivery ledger.
fn base_config(topo: &Topology, seed: u64) -> SimConfig {
    let sizes = sizes(topo);
    let n = sizes.len();
    let counts: Vec<Vec<u64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 40 } else { 12 }).collect())
        .collect();
    let sends = TargetCountWorkload {
        cluster_sizes: sizes,
        duration: SimDuration::from_minutes(WORKLOAD_MIN),
        counts,
        payload_bytes: 512,
    }
    .schedule(&RngStreams::new(seed));
    let mut cfg = SimConfig::new(topo.clone(), SimDuration::from_minutes(DURATION_MIN))
        .with_sends(sends)
        .with_gc_interval(SimDuration::from_minutes(GC_MIN))
        .with_seed(seed)
        .with_delivery_ledger();
    for c in 0..n {
        cfg = cfg.with_clc_delay(c, SimDuration::from_minutes(CLC_MIN));
    }
    cfg
}

fn wave(at_min: u64, direct: Vec<usize>) -> FaultWave {
    FaultWave {
        from: minutes(at_min),
        until: minutes(at_min + WAVE_MIN),
        direct,
    }
}

fn gc_expectation() -> GcExpectation {
    GcExpectation {
        min_collections: 3,
        max_after: 16,
    }
}

/// Partition + heal: cluster 0 is cut off mid-run, messages held across
/// the cut drain at the heal, and a later fault exercises recovery over
/// the healed network.
fn partition_heal(topo: &Topology, seed: u64) -> ScenarioRun {
    let cfg = base_config(topo, seed)
        .with_partition(minutes(10), minutes(12), vec![0])
        .with_fault(minutes(20), NodeId::new(0, 1));
    ScenarioRun {
        cfg,
        waves: vec![wave(20, vec![0])],
        gc: gc_expectation(),
    }
}

/// Duplication/reorder storm: a quarter of all inter-cluster messages are
/// duplicated, a quarter reordered, with an asymmetric latency skew on the
/// 0 → 1 direction, plus one fault in the last cluster.
fn dup_reorder_storm(topo: &Topology, seed: u64) -> ScenarioRun {
    let last = topo.num_clusters() - 1;
    let spec = HostileSpec::seeded(seed ^ 0xD00D)
        .with_duplication(0.25, SimDuration::from_millis(2))
        .with_reorder(0.25, SimDuration::from_millis(1))
        .with_skew(
            0,
            1,
            LatencyDist {
                base: SimDuration::from_micros(200),
                jitter: SimDuration::from_micros(300),
            },
        );
    let cfg = base_config(topo, seed)
        .with_hostile(spec)
        .with_fault(minutes(18), NodeId::new(last as u16, 1));
    ScenarioRun {
        cfg,
        waves: vec![wave(18, vec![last])],
        gc: gc_expectation(),
    }
}

/// Node churn under a partition: three seeded churn waves, each failing
/// two nodes of one cluster simultaneously (replication degree 2 keeps
/// every pair recoverable), with a partition cut between the waves and
/// light duplication throughout.
fn churn_partition(topo: &Topology, seed: u64) -> ScenarioRun {
    let sizes = sizes(topo);
    let n = sizes.len();
    let mut mix = Mix64::new(seed ^ 0xC4C4);
    let mut cfg = base_config(topo, seed)
        .with_protocol(
            hc3i_core::ProtocolConfig::new(sizes.clone())
                .with_replication(ReplicationPolicy::with_degree(2)),
        )
        .with_hostile(
            HostileSpec::seeded(seed ^ 0xC4C5).with_duplication(0.1, SimDuration::from_millis(1)),
        )
        .with_partition(minutes(12), minutes(13), vec![0]);
    let mut waves = Vec::new();
    for at_min in [8u64, 16, 24] {
        let cluster = mix.below(n as u64) as usize;
        let sz = sizes[cluster] as u64;
        let r1 = mix.below(sz) as u32;
        let r2 = ((r1 as u64 + 1 + mix.below(sz - 1)) % sz) as u32;
        cfg = cfg
            .with_fault(minutes(at_min), NodeId::new(cluster as u16, r1))
            .with_fault(minutes(at_min), NodeId::new(cluster as u16, r2));
        waves.push(wave(at_min, vec![cluster]));
    }
    ScenarioRun {
        cfg,
        waves,
        gc: gc_expectation(),
    }
}

/// Flash crowds on a heavy-tailed background over a duplicating,
/// reordering network — no faults, so any rollback at all is a violation.
fn flash_crowd_hostile(topo: &Topology, seed: u64) -> ScenarioRun {
    let sizes = sizes(topo);
    let n = sizes.len();
    let sends = presets::flash_crowd(
        n,
        sizes[0],
        SimDuration::from_minutes(WORKLOAD_MIN),
        0.15,
        3,
        3,
    )
    .schedule(&RngStreams::new(seed));
    let spec = HostileSpec::seeded(seed ^ 0xF1A5)
        .with_duplication(0.2, SimDuration::from_millis(1))
        .with_reorder(0.1, SimDuration::from_micros(500));
    let cfg = base_config(topo, seed).with_sends(sends).with_hostile(spec);
    ScenarioRun {
        cfg,
        waves: vec![],
        gc: gc_expectation(),
    }
}

/// Lossy WAN: every inter-cluster link drops half its traffic, with the
/// reliable transport restoring exactly-once delivery underneath the
/// engines. One fault proves recovery — detection alerts, rollback fan-out,
/// sender-log replay — survives a wire this bad.
fn lossy_wan(topo: &Topology, seed: u64) -> ScenarioRun {
    let spec = HostileSpec::seeded(seed ^ 0x1055).with_loss(0.5);
    let cfg = base_config(topo, seed)
        .with_hostile(spec)
        .with_reliable_transport()
        .with_fault(minutes(14), NodeId::new(0, 1));
    ScenarioRun {
        cfg,
        waves: vec![wave(14, vec![0])],
        gc: gc_expectation(),
    }
}

/// Asymmetric cut: cluster 0's egress is severed for two minutes while its
/// ingress keeps flowing, so data reaches cluster 0 but the acks die on the
/// way back — only retransmission plus receiver-side dedup keeps the
/// outcome exactly-once. Light loss runs throughout, and a late fault
/// exercises recovery over the healed network.
fn asymmetric_cut(topo: &Topology, seed: u64) -> ScenarioRun {
    let spec = HostileSpec::seeded(seed ^ 0xA5CF).with_loss(0.1);
    let cfg = base_config(topo, seed)
        .with_hostile(spec)
        .with_reliable_transport()
        .with_oneway_partition(minutes(10), minutes(12), vec![0])
        .with_fault(minutes(20), NodeId::new(0, 1));
    ScenarioRun {
        cfg,
        waves: vec![wave(20, vec![0])],
        gc: gc_expectation(),
    }
}

/// Fault inside a closing partition: cluster 0 is cut off, one of its
/// nodes dies thirty seconds before the heal, so the rollback alert and
/// the ensuing cascade cross the healing cut — over a wire that then
/// drops a quarter of everything.
fn partition_during_cascade(topo: &Topology, seed: u64) -> ScenarioRun {
    let heal = minutes(18) + SimDuration::from_secs(30);
    let spec = HostileSpec::seeded(seed ^ 0xCA5C).with_loss(0.25);
    let cfg = base_config(topo, seed)
        .with_hostile(spec)
        .with_reliable_transport()
        .with_partition(minutes(16), heal, vec![0])
        .with_fault(minutes(18), NodeId::new(0, 1));
    ScenarioRun {
        cfg,
        waves: vec![wave(18, vec![0])],
        gc: gc_expectation(),
    }
}

/// The scenario library, in summary order.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "partition_heal",
            describe: "cluster 0 cut off and healed, then a fault over the healed network",
            build: partition_heal,
        },
        Scenario {
            name: "dup_reorder_storm",
            describe: "25% duplication + 25% reordering + asymmetric skew, one fault",
            build: dup_reorder_storm,
        },
        Scenario {
            name: "churn_partition",
            describe: "three 2-node churn waves (replication degree 2) around a partition",
            build: churn_partition,
        },
        Scenario {
            name: "flash_crowd_hostile",
            describe: "flash crowds on heavy-tailed traffic over a duplicating network",
            build: flash_crowd_hostile,
        },
        Scenario {
            name: "lossy_wan",
            describe: "50% inter-cluster packet loss under the reliable transport, one fault",
            build: lossy_wan,
        },
        Scenario {
            name: "asymmetric_cut",
            describe: "one-way egress cut of cluster 0 plus 10% loss, fault after the heal",
            build: asymmetric_cut,
        },
        Scenario {
            name: "partition_during_cascade",
            describe: "fault 30s before a partition heals, rollback cascade crosses the cut",
            build: partition_during_cascade,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_shape_meets_the_campaign_floor() {
        assert!(scenarios().len() >= 3, "campaign needs >= 3 scenarios");
        assert!(topologies().len() >= 2, "campaign needs >= 2 topologies");
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let (_, topo) = &topologies()[0];
        for s in scenarios() {
            let a = s.build(topo, 7);
            let b = s.build(topo, 7);
            assert_eq!(a.cfg.sends, b.cfg.sends, "{}", s.name);
            assert_eq!(a.cfg.faults, b.cfg.faults, "{}", s.name);
            assert_eq!(a.waves.len(), b.waves.len(), "{}", s.name);
        }
    }

    #[test]
    fn churn_waves_hit_one_cluster_with_distinct_ranks() {
        for (_, topo) in topologies() {
            for seed in [1u64, 2, 20040426] {
                let run = churn_partition(&topo, seed);
                assert_eq!(run.cfg.faults.len(), 6, "3 waves x 2 nodes");
                for pair in run.cfg.faults.chunks(2) {
                    assert_eq!(pair[0].at, pair[1].at);
                    assert_eq!(pair[0].node.cluster, pair[1].node.cluster);
                    assert_ne!(pair[0].node.rank, pair[1].node.rank);
                }
            }
        }
    }

    #[test]
    fn workloads_end_before_the_horizon_margin() {
        let (_, topo) = &topologies()[1];
        for s in scenarios() {
            let run = s.build(topo, 3);
            let last = run.cfg.sends.iter().map(|e| e.at).max().unwrap();
            assert!(
                last < minutes(WORKLOAD_MIN),
                "{}: send at {last} past the workload window",
                s.name
            );
        }
    }
}
