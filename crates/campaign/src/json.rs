//! Minimal hand-rolled JSON rendering.
//!
//! The workspace deliberately carries no serialization dependency; the
//! campaign summary is flat enough to render by hand. Key order is fixed
//! and nothing wall-clock-dependent is ever emitted, so two runs of the
//! same campaign produce byte-identical files — the property the CI
//! golden diff rests on.

/// Escape a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a list of strings as a JSON array literal.
pub fn string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", quoted.join(", "))
}

/// Render a list of integers as a JSON array literal.
pub fn u64_array(items: &[u64]) -> String {
    let nums: Vec<String> = items.iter().map(|n| n.to_string()).collect();
    format!("[{}]", nums.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn arrays_render() {
        assert_eq!(
            string_array(&["x".into(), "y\"z".into()]),
            "[\"x\", \"y\\\"z\"]"
        );
        assert_eq!(u64_array(&[1, 2, 3]), "[1, 2, 3]");
        assert_eq!(u64_array(&[]), "[]");
    }
}
