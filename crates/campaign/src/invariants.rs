//! Machine-checkable protocol invariants.
//!
//! Every checker returns a list of human-readable violations (empty =
//! invariant holds) so the campaign runner can aggregate them into its
//! summary; tests use [`assert_clean`] to fail loudly on the first
//! violating run. This module is the single source of truth for
//! "exactly one rollback per cluster" — the scenario tests under
//! `tests/` call the same code the CI campaign does.

use desim::{SimDuration, SimTime};
use simdriver::{HostileRunStats, RunReport};

/// A declared fault wave: every scripted fault (or churn burst) of a
/// scenario lands in exactly one window, and recovery — including
/// cross-cluster cascades — is expected to complete inside it.
#[derive(Debug, Clone)]
pub struct FaultWave {
    /// Window start (the earliest fault instant of the wave).
    pub from: SimTime,
    /// Window end (exclusive); must cover detection latency and cascade
    /// propagation.
    pub until: SimTime,
    /// Clusters hit directly by a fault in this wave: they must roll back
    /// exactly once. Every other cluster may cascade at most once.
    pub direct: Vec<usize>,
}

/// What a scenario expects from garbage collection.
#[derive(Debug, Clone, Copy)]
pub struct GcExpectation {
    /// Minimum completed collections per cluster.
    pub min_collections: usize,
    /// Upper bound on stored CLCs after the final collection (the debt
    /// must drain, not grow without bound).
    pub max_after: usize,
}

/// Basic soundness: the consistency monitor never fired and every fault
/// was recoverable.
pub fn soundness(r: &RunReport) -> Vec<String> {
    let mut v = Vec::new();
    if r.late_crossings != 0 {
        v.push(format!(
            "late_crossings = {} (intra message crossed a checkpoint)",
            r.late_crossings
        ));
    }
    if r.unrecoverable_faults != 0 {
        v.push(format!("unrecoverable_faults = {}", r.unrecoverable_faults));
    }
    v
}

/// Bounded-rollback-per-cluster per fault wave: clusters hit directly
/// roll back once inside the wave's window, plus at most one cascade-back
/// — on a lossy wire a dependent cluster's alert can arrive seconds late,
/// after the direct victim has already committed a fresh CLC and done new
/// (dirty) work on top of it; the victim then conservatively discards
/// that work with a second rollback to its newest CLC. All other clusters
/// roll back at most once (a dependency cascade); and no rollback happens
/// outside any declared wave. With no waves declared, any rollback is a
/// violation.
pub fn rollback_waves(r: &RunReport, waves: &[FaultWave]) -> Vec<String> {
    let mut v = Vec::new();
    for (c, cluster) in r.clusters.iter().enumerate() {
        let mut in_any_wave = vec![false; cluster.rollbacks.len()];
        for (w, wave) in waves.iter().enumerate() {
            let count = cluster
                .rollbacks
                .iter()
                .enumerate()
                .filter(|&(i, &(at, _, _))| {
                    let inside = at >= wave.from && at < wave.until;
                    if inside {
                        in_any_wave[i] = true;
                    }
                    inside
                })
                .count();
            if wave.direct.contains(&c) {
                if !(1..=2).contains(&count) {
                    v.push(format!(
                        "cluster {c}: {count} rollbacks in wave {w} (direct hit expects 1, plus at most one cascade-back)"
                    ));
                }
            } else if count > 1 {
                v.push(format!(
                    "cluster {c}: {count} rollbacks in wave {w} (cascade allows at most 1)"
                ));
            }
        }
        for (i, hit) in in_any_wave.iter().enumerate() {
            if !hit {
                let (at, sn, _) = cluster.rollbacks[i];
                v.push(format!(
                    "cluster {c}: unexpected rollback to {sn:?} at {at} outside every declared wave"
                ));
            }
        }
    }
    v
}

/// GC liveness: every cluster completed at least the expected number of
/// collections, collections never grow storage, and the final collection
/// left at most `max_after` stored CLCs — checkpoint debt drains.
pub fn gc_liveness(r: &RunReport, expect: &GcExpectation) -> Vec<String> {
    let mut v = Vec::new();
    for (c, cluster) in r.clusters.iter().enumerate() {
        let gcs = &cluster.gc_before_after;
        if gcs.len() < expect.min_collections {
            v.push(format!(
                "cluster {c}: only {} completed collections (expected >= {})",
                gcs.len(),
                expect.min_collections
            ));
            continue;
        }
        if let Some(&(before, after)) = gcs.iter().find(|&&(before, after)| after > before) {
            v.push(format!(
                "cluster {c}: a collection grew storage {before} -> {after}"
            ));
        }
        if let Some(&(_, after)) = gcs.last() {
            if after > expect.max_after {
                v.push(format!(
                    "cluster {c}: {after} CLCs stored after the final collection (bound {})",
                    expect.max_after
                ));
            }
        }
    }
    v
}

/// No committed work lost: every inter-cluster send the workload issued
/// from a live node was delivered at least once by the end of the run —
/// across partitions, heals, duplication and churn. Requires the run to
/// have recorded a delivery ledger.
pub fn no_lost_committed_work(stats: &HostileRunStats) -> Vec<String> {
    let Some(ledger) = stats.ledger.as_ref() else {
        return vec!["no delivery ledger recorded (SimConfig::with_delivery_ledger)".into()];
    };
    let lost = ledger.undelivered();
    if lost.is_empty() {
        return vec![];
    }
    vec![format!(
        "{} inter-cluster sends never delivered (tags {:?}{})",
        lost.len(),
        &lost[..lost.len().min(8)],
        if lost.len() > 8 { ", …" } else { "" }
    )]
}

/// Delivered-record consistency: within one incarnation of the receiving
/// cluster (between two of its rollbacks), each workload tag is delivered
/// at most once — duplicated WAN copies and replays must be absorbed by
/// the delivered-record filter.
pub fn delivered_record_consistency(stats: &HostileRunStats) -> Vec<String> {
    let Some(ledger) = stats.ledger.as_ref() else {
        return vec!["no delivery ledger recorded (SimConfig::with_delivery_ledger)".into()];
    };
    ledger
        .duplicated_in_incarnation()
        .into_iter()
        .map(|(tag, inc, count)| {
            format!("tag {tag} delivered {count} times in incarnation {inc} of its receiver")
        })
        .collect()
}

/// Work lost per rollback stays below `bound` (the paper's bound: one
/// checkpoint period plus detection and recovery latency).
pub fn work_lost_bounded(r: &RunReport, bound: SimDuration) -> Vec<String> {
    let mut v = Vec::new();
    for (c, cluster) in r.clusters.iter().enumerate() {
        for (i, &lost) in cluster.work_lost.iter().enumerate() {
            if lost > bound {
                v.push(format!(
                    "cluster {c}: rollback {i} lost {lost} of work (bound {bound})"
                ));
            }
        }
    }
    v
}

/// Panic with every violation listed (tests' entry point).
///
/// # Panics
/// If `violations` is non-empty.
pub fn assert_clean(violations: Vec<String>) {
    assert!(
        violations.is_empty(),
        "protocol invariant violations:\n  - {}",
        violations.join("\n  - ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;
    use hc3i_core::SeqNum;
    use simdriver::ClusterStats;

    fn t(min: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_minutes(min)
    }

    fn report_with_rollbacks(per_cluster: Vec<Vec<u64>>) -> RunReport {
        RunReport {
            clusters: per_cluster
                .into_iter()
                .map(|times| ClusterStats {
                    rollbacks: times.into_iter().map(|m| (t(m), SeqNum(1), 0)).collect(),
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn wave_accepts_direct_hit_and_cascade() {
        let r = report_with_rollbacks(vec![vec![20], vec![20]]);
        let waves = [FaultWave {
            from: t(19),
            until: t(25),
            direct: vec![0],
        }];
        assert!(rollback_waves(&r, &waves).is_empty());
    }

    #[test]
    fn wave_rejects_missing_direct_rollback() {
        let r = report_with_rollbacks(vec![vec![], vec![]]);
        let waves = [FaultWave {
            from: t(19),
            until: t(25),
            direct: vec![0],
        }];
        let v = rollback_waves(&r, &waves);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("direct hit expects 1"));
    }

    #[test]
    fn wave_accepts_direct_hit_with_cascade_back() {
        // A second rollback at the direct victim (dirty-state cascade-back
        // after a late dependent alert) is within bounds; a third is not.
        let r = report_with_rollbacks(vec![vec![20, 22], vec![]]);
        let waves = [FaultWave {
            from: t(19),
            until: t(25),
            direct: vec![0],
        }];
        assert!(rollback_waves(&r, &waves).is_empty());
    }

    #[test]
    fn wave_rejects_triple_rollback_and_strays() {
        let r = report_with_rollbacks(vec![vec![20, 21, 22], vec![5]]);
        let waves = [FaultWave {
            from: t(19),
            until: t(25),
            direct: vec![0],
        }];
        let v = rollback_waves(&r, &waves);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("direct hit expects 1")));
        assert!(v.iter().any(|m| m.contains("outside every declared wave")));
    }

    #[test]
    fn no_waves_means_no_rollbacks() {
        let quiet = report_with_rollbacks(vec![vec![], vec![]]);
        assert!(rollback_waves(&quiet, &[]).is_empty());
        let noisy = report_with_rollbacks(vec![vec![10], vec![]]);
        assert_eq!(rollback_waves(&noisy, &[]).len(), 1);
    }

    #[test]
    fn gc_liveness_flags_starvation_and_growth() {
        let mut r = report_with_rollbacks(vec![vec![]]);
        r.clusters[0].gc_before_after = vec![(5, 2), (4, 1)];
        let ok = GcExpectation {
            min_collections: 2,
            max_after: 3,
        };
        assert!(gc_liveness(&r, &ok).is_empty());
        assert_eq!(
            gc_liveness(
                &r,
                &GcExpectation {
                    min_collections: 3,
                    max_after: 3
                }
            )
            .len(),
            1
        );
        r.clusters[0].gc_before_after = vec![(5, 2), (2, 9)];
        let v = gc_liveness(&r, &ok);
        assert!(v.iter().any(|m| m.contains("grew storage")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("after the final")), "{v:?}");
    }

    #[test]
    fn ledger_checks_require_a_ledger() {
        let stats = HostileRunStats::default();
        assert_eq!(no_lost_committed_work(&stats).len(), 1);
        assert_eq!(delivered_record_consistency(&stats).len(), 1);
    }

    #[test]
    #[should_panic(expected = "protocol invariant violations")]
    fn assert_clean_panics_with_details() {
        assert_clean(vec!["boom".into()]);
    }
}
