//! The campaign runner: sweep scenarios × topologies × seeds, check every
//! invariant on every cell, and render a deterministic JSON summary.

use crate::invariants;
use crate::json;
use crate::scenarios::{scenarios, topologies, Scenario};
use netsim::Topology;
use simdriver::run_hostile;

/// What to sweep. Scenarios and topologies always come from the library;
/// the plan only chooses the seeds.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Seeds each scenario × topology cell is run with.
    pub seeds: Vec<u64>,
    /// Simulator shards each cell runs on. The parallel executive is
    /// byte-deterministic, so any value reproduces the same golden
    /// summary — CI runs the campaign at 4 shards to prove exactly that.
    pub sim_shards: usize,
}

impl Default for CampaignPlan {
    fn default() -> Self {
        // 20040426: the paper's publication date. The others are arbitrary
        // but fixed — the golden summary is keyed to them.
        Self {
            seeds: vec![20040426, 7, 424242],
            sim_shards: 1,
        }
    }
}

/// The outcome of one campaign cell (scenario × topology × seed).
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Scenario name.
    pub scenario: &'static str,
    /// Topology preset name.
    pub topology: &'static str,
    /// Seed the cell ran with.
    pub seed: u64,
    /// Invariant violations (empty = cell passed).
    pub violations: Vec<String>,
    /// Total rollbacks across the federation.
    pub rollbacks: u64,
    /// Application messages the workload issued.
    pub app_sent: u64,
    /// Application messages delivered end-to-end.
    pub app_delivered: u64,
    /// Hostile duplicates injected.
    pub duplicates: u64,
    /// Messages held at a partition cut.
    pub held: u64,
    /// Messages reordered past FIFO.
    pub reordered: u64,
    /// Messages the lossy wire dropped (retransmitted copies count
    /// individually). Console-only: deliberately absent from
    /// [`to_json`](CampaignSummary::to_json) to keep the golden schema
    /// stable.
    pub lost: u64,
    /// Copies the reliable transport put back on the wire. Console-only,
    /// like `lost`.
    pub retransmissions: u64,
    /// Completed garbage collections across the federation.
    pub gc_runs: u64,
    /// Forced (communication-induced) CLCs across the federation.
    pub forced_clcs: u64,
    /// Unforced (timer-driven) CLCs across the federation.
    pub unforced_clcs: u64,
    /// Simulator events dispatched (a cheap whole-run fingerprint).
    pub events: u64,
}

/// A completed campaign: one [`CellOutcome`] per cell, in deterministic
/// scenario-major, then topology, then seed order.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// All cell outcomes.
    pub cells: Vec<CellOutcome>,
}

impl CampaignSummary {
    /// True when no cell recorded a violation.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.violations.is_empty())
    }

    /// Cells with at least one violation.
    pub fn failures(&self) -> Vec<&CellOutcome> {
        self.cells
            .iter()
            .filter(|c| !c.violations.is_empty())
            .collect()
    }

    /// Render the summary as deterministic, diff-friendly JSON (one cell
    /// per entry, fixed key order, no wall-clock values, trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"hc3i-campaign-v1\",\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"scenario\": \"{}\",\n",
                json::escape(c.scenario)
            ));
            out.push_str(&format!(
                "      \"topology\": \"{}\",\n",
                json::escape(c.topology)
            ));
            out.push_str(&format!("      \"seed\": {},\n", c.seed));
            out.push_str(&format!(
                "      \"violations\": {},\n",
                json::string_array(&c.violations)
            ));
            out.push_str(&format!("      \"rollbacks\": {},\n", c.rollbacks));
            out.push_str(&format!("      \"app_sent\": {},\n", c.app_sent));
            out.push_str(&format!("      \"app_delivered\": {},\n", c.app_delivered));
            out.push_str(&format!("      \"duplicates\": {},\n", c.duplicates));
            out.push_str(&format!("      \"held\": {},\n", c.held));
            out.push_str(&format!("      \"reordered\": {},\n", c.reordered));
            out.push_str(&format!("      \"gc_runs\": {},\n", c.gc_runs));
            out.push_str(&format!("      \"forced_clcs\": {},\n", c.forced_clcs));
            out.push_str(&format!("      \"unforced_clcs\": {},\n", c.unforced_clcs));
            out.push_str(&format!("      \"events\": {}\n", c.events));
            out.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Run one cell: build the scenario for `(topo, seed)`, run it, and check
/// every invariant.
fn run_cell(
    scenario: &Scenario,
    topo_name: &'static str,
    topo: &Topology,
    seed: u64,
    sim_shards: usize,
) -> CellOutcome {
    let built = scenario.build(topo, seed);
    let (report, hostile) = run_hostile(built.cfg.with_sim_shards(sim_shards));

    let mut violations = Vec::new();
    violations.extend(invariants::soundness(&report));
    violations.extend(invariants::rollback_waves(&report, &built.waves));
    violations.extend(invariants::gc_liveness(&report, &built.gc));
    violations.extend(invariants::no_lost_committed_work(&hostile));
    violations.extend(invariants::delivered_record_consistency(&hostile));

    CellOutcome {
        scenario: scenario.name,
        topology: topo_name,
        seed,
        violations,
        rollbacks: report.total_rollbacks() as u64,
        app_sent: report.app_sent,
        app_delivered: report.app_delivered,
        duplicates: hostile.duplicates_injected,
        held: hostile.messages_held,
        reordered: hostile.messages_reordered,
        lost: hostile.messages_lost,
        retransmissions: hostile.retransmissions,
        gc_runs: report
            .clusters
            .iter()
            .map(|c| c.gc_before_after.len() as u64)
            .sum(),
        forced_clcs: report.clusters.iter().map(|c| c.forced_clcs).sum(),
        unforced_clcs: report.clusters.iter().map(|c| c.unforced_clcs).sum(),
        events: report.events_processed,
    }
}

/// Run the full scenario × topology × seed matrix.
///
/// `progress` is called after each cell with the finished outcome — the
/// CLI uses it to stream one line per cell; pass `|_| {}` for silence.
pub fn run_campaign(
    plan: &CampaignPlan,
    mut progress: impl FnMut(&CellOutcome),
) -> CampaignSummary {
    let topos = topologies();
    let mut cells = Vec::new();
    for scenario in scenarios() {
        for (topo_name, topo) in &topos {
            for &seed in &plan.seeds {
                let cell = run_cell(&scenario, topo_name, topo, seed, plan.sim_shards);
                progress(&cell);
                cells.push(cell);
            }
        }
    }
    CampaignSummary { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small cell, run twice: identical outcome (the determinism the
    /// golden diff rests on), and all invariants hold.
    #[test]
    fn single_cell_is_deterministic_and_clean() {
        let topos = topologies();
        let (name, topo) = &topos[0];
        let scenarios = scenarios();
        let a = run_cell(&scenarios[0], name, topo, 7, 1);
        let b = run_cell(&scenarios[0], name, topo, 7, 1);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.events, b.events);
        assert_eq!(a.app_delivered, b.app_delivered);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(a.duplicates, b.duplicates);
    }

    /// The same cell run on the parallel executive reports the exact same
    /// outcome — the property the `--sim-shards 4` golden-diff CI job
    /// checks across the whole matrix.
    #[test]
    fn single_cell_is_shard_invariant() {
        let topos = topologies();
        let (name, topo) = &topos[0];
        let scenarios = scenarios();
        let seq = run_cell(&scenarios[0], name, topo, 7, 1);
        let par = run_cell(&scenarios[0], name, topo, 7, 4);
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    #[test]
    fn json_shape_is_stable() {
        let summary = CampaignSummary {
            cells: vec![CellOutcome {
                scenario: "s",
                topology: "t",
                seed: 1,
                violations: vec!["v".into()],
                rollbacks: 2,
                app_sent: 3,
                app_delivered: 4,
                duplicates: 5,
                held: 6,
                reordered: 7,
                lost: 0,
                retransmissions: 0,
                gc_runs: 8,
                forced_clcs: 9,
                unforced_clcs: 10,
                events: 11,
            }],
        };
        let j = summary.to_json();
        assert!(j.starts_with("{\n  \"schema\": \"hc3i-campaign-v1\""));
        assert!(j.contains("\"violations\": [\"v\"]"));
        assert!(j.ends_with("  ]\n}\n"));
        assert!(!summary.passed());
        assert_eq!(summary.failures().len(), 1);
    }
}
