//! Sequence numbers and Direct Dependency Vectors (DDV).
//!
//! Every cluster maintains a **sequence number (SN)** incremented at each
//! committed cluster-level checkpoint (CLC), and a **DDV** with one entry
//! per *cluster* of the federation (paper §3.2):
//!
//! * `DDV[self] = SN` of the own cluster,
//! * `DDV[other] =` last SN received from `other` (0 if none).
//!
//! DDV entries are monotone over a cluster's CLC sequence, which is what
//! makes the rollback rule ("oldest CLC whose entry for the faulty cluster
//! is >= the alert SN") a simple scan.

use std::fmt;

/// A cluster-level checkpoint sequence number.
///
/// `SeqNum(0)` means "before any checkpoint" / "never heard from"; the
/// initial CLC taken at application start commits as `SeqNum(1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The zero sequence number (no checkpoint committed / never heard).
    pub const ZERO: SeqNum = SeqNum(0);

    /// The successor sequence number.
    #[inline]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// Raw value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A Direct Dependency Vector: one [`SeqNum`] per cluster of the federation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ddv {
    entries: Vec<SeqNum>,
}

impl Ddv {
    /// All-zero DDV for a federation of `n` clusters.
    pub fn zeros(n: usize) -> Self {
        Ddv {
            entries: vec![SeqNum::ZERO; n],
        }
    }

    /// Build from explicit entries.
    pub fn from_entries(entries: Vec<SeqNum>) -> Self {
        Ddv { entries }
    }

    /// Number of clusters this DDV covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for a zero-cluster DDV (degenerate).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry for cluster `i`.
    #[inline]
    pub fn get(&self, i: usize) -> SeqNum {
        self.entries[i]
    }

    /// Set entry for cluster `i`.
    #[inline]
    pub fn set(&mut self, i: usize, sn: SeqNum) {
        self.entries[i] = sn;
    }

    /// Raise entry `i` to at least `sn`; returns `true` if it changed.
    pub fn raise(&mut self, i: usize, sn: SeqNum) -> bool {
        if sn > self.entries[i] {
            self.entries[i] = sn;
            true
        } else {
            false
        }
    }

    /// Component-wise max merge (the FullDdv transitive variant, paper §7).
    /// Returns `true` if any entry increased.
    pub fn merge_max(&mut self, other: &Ddv) -> bool {
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "DDV dimension mismatch"
        );
        let mut changed = false;
        for (mine, theirs) in self.entries.iter_mut().zip(&other.entries) {
            if theirs > mine {
                *mine = *theirs;
                changed = true;
            }
        }
        changed
    }

    /// Component-wise `<=` (is every dependency of `self` covered by
    /// `other`?). Used by consistency checks.
    pub fn dominated_by(&self, other: &Ddv) -> bool {
        assert_eq!(self.entries.len(), other.entries.len());
        self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b)
    }

    /// Iterate entries in cluster order.
    pub fn iter(&self) -> impl Iterator<Item = SeqNum> + '_ {
        self.entries.iter().copied()
    }
}

impl fmt::Display for Ddv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqnum_next_and_display() {
        assert_eq!(SeqNum::ZERO.next(), SeqNum(1));
        assert_eq!(SeqNum(41).next().value(), 42);
        assert_eq!(SeqNum(7).to_string(), "7");
    }

    #[test]
    fn zeros_has_all_zero_entries() {
        let d = Ddv::zeros(3);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|e| e == SeqNum::ZERO));
    }

    #[test]
    fn raise_only_increases() {
        let mut d = Ddv::zeros(2);
        assert!(d.raise(1, SeqNum(5)));
        assert!(!d.raise(1, SeqNum(5)), "equal value is not a raise");
        assert!(!d.raise(1, SeqNum(3)), "lower value is not a raise");
        assert_eq!(d.get(1), SeqNum(5));
        assert_eq!(d.get(0), SeqNum::ZERO);
    }

    #[test]
    fn merge_max_is_componentwise() {
        let mut a = Ddv::from_entries(vec![SeqNum(1), SeqNum(5), SeqNum(0)]);
        let b = Ddv::from_entries(vec![SeqNum(2), SeqNum(3), SeqNum(0)]);
        assert!(a.merge_max(&b));
        assert_eq!(a, Ddv::from_entries(vec![SeqNum(2), SeqNum(5), SeqNum(0)]));
        // Merging something already dominated changes nothing.
        assert!(!a.merge_max(&b));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn merge_rejects_dimension_mismatch() {
        let mut a = Ddv::zeros(2);
        a.merge_max(&Ddv::zeros(3));
    }

    #[test]
    fn dominated_by_is_a_partial_order() {
        let a = Ddv::from_entries(vec![SeqNum(1), SeqNum(2)]);
        let b = Ddv::from_entries(vec![SeqNum(2), SeqNum(2)]);
        let c = Ddv::from_entries(vec![SeqNum(0), SeqNum(9)]);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        assert!(
            !a.dominated_by(&c) && !c.dominated_by(&a),
            "incomparable pair"
        );
        assert!(a.dominated_by(&a), "reflexive");
    }

    #[test]
    fn display_format() {
        let d = Ddv::from_entries(vec![SeqNum(1), SeqNum(0), SeqNum(3)]);
        assert_eq!(d.to_string(), "[1 0 3]");
    }
}
