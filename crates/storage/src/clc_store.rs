//! Per-cluster store of committed cluster-level checkpoints (CLCs).
//!
//! The communication-induced layer forces clusters to keep *multiple* CLCs
//! so that a recovery line can be computed at rollback time (paper §3.5).
//! This store keeps them ordered by sequence number and implements the three
//! queries the protocol needs:
//!
//! * the newest CLC (what a faulty cluster restores),
//! * the rollback target for an incoming alert (newest CLC whose DDV entry
//!   for the faulty cluster is *below* the alert SN — everything from the
//!   oldest offending CLC onward is discarded),
//! * GC pruning below a safe sequence number.

use crate::stamp::{Ddv, SeqNum};
use desim::SimTime;
use std::sync::Arc;

/// Metadata of one committed CLC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClcMeta {
    /// The cluster SN value this CLC committed as (1 for the initial CLC).
    pub sn: SeqNum,
    /// The DDV stamped on this CLC at commit time.
    ///
    /// `Arc`-shared: every node of a cluster stores the *same* immutable
    /// stamp the coordinator broadcast in the `ClcCommit`, and the
    /// garbage collector's DDV-list collection borrows these stamps
    /// instead of deep-cloning one vector per stored CLC per round.
    pub ddv: Arc<Ddv>,
    /// Commit time.
    pub committed_at: SimTime,
    /// Whether this CLC was forced by an incoming inter-cluster message.
    pub forced: bool,
}

/// One stored CLC: metadata plus an engine-specific payload (unit for the
/// discrete-event simulator, per-node state fragments for the threaded
/// runtime).
#[derive(Debug, Clone)]
pub struct ClcEntry<T> {
    /// Protocol-visible metadata.
    pub meta: ClcMeta,
    /// Engine-specific checkpoint content.
    pub payload: T,
}

/// Ordered store of one cluster's committed CLCs.
#[derive(Debug, Clone)]
pub struct ClcStore<T> {
    entries: Vec<ClcEntry<T>>,
    /// High-water mark of stored CLCs (for the storage-cost evaluation).
    peak: usize,
}

impl<T> Default for ClcStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ClcStore<T> {
    /// Empty store.
    pub fn new() -> Self {
        ClcStore {
            entries: vec![],
            peak: 0,
        }
    }

    /// Append a committed CLC. SNs must be strictly increasing.
    pub fn commit(&mut self, meta: ClcMeta, payload: T) {
        if let Some(last) = self.entries.last() {
            assert!(
                meta.sn > last.meta.sn,
                "CLC sequence numbers must increase: {} after {}",
                meta.sn,
                last.meta.sn
            );
            debug_assert!(
                last.meta.ddv.dominated_by(&meta.ddv),
                "DDV must be monotone across a cluster's CLCs"
            );
        }
        self.entries.push(ClcEntry { meta, payload });
        self.peak = self.peak.max(self.entries.len());
    }

    /// Number of stored CLCs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest number of CLCs ever stored simultaneously.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Newest stored CLC.
    pub fn latest(&self) -> Option<&ClcEntry<T>> {
        self.entries.last()
    }

    /// All stored `(SN, DDV)` pairs, oldest first (what the GC initiator
    /// collects from each cluster). The stamps are `Arc`-shared with the
    /// store — assembling the list clones pointers, not vectors.
    pub fn ddv_list(&self) -> Vec<(SeqNum, Arc<Ddv>)> {
        self.entries
            .iter()
            .map(|e| (e.meta.sn, e.meta.ddv.clone()))
            .collect()
    }

    /// Entry with exactly this SN.
    pub fn get(&self, sn: SeqNum) -> Option<&ClcEntry<T>> {
        self.entries.iter().find(|e| e.meta.sn == sn)
    }

    /// The rollback target for an alert `(faulty_cluster, alert_sn)`:
    /// the **oldest** CLC whose `DDV[faulty] >= alert_sn` (the paper's
    /// rule). Returns `None` when the *newest* CLC is below the bound —
    /// the cluster does not depend on the lost execution.
    ///
    /// Restoring the oldest offending CLC is safe because the message that
    /// raised the entry is delivered only *after* the forced CLC commits:
    /// a CLC's state depends on the faulty cluster only up to its
    /// *predecessor's* DDV entry, which is `< alert_sn` by minimality.
    pub fn rollback_target(&self, faulty: usize, alert_sn: SeqNum) -> Option<&ClcEntry<T>> {
        let latest = self.entries.last()?;
        if latest.meta.ddv.get(faulty) < alert_sn {
            return None; // no dependency on the lost suffix
        }
        // DDV entries are monotone: the first (oldest) entry at or above
        // the bound is the restore point.
        self.entries
            .iter()
            .find(|e| e.meta.ddv.get(faulty) >= alert_sn)
    }

    /// Discard every CLC newer than `sn` (after restoring the CLC with
    /// sequence number `sn`). Returns how many were dropped.
    pub fn truncate_after(&mut self, sn: SeqNum) -> usize {
        let keep = self.entries.iter().take_while(|e| e.meta.sn <= sn).count();
        let dropped = self.entries.len() - keep;
        self.entries.truncate(keep);
        dropped
    }

    /// GC: drop CLCs with `SN < min_sn`, but always keep at least the
    /// newest one. Returns how many were removed.
    pub fn prune_below(&mut self, min_sn: SeqNum) -> usize {
        if self.entries.is_empty() {
            return 0;
        }
        let last_sn = self.entries.last().expect("non-empty").meta.sn;
        let threshold = min_sn.min(last_sn);
        let before = self.entries.len();
        self.entries.retain(|e| e.meta.sn >= threshold);
        before - self.entries.len()
    }

    /// Iterate stored entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ClcEntry<T>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(sn: u64, ddv: Vec<u64>, forced: bool) -> ClcMeta {
        ClcMeta {
            sn: SeqNum(sn),
            ddv: Arc::new(Ddv::from_entries(ddv.into_iter().map(SeqNum).collect())),
            committed_at: SimTime::ZERO,
            forced,
        }
    }

    /// A 2-cluster store seen from cluster 0's perspective:
    /// DDV = [own SN, last SN heard from cluster 1].
    fn sample_store() -> ClcStore<()> {
        let mut s = ClcStore::new();
        s.commit(meta(1, vec![1, 0], false), ());
        s.commit(meta(2, vec![2, 0], false), ());
        s.commit(meta(3, vec![3, 2], true), ());
        s.commit(meta(4, vec![4, 5], true), ());
        s
    }

    #[test]
    fn commit_orders_and_tracks_peak() {
        let s = sample_store();
        assert_eq!(s.len(), 4);
        assert_eq!(s.peak(), 4);
        assert_eq!(s.latest().unwrap().meta.sn, SeqNum(4));
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn commit_rejects_non_increasing_sn() {
        let mut s = sample_store();
        s.commit(meta(4, vec![4, 5], false), ());
    }

    #[test]
    fn rollback_target_none_when_independent() {
        let s = sample_store();
        // Alert from cluster 1 with SN 6: even the newest CLC has DDV[1]=5<6.
        assert!(s.rollback_target(1, SeqNum(6)).is_none());
    }

    #[test]
    fn rollback_target_oldest_at_or_above_alert() {
        let s = sample_store();
        // Alert from cluster 1 with SN 3: the oldest CLC with DDV[1] >= 3
        // is CLC4 (DDV[1]=5). Its predecessor CLC3 has DDV[1]=2 < 3, so
        // CLC4's state contains no delivery stamped >= 3: safe to restore.
        let target = s.rollback_target(1, SeqNum(3)).unwrap();
        assert_eq!(target.meta.sn, SeqNum(4));
        // Alert SN 1: the oldest offending is CLC3 (DDV[1]=2 >= 1).
        let target = s.rollback_target(1, SeqNum(1)).unwrap();
        assert_eq!(target.meta.sn, SeqNum(3));
        // Alert SN 2: same target (first entry >= 2 is CLC3).
        let target = s.rollback_target(1, SeqNum(2)).unwrap();
        assert_eq!(target.meta.sn, SeqNum(3));
    }

    #[test]
    fn rollback_target_first_forced_clc_when_everything_depends() {
        let mut s = ClcStore::new();
        s.commit(meta(1, vec![1, 0], false), ());
        s.commit(meta(2, vec![2, 1], true), ());
        // Alert SN 1 from cluster 1: CLC2 is the first to record the
        // dependency — it is the restore point (the message that raised
        // the entry was delivered after CLC2 committed).
        let t = s.rollback_target(1, SeqNum(1)).unwrap();
        assert_eq!(t.meta.sn, SeqNum(2));
    }

    #[test]
    fn truncate_after_drops_future() {
        let mut s = sample_store();
        assert_eq!(s.truncate_after(SeqNum(2)), 2);
        assert_eq!(s.latest().unwrap().meta.sn, SeqNum(2));
        assert_eq!(s.peak(), 4, "peak is a high-water mark");
    }

    #[test]
    fn prune_below_keeps_tail() {
        let mut s = sample_store();
        assert_eq!(s.prune_below(SeqNum(3)), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().next().unwrap().meta.sn, SeqNum(3));
    }

    #[test]
    fn prune_never_removes_latest() {
        let mut s = sample_store();
        // min_sn far beyond anything stored: keep only the newest.
        assert_eq!(s.prune_below(SeqNum(100)), 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.latest().unwrap().meta.sn, SeqNum(4));
    }

    #[test]
    fn prune_empty_store_is_noop() {
        let mut s: ClcStore<()> = ClcStore::new();
        assert_eq!(s.prune_below(SeqNum(5)), 0);
    }

    #[test]
    fn ddv_list_round_trips() {
        let s = sample_store();
        let l = s.ddv_list();
        assert_eq!(l.len(), 4);
        assert_eq!(l[2].0, SeqNum(3));
        assert_eq!(l[2].1.get(1), SeqNum(2));
    }

    #[test]
    fn get_by_sn() {
        let s = sample_store();
        assert!(s.get(SeqNum(3)).is_some());
        assert!(s.get(SeqNum(9)).is_none());
    }
}
