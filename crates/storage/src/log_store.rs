//! Sender-side optimistic message log.
//!
//! Paper §3.3: "When a message is sent outside a cluster, the sender logs it
//! optimistically in its volatile memory. The message is acknowledged with
//! the receiver's SN which is logged along with the message itself." On a
//! rollback alert from cluster `X` with sequence number `s`, logged messages
//! destined to `X` that were acknowledged with an SN **greater than `s`**,
//! or not acknowledged at all, are resent (§3.4). The GC removes logged
//! messages acked with an SN below the receiver cluster's safe minimum
//! (§3.5).

use crate::stamp::SeqNum;

/// Identifier of one logged message within a sender's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogId(pub u64);

/// One optimistically logged inter-cluster message.
#[derive(Debug, Clone)]
pub struct LogEntry<P> {
    /// Log identifier (used to attach the ack).
    pub id: LogId,
    /// Destination cluster index.
    pub dest_cluster: usize,
    /// Destination node rank within the destination cluster.
    pub dest_rank: u32,
    /// The payload to replay on demand.
    pub payload: P,
    /// Payload size in bytes (storage-cost accounting).
    pub bytes: u64,
    /// Receiver cluster SN from the ack, if the ack arrived.
    pub ack_sn: Option<SeqNum>,
    /// The *sender* cluster's SN when the message was logged. A send that
    /// happened at own SN `s` occurred after the CLC numbered `s` committed,
    /// so a rollback restoring CLC `r` discards entries with
    /// `logged_at_sn >= r` (those sends will happen again).
    pub logged_at_sn: SeqNum,
}

/// A sender's volatile log of inter-cluster messages.
#[derive(Debug, Clone)]
pub struct MessageLog<P> {
    next_id: u64,
    entries: Vec<LogEntry<P>>,
    /// High-water mark of simultaneously logged messages.
    peak: usize,
}

impl<P> Default for MessageLog<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> MessageLog<P> {
    /// Empty log.
    pub fn new() -> Self {
        MessageLog {
            next_id: 0,
            entries: vec![],
            peak: 0,
        }
    }

    /// Log an outgoing inter-cluster message sent while the own cluster's SN
    /// was `own_sn`; returns its id.
    pub fn log(
        &mut self,
        dest_cluster: usize,
        dest_rank: u32,
        payload: P,
        bytes: u64,
        own_sn: SeqNum,
    ) -> LogId {
        let id = LogId(self.next_id);
        self.next_id += 1;
        self.entries.push(LogEntry {
            id,
            dest_cluster,
            dest_rank,
            payload,
            bytes,
            ack_sn: None,
            logged_at_sn: own_sn,
        });
        self.peak = self.peak.max(self.entries.len());
        id
    }

    /// Attach the receiver-SN acknowledgement to a logged message.
    /// Returns `false` if the entry no longer exists (already pruned).
    pub fn ack(&mut self, id: LogId, receiver_sn: SeqNum) -> bool {
        match self.entries.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.ack_sn = Some(receiver_sn);
                true
            }
            None => false,
        }
    }

    /// Messages to replay after an alert `(dest_cluster, alert_sn)`:
    /// destined to that cluster and acked with SN **>= alert_sn**, or not
    /// acked at all.
    ///
    /// The paper states the condition as strictly greater; but a message
    /// acknowledged with SN `s` was *delivered* while the receiver stood in
    /// the execution segment after CLC `s`, so restoring CLC `s` itself
    /// (alert SN = `s`) also loses the delivery. We therefore use `>=`;
    /// receiver-side duplicate suppression makes the inclusive bound safe.
    pub fn to_resend(&self, dest_cluster: usize, alert_sn: SeqNum) -> Vec<&LogEntry<P>> {
        self.entries
            .iter()
            .filter(|e| {
                e.dest_cluster == dest_cluster
                    && match e.ack_sn {
                        None => true,
                        Some(sn) => sn >= alert_sn,
                    }
            })
            .collect()
    }

    /// Mark an entry as resent: its previous ack referred to a receiver
    /// state that has been rolled back, so the entry reverts to unacked
    /// until the replay is acknowledged again.
    pub fn mark_resent(&mut self, id: LogId) -> bool {
        match self.entries.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.ack_sn = None;
                true
            }
            None => false,
        }
    }

    /// GC: drop entries destined to `dest_cluster` acked with SN < `min_sn`.
    /// Unacked entries are always kept. Returns how many were removed.
    pub fn prune(&mut self, dest_cluster: usize, min_sn: SeqNum) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| {
            e.dest_cluster != dest_cluster
                || match e.ack_sn {
                    None => true,
                    Some(sn) => sn >= min_sn,
                }
        });
        before - self.entries.len()
    }

    /// Remove every logged message.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Apply a *sender-side* rollback restoring the CLC numbered
    /// `restore_sn`: entries logged at own SN `>= restore_sn` belong to the
    /// discarded execution suffix (those sends will happen again) and are
    /// dropped. Returns how many were removed.
    pub fn truncate_after_rollback(&mut self, restore_sn: SeqNum) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.logged_at_sn < restore_sn);
        before - self.entries.len()
    }

    /// Number of currently logged messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// High-water mark of simultaneously logged messages.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total bytes currently held.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Iterate current entries in logging order.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry<P>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> MessageLog<&'static str> {
        let mut l = MessageLog::new();
        let a = l.log(1, 0, "m1", 100, SeqNum(1));
        let b = l.log(1, 3, "m2", 200, SeqNum(2));
        let _c = l.log(2, 0, "m3", 300, SeqNum(3));
        l.ack(a, SeqNum(2));
        l.ack(b, SeqNum(5));
        l
    }

    #[test]
    fn log_and_ack() {
        let mut l = MessageLog::new();
        let id = l.log(1, 0, "x", 10, SeqNum(1));
        assert!(l.ack(id, SeqNum(3)));
        assert_eq!(l.iter().next().unwrap().ack_sn, Some(SeqNum(3)));
        assert!(!l.ack(LogId(99), SeqNum(1)), "unknown id");
    }

    #[test]
    fn resend_selects_by_ack_sn() {
        let l = filled();
        // Alert from cluster 1 with SN 3: m2 (acked 5 > 3) must be resent,
        // m1 (acked 2 <= 3) must not; m3 goes to another cluster.
        let r = l.to_resend(1, SeqNum(3));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].payload, "m2");
    }

    #[test]
    fn resend_includes_unacked() {
        let mut l = filled();
        l.log(1, 9, "m4", 50, SeqNum(3)); // never acked
        let r = l.to_resend(1, SeqNum(100));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].payload, "m4");
    }

    #[test]
    fn resend_boundary_is_inclusive() {
        let l = filled();
        // Alert SN exactly equal to the ack: the delivery happened *after*
        // the restored CLC committed, so it is lost — resend.
        let r = l.to_resend(1, SeqNum(5));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].payload, "m2");
        // One past the ack: the delivery survives in the restored state.
        let r = l.to_resend(1, SeqNum(6));
        assert!(r.is_empty());
    }

    #[test]
    fn prune_removes_old_acked_only() {
        let mut l = filled();
        assert_eq!(l.prune(1, SeqNum(5)), 1); // m1 (acked 2) goes
        assert_eq!(l.len(), 2);
        // m2 acked exactly at min stays.
        assert!(l.iter().any(|e| e.payload == "m2"));
        // Other-cluster entry untouched.
        assert!(l.iter().any(|e| e.payload == "m3"));
    }

    #[test]
    fn prune_keeps_unacked() {
        let mut l = MessageLog::new();
        l.log(0, 0, "pending", 1, SeqNum(1));
        assert_eq!(l.prune(0, SeqNum(100)), 0);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn clear_on_sender_rollback() {
        let mut l = filled();
        assert_eq!(l.clear(), 3);
        assert!(l.is_empty());
        assert_eq!(l.peak(), 3, "peak survives clear");
    }

    #[test]
    fn byte_accounting() {
        let mut l = filled();
        assert_eq!(l.bytes(), 600);
        l.prune(1, SeqNum(5));
        assert_eq!(l.bytes(), 500);
    }

    #[test]
    fn sender_rollback_drops_suffix_entries() {
        let mut l = filled(); // logged at own SN 1, 2, 3
                              // Restoring CLC 2: entries logged at SN >= 2 are from the discarded
                              // suffix.
        assert_eq!(l.truncate_after_rollback(SeqNum(2)), 2);
        assert_eq!(l.len(), 1);
        assert_eq!(l.iter().next().unwrap().payload, "m1");
    }

    #[test]
    fn sender_rollback_to_initial_clears_all() {
        let mut l = filled();
        assert_eq!(l.truncate_after_rollback(SeqNum(1)), 3);
        assert!(l.is_empty());
    }
}
