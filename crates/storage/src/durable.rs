//! Log-structured durable backend for CLC stores.
//!
//! The paper implements stable storage as in-memory neighbour replication,
//! which survives the failure model's single node fault but not a power
//! loss. This module keeps every node's [`ClcStore`] on disk as an
//! append-only *segment log* so a hard-killed federation recovers to its
//! last durable CLC:
//!
//! * **Segments** — files `seg-NNNNNNNN.log`, each starting with an 8-byte
//!   magic header. The highest-numbered segment is the active tail; older
//!   segments are immutable.
//! * **Frames** — every mutation is one length-prefixed, CRC-32-checksummed
//!   record: `[len: u32 LE][crc32(payload): u32 LE][payload]`. The payload
//!   is an op byte, the node's global index, and an op-specific body
//!   (commit, truncate-after-rollback, GC prune, or a whole-chain
//!   snapshot).
//! * **Compaction** — once enough frame bytes accumulate, the store
//!   rewrites every node's flattened delta chain as snapshot frames into a
//!   fresh segment and deletes the older segments (newest-first, so any
//!   crash mid-deletion leaves a contiguous prefix of old segments plus
//!   the complete snapshot segment — both replay to the same state,
//!   because a snapshot *replaces* the node's chain).
//!
//! ## Durability contract
//!
//! With [`SyncPolicy::EveryCommit`] (the default), `fsync` runs after
//! every commit frame: once [`DurableStore::append_commit`] returns, that
//! CLC survives a crash. Truncate and prune frames are buffered by the OS
//! until the next commit's fsync — losing them merely recovers a slightly
//! *older* (still consistent) state, because frames after them in the log
//! are lost too: an `fsync`-ed log prefix is always a state the federation
//! actually passed through. [`SyncPolicy::Manual`] leaves all flushing to
//! explicit [`DurableStore::sync`] calls (benchmarks, bulk image
//! construction).
//!
//! ## Torn-tail policy
//!
//! Recovery replays segments in order. In the **final** segment, the first
//! frame whose length field overruns the file or whose CRC mismatches is
//! treated as a torn write: that frame and everything after it is
//! discarded ([`DurableStore::open`] truncates the file there, and the
//! discarded span is reported via [`TornTail`]). Any damage in a
//! *non-final* segment — or a frame that passes its CRC but fails to
//! decode or violates store monotonicity — is not a torn write and fails
//! recovery with [`DurableError::Corrupt`]. Recovery never panics on
//! arbitrary bytes: every invariant [`ClcStore::commit`] asserts is
//! checked (and turned into an error) first.

use crate::clc_store::{ClcMeta, ClcStore};
use crate::stamp::{Ddv, SeqNum};
use desim::SimTime;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Segment-file header: magic + layout version.
const SEG_MAGIC: &[u8; 8] = b"HC3ISEG\x01";
/// Frame ops.
const OP_COMMIT: u8 = 1;
const OP_TRUNCATE: u8 = 2;
const OP_PRUNE: u8 = 3;
const OP_SNAPSHOT: u8 = 4;
/// Ceiling on a single frame payload (a snapshot of one node's chain);
/// anything larger in a length field is damage, not data.
const MAX_FRAME: u32 = 1 << 26;
/// Caps on decoded counts, so a CRC collision on garbage cannot ask for
/// absurd allocations.
const MAX_SNAPSHOT_ENTRIES: u64 = 1 << 24;
const MAX_DDV_LEN: u64 = 1 << 20;

// ---- CRC-32 (IEEE 802.3, reflected) ---------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `bytes` — the frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- varint helpers (same LEB128 shape as the wire codec) -----------------

fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos).ok_or("truncated varint")?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err("varint overflow".into())
}

fn put_meta(buf: &mut Vec<u8>, meta: &ClcMeta) {
    put_u64(buf, meta.sn.0);
    put_u64(buf, meta.ddv.len() as u64);
    for e in meta.ddv.iter() {
        put_u64(buf, e.0);
    }
    put_u64(buf, meta.committed_at.nanos());
    buf.push(meta.forced as u8);
}

fn get_meta(buf: &[u8], pos: &mut usize) -> Result<ClcMeta, String> {
    let sn = SeqNum(get_u64(buf, pos)?);
    let n = get_u64(buf, pos)?;
    if n > MAX_DDV_LEN {
        return Err("oversized DDV".into());
    }
    let mut entries = Vec::with_capacity(n as usize);
    for _ in 0..n {
        entries.push(SeqNum(get_u64(buf, pos)?));
    }
    let committed_at = SimTime(get_u64(buf, pos)?);
    let forced = match buf.get(*pos).ok_or("truncated meta")? {
        0 => false,
        1 => true,
        t => return Err(format!("bad forced byte {t}")),
    };
    *pos += 1;
    Ok(ClcMeta {
        sn,
        ddv: Arc::new(Ddv::from_entries(entries)),
        committed_at,
        forced,
    })
}

// ---- codec plug-in --------------------------------------------------------

/// Serializes one store entry's payload for the segment log.
///
/// Defined here (below the protocol crate in the dependency order) so
/// `hc3i-core` can plug in its byte-stable v2 checkpoint encoding: the
/// `prev` argument is the node's previous chain entry, letting the codec
/// write structural deltas exactly like the store-image format.
pub trait EntryCodec {
    /// What a chain entry's payload is (a node checkpoint upstream).
    type Payload: Clone;

    /// Encode `payload`, optionally as a delta against `prev` (the entry
    /// immediately below it in the node's chain).
    fn encode_payload(&self, payload: &Self::Payload, prev: Option<&Self::Payload>) -> Vec<u8>;

    /// Decode one payload written by [`EntryCodec::encode_payload`] with
    /// the same `prev`. Must consume `buf` exactly and must *never* panic
    /// on arbitrary bytes.
    fn decode_payload(
        &self,
        buf: &[u8],
        prev: Option<&Self::Payload>,
    ) -> Result<Self::Payload, String>;
}

// ---- errors and options ---------------------------------------------------

/// A durable-store failure.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A segment other than the torn tail is damaged, or a checksummed
    /// frame decodes to something that violates store invariants.
    Corrupt {
        /// Segment index the damage was found in.
        segment: u64,
        /// Byte offset of the offending frame within the segment.
        offset: u64,
        /// What failed.
        what: String,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable store I/O: {e}"),
            DurableError::Corrupt {
                segment,
                offset,
                what,
            } => write!(f, "segment {segment} corrupt at byte {offset}: {what}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// When the log flushes to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every commit frame: a returned `append_commit` is a
    /// durable CLC (the default; see the module docs for what this means
    /// for truncate/prune frames).
    EveryCommit,
    /// Flush only on explicit [`DurableStore::sync`] (bulk image
    /// construction, benchmarks).
    Manual,
}

/// Tuning of a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Flush policy.
    pub sync: SyncPolicy,
    /// Rewrite flattened chains into a fresh segment once this many frame
    /// bytes accumulate since the last compaction; `None` compacts only on
    /// explicit [`DurableStore::compact`] calls.
    pub compact_bytes: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::EveryCommit,
            compact_bytes: Some(8 << 20),
        }
    }
}

/// The span recovery discarded from the active segment's tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Segment the tear was found in (always the final one).
    pub segment: u64,
    /// Offset of the first discarded byte.
    pub offset: u64,
    /// How many bytes were discarded.
    pub discarded: u64,
}

/// A read-only recovered image: what [`recover`] rebuilds from a segment
/// directory without touching it.
pub struct Recovered<C: EntryCodec> {
    /// Every node's rebuilt chain, keyed by global node index.
    pub stores: BTreeMap<u64, ClcStore<C::Payload>>,
    /// The tail span that was discarded as a torn write, if any.
    pub torn: Option<TornTail>,
    /// Segments scanned.
    pub segments: u64,
    /// Valid frames replayed.
    pub frames: u64,
}

impl<C: EntryCodec> Recovered<C> {
    /// Total chain entries across all recovered nodes.
    pub fn total_entries(&self) -> u64 {
        self.stores.values().map(|s| s.len() as u64).sum()
    }
}

// ---- replay ---------------------------------------------------------------

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.log"))
}

/// `seg-NNNNNNNN.log` files in `dir`, sorted by index.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurableError> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segs.push((idx, entry.path()));
        }
    }
    segs.sort_unstable_by_key(|&(idx, _)| idx);
    Ok(segs)
}

struct Replayer<'a, C: EntryCodec> {
    codec: &'a C,
    stores: BTreeMap<u64, ClcStore<C::Payload>>,
}

impl<C: EntryCodec> Replayer<'_, C> {
    /// Apply one checksummed frame payload. Errors here are semantic
    /// corruption (the CRC already vouched for the bytes), never a torn
    /// write.
    fn apply(&mut self, payload: &[u8]) -> Result<(), String> {
        let mut pos = 0usize;
        let op = *payload.first().ok_or("empty frame")?;
        pos += 1;
        let node = get_u64(payload, &mut pos)?;
        match op {
            OP_COMMIT => {
                let meta = get_meta(payload, &mut pos)?;
                let store = self.stores.entry(node).or_default();
                validate_next(store, &meta)?;
                let body = &payload[pos..];
                let decoded = {
                    let prev = store.latest().map(|e| &e.payload);
                    self.codec.decode_payload(body, prev)?
                };
                store.commit(meta, decoded);
                Ok(())
            }
            OP_TRUNCATE => {
                let sn = SeqNum(get_u64(payload, &mut pos)?);
                expect_end(payload, pos)?;
                self.stores.entry(node).or_default().truncate_after(sn);
                Ok(())
            }
            OP_PRUNE => {
                let min_sn = SeqNum(get_u64(payload, &mut pos)?);
                expect_end(payload, pos)?;
                self.stores.entry(node).or_default().prune_below(min_sn);
                Ok(())
            }
            OP_SNAPSHOT => {
                let n = get_u64(payload, &mut pos)?;
                if n > MAX_SNAPSHOT_ENTRIES {
                    return Err("oversized snapshot".into());
                }
                let mut chain: ClcStore<C::Payload> = ClcStore::new();
                for _ in 0..n {
                    let meta = get_meta(payload, &mut pos)?;
                    validate_next(&chain, &meta)?;
                    let len = get_u64(payload, &mut pos)? as usize;
                    let body = payload
                        .get(pos..pos.saturating_add(len))
                        .ok_or("truncated snapshot entry")?;
                    pos += len;
                    let decoded = {
                        let prev = chain.latest().map(|e| &e.payload);
                        self.codec.decode_payload(body, prev)?
                    };
                    chain.commit(meta, decoded);
                }
                expect_end(payload, pos)?;
                // A snapshot *replaces* the node's chain: replay is
                // idempotent whether or not pre-compaction segments
                // survived.
                self.stores.insert(node, chain);
                Ok(())
            }
            t => Err(format!("unknown frame op {t}")),
        }
    }
}

fn expect_end(payload: &[u8], pos: usize) -> Result<(), String> {
    if pos == payload.len() {
        Ok(())
    } else {
        Err(format!("{} trailing frame bytes", payload.len() - pos))
    }
}

/// Everything [`ClcStore::commit`] would assert, checked up front so a
/// corrupt frame errors instead of panicking.
fn validate_next<P>(store: &ClcStore<P>, meta: &ClcMeta) -> Result<(), String> {
    if let Some(last) = store.latest() {
        if meta.sn <= last.meta.sn {
            return Err("non-monotone chain SN".into());
        }
        if meta.ddv.len() != last.meta.ddv.len() || !last.meta.ddv.dominated_by(&meta.ddv) {
            return Err("non-monotone chain DDV".into());
        }
    }
    Ok(())
}

/// One segment's scan outcome: the valid byte length, plus the torn span
/// if the tail was discarded.
fn scan_segment<C: EntryCodec>(
    index: u64,
    path: &Path,
    is_final: bool,
    replayer: &mut Replayer<'_, C>,
    frames: &mut u64,
) -> Result<(u64, Option<TornTail>), DurableError> {
    let bytes = fs::read(path)?;
    let corrupt = |offset: u64, what: &str| DurableError::Corrupt {
        segment: index,
        offset,
        what: what.to_string(),
    };
    let torn = |offset: usize| TornTail {
        segment: index,
        offset: offset as u64,
        discarded: (bytes.len() - offset) as u64,
    };
    if bytes.len() < SEG_MAGIC.len() || &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
        // A final segment whose very header is incomplete is a crash
        // during segment creation: discard the file. Elsewhere it is
        // damage.
        return if is_final {
            Ok((
                0,
                Some(TornTail {
                    segment: index,
                    offset: 0,
                    discarded: bytes.len() as u64,
                }),
            ))
        } else {
            Err(corrupt(0, "bad segment header"))
        };
    }
    let mut pos = SEG_MAGIC.len();
    while pos < bytes.len() {
        // Frame header: [len u32][crc u32].
        if pos + 8 > bytes.len() {
            if is_final {
                return Ok((pos as u64, Some(torn(pos))));
            }
            return Err(corrupt(pos as u64, "truncated frame header"));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + 8;
        let body_end = body_start.saturating_add(len as usize);
        if len > MAX_FRAME || body_end > bytes.len() {
            if is_final {
                return Ok((pos as u64, Some(torn(pos))));
            }
            return Err(corrupt(pos as u64, "frame length overruns segment"));
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            if is_final {
                return Ok((pos as u64, Some(torn(pos))));
            }
            return Err(corrupt(pos as u64, "frame checksum mismatch"));
        }
        replayer
            .apply(payload)
            .map_err(|what| corrupt(pos as u64, &what))?;
        *frames += 1;
        pos = body_end;
    }
    Ok((pos as u64, None))
}

/// Rebuild every node's chain from the segment log in `dir` without
/// modifying it (the torn tail, if any, is skipped but left on disk).
pub fn recover<C: EntryCodec>(dir: &Path, codec: &C) -> Result<Recovered<C>, DurableError> {
    let segs = list_segments(dir)?;
    let mut replayer = Replayer {
        codec,
        stores: BTreeMap::new(),
    };
    let mut frames = 0u64;
    let mut torn = None;
    let last = segs.len().saturating_sub(1);
    for (i, (index, path)) in segs.iter().enumerate() {
        let (_, t) = scan_segment(*index, path, i == last, &mut replayer, &mut frames)?;
        torn = t;
    }
    Ok(Recovered {
        stores: replayer.stores,
        torn,
        segments: segs.len() as u64,
        frames,
    })
}

// ---- the store ------------------------------------------------------------

/// Append-only, checksummed, compacting on-disk image of a federation's
/// CLC stores (one chain per node, keyed by global node index).
///
/// See the module docs for the durability contract and torn-tail policy.
pub struct DurableStore<C: EntryCodec> {
    dir: PathBuf,
    codec: C,
    opts: DurableOptions,
    /// Index of the active (tail) segment.
    seg_index: u64,
    writer: File,
    /// Frame bytes appended since the last compaction (or open).
    appended: u64,
    /// In-memory replica of what the log replays to — the write path's
    /// source of `prev` payloads for delta encoding, and what compaction
    /// flattens. Payload clones share structure with the engines' stores
    /// (`Arc`-backed stamps and records), so this mirrors pointers, not
    /// deep state.
    mirror: BTreeMap<u64, ClcStore<C::Payload>>,
    /// What recovery discarded when this store was opened over an
    /// interrupted log.
    torn: Option<TornTail>,
    /// Commit frames appended by this handle (crash-injection hooks and
    /// tests key off it).
    commits: u64,
    /// Reused frame-assembly buffer.
    buf: Vec<u8>,
}

impl<C: EntryCodec> DurableStore<C> {
    /// Open (or create) the segment log in `dir`, replaying any existing
    /// segments: the write-path recovery. A torn tail in the final
    /// segment is truncated off the file before appending resumes.
    pub fn open(dir: &Path, codec: C, opts: DurableOptions) -> Result<Self, DurableError> {
        fs::create_dir_all(dir)?;
        let recovered = recover(dir, &codec)?;
        let segs = list_segments(dir)?;
        let (seg_index, writer) = match segs.last() {
            None => {
                let f = create_segment(dir, 0)?;
                f.sync_all()?;
                sync_dir(dir);
                (0, f)
            }
            Some((index, path)) => {
                let mut f = OpenOptions::new().read(true).append(true).open(path)?;
                if let Some(t) = recovered.torn {
                    if t.offset < SEG_MAGIC.len() as u64 {
                        // The header itself was torn: rewrite the file.
                        f.set_len(0)?;
                        f.write_all(SEG_MAGIC)?;
                    } else {
                        // Resume right after the last valid frame.
                        f.set_len(t.offset)?;
                    }
                    f.sync_all()?;
                }
                (*index, f)
            }
        };
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            codec,
            opts,
            seg_index,
            writer,
            appended: 0,
            mirror: recovered.stores,
            torn: recovered.torn,
            commits: 0,
            buf: Vec::new(),
        })
    }

    /// True when the log replayed to nothing (a fresh directory).
    pub fn is_fresh(&self) -> bool {
        self.mirror.is_empty()
    }

    /// The tail span recovery discarded when this handle was opened.
    pub fn torn_tail(&self) -> Option<TornTail> {
        self.torn
    }

    /// Commit frames appended through this handle.
    pub fn commit_frames(&self) -> u64 {
        self.commits
    }

    /// One node's current chain, as the log replays to it.
    pub fn store(&self, node: u64) -> Option<&ClcStore<C::Payload>> {
        self.mirror.get(&node)
    }

    /// Every chain, keyed by global node index.
    pub fn stores(&self) -> &BTreeMap<u64, ClcStore<C::Payload>> {
        &self.mirror
    }

    /// Append one committed CLC to `node`'s chain. With
    /// [`SyncPolicy::EveryCommit`] the entry is durable when this
    /// returns.
    pub fn append_commit(
        &mut self,
        node: u64,
        meta: &ClcMeta,
        payload: &C::Payload,
    ) -> Result<(), DurableError> {
        let mut frame = std::mem::take(&mut self.buf);
        frame.clear();
        frame.push(OP_COMMIT);
        put_u64(&mut frame, node);
        put_meta(&mut frame, meta);
        let store = self.mirror.entry(node).or_default();
        let body = {
            let prev = store.latest().map(|e| &e.payload);
            self.codec.encode_payload(payload, prev)
        };
        frame.extend_from_slice(&body);
        store.commit(meta.clone(), payload.clone());
        self.write_frame(&frame)?;
        self.buf = frame;
        self.commits += 1;
        if self.opts.sync == SyncPolicy::EveryCommit {
            self.writer.sync_all()?;
        }
        self.maybe_compact()
    }

    /// Record a rollback: `node`'s chain drops every entry newer than
    /// `sn`.
    pub fn append_truncate(&mut self, node: u64, sn: SeqNum) -> Result<(), DurableError> {
        let mut frame = std::mem::take(&mut self.buf);
        frame.clear();
        frame.push(OP_TRUNCATE);
        put_u64(&mut frame, node);
        put_u64(&mut frame, sn.0);
        self.mirror.entry(node).or_default().truncate_after(sn);
        self.write_frame(&frame)?;
        self.buf = frame;
        self.maybe_compact()
    }

    /// Record a GC prune: `node`'s chain drops entries below `min_sn`
    /// (always keeping the newest).
    pub fn append_prune(&mut self, node: u64, min_sn: SeqNum) -> Result<(), DurableError> {
        let mut frame = std::mem::take(&mut self.buf);
        frame.clear();
        frame.push(OP_PRUNE);
        put_u64(&mut frame, node);
        put_u64(&mut frame, min_sn.0);
        self.mirror.entry(node).or_default().prune_below(min_sn);
        self.write_frame(&frame)?;
        self.buf = frame;
        self.maybe_compact()
    }

    /// Seed `node`'s chain with a whole store (the genesis CLC of a fresh
    /// federation, written as a snapshot frame).
    pub fn snapshot_node(
        &mut self,
        node: u64,
        store: &ClcStore<C::Payload>,
    ) -> Result<(), DurableError> {
        let frame = encode_snapshot(&self.codec, node, store);
        self.mirror.insert(node, store.clone());
        self.write_frame(&frame)?;
        self.maybe_compact()
    }

    /// Flush everything appended so far to the platter.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.writer.sync_all()?;
        Ok(())
    }

    /// Rewrite every node's flattened chain as snapshot frames into a
    /// fresh segment, then delete the older segments. Crash-safe at every
    /// step (see the module docs).
    pub fn compact(&mut self) -> Result<(), DurableError> {
        let old = list_segments(&self.dir)?;
        let new_index = self.seg_index + 1;
        let mut f = create_segment(&self.dir, new_index)?;
        for (&node, store) in &self.mirror {
            let frame = encode_snapshot(&self.codec, node, store);
            write_frame_to(&mut f, &frame)?;
        }
        // The snapshot segment must be durable before anything older
        // disappears.
        f.sync_all()?;
        sync_dir(&self.dir);
        self.writer = f;
        self.seg_index = new_index;
        self.appended = 0;
        // Newest-first: a crash mid-deletion leaves a contiguous *prefix*
        // of old segments (replayable on its own) plus the complete
        // snapshot segment that replaces whatever it said.
        for (_, path) in old.iter().rev() {
            fs::remove_file(path)?;
        }
        sync_dir(&self.dir);
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<(), DurableError> {
        if let Some(limit) = self.opts.compact_bytes {
            if self.appended >= limit {
                self.compact()?;
            }
        }
        Ok(())
    }

    fn write_frame(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        write_frame_to(&mut self.writer, payload)?;
        self.appended += 8 + payload.len() as u64;
        Ok(())
    }
}

fn create_segment(dir: &Path, index: u64) -> Result<File, DurableError> {
    let mut f = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(segment_path(dir, index))?;
    f.write_all(SEG_MAGIC)?;
    Ok(f)
}

fn write_frame_to(f: &mut File, payload: &[u8]) -> Result<(), DurableError> {
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    f.write_all(&head)?;
    f.write_all(payload)?;
    Ok(())
}

fn encode_snapshot<C: EntryCodec>(codec: &C, node: u64, store: &ClcStore<C::Payload>) -> Vec<u8> {
    let mut frame = Vec::new();
    frame.push(OP_SNAPSHOT);
    put_u64(&mut frame, node);
    put_u64(&mut frame, store.len() as u64);
    let mut prev: Option<&C::Payload> = None;
    for entry in store.iter() {
        put_meta(&mut frame, &entry.meta);
        let body = codec.encode_payload(&entry.payload, prev);
        put_u64(&mut frame, body.len() as u64);
        frame.extend_from_slice(&body);
        prev = Some(&entry.payload);
    }
    frame
}

/// `fsync` the directory itself so entry creations/deletions are durable
/// (best-effort on platforms where directories cannot be opened).
fn sync_dir(dir: &Path) {
    if let Ok(f) = File::open(dir) {
        let _ = f.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially-delta'd payload: a list of u64s, encoded either in
    /// full or as a suffix delta against the previous entry.
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    struct Nums(Vec<u64>);

    struct NumsCodec;

    impl EntryCodec for NumsCodec {
        type Payload = Nums;

        fn encode_payload(&self, payload: &Nums, prev: Option<&Nums>) -> Vec<u8> {
            let mut buf = Vec::new();
            match prev {
                Some(p) if payload.0.starts_with(&p.0) => {
                    buf.push(1);
                    put_u64(&mut buf, (payload.0.len() - p.0.len()) as u64);
                    for &v in &payload.0[p.0.len()..] {
                        put_u64(&mut buf, v);
                    }
                }
                _ => {
                    buf.push(0);
                    put_u64(&mut buf, payload.0.len() as u64);
                    for &v in &payload.0 {
                        put_u64(&mut buf, v);
                    }
                }
            }
            buf
        }

        fn decode_payload(&self, buf: &[u8], prev: Option<&Nums>) -> Result<Nums, String> {
            let mut pos = 0usize;
            let tag = *buf.first().ok_or("empty payload")?;
            pos += 1;
            let n = get_u64(buf, &mut pos)?;
            if n > 1 << 20 {
                return Err("oversized payload".into());
            }
            let mut vals = match tag {
                0 => Vec::with_capacity(n as usize),
                1 => prev.ok_or("delta without prev")?.0.clone(),
                t => return Err(format!("bad payload tag {t}")),
            };
            for _ in 0..n {
                vals.push(get_u64(buf, &mut pos)?);
            }
            if pos != buf.len() {
                return Err("trailing payload bytes".into());
            }
            Ok(Nums(vals))
        }
    }

    fn meta(sn: u64, ddv: &[u64], forced: bool) -> ClcMeta {
        ClcMeta {
            sn: SeqNum(sn),
            ddv: Arc::new(Ddv::from_entries(ddv.iter().copied().map(SeqNum).collect())),
            committed_at: SimTime(sn * 1000),
            forced,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hc3i-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn opts_manual() -> DurableOptions {
        DurableOptions {
            sync: SyncPolicy::Manual,
            compact_bytes: None,
        }
    }

    fn populate(store: &mut DurableStore<NumsCodec>) {
        // Two nodes, growing chains sharing prefixes (delta-encodable).
        for node in 0..2u64 {
            for k in 1..=4u64 {
                let payload = Nums((0..k * 2 + node).collect());
                store
                    .append_commit(node, &meta(k, &[k, k / 2], k % 2 == 0), &payload)
                    .unwrap();
            }
        }
        store.append_truncate(1, SeqNum(3)).unwrap();
        store.append_prune(0, SeqNum(2)).unwrap();
    }

    fn expected_state() -> BTreeMap<u64, Vec<(u64, usize)>> {
        // node -> [(sn, payload len)]
        let mut m = BTreeMap::new();
        m.insert(0, vec![(2, 4), (3, 6), (4, 8)]);
        m.insert(1, vec![(1, 3), (2, 5), (3, 7)]);
        m
    }

    fn assert_state(stores: &BTreeMap<u64, ClcStore<Nums>>) {
        let expected = expected_state();
        assert_eq!(stores.len(), expected.len());
        for (node, chain) in &expected {
            let s = &stores[node];
            let got: Vec<(u64, usize)> =
                s.iter().map(|e| (e.meta.sn.0, e.payload.0.len())).collect();
            assert_eq!(&got, chain, "node {node}");
        }
    }

    #[test]
    fn round_trip_through_recovery() {
        let dir = tmpdir("roundtrip");
        let mut store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        assert!(store.is_fresh());
        populate(&mut store);
        assert_state(store.stores());
        drop(store);
        let rec = recover(&dir, &NumsCodec).unwrap();
        assert!(rec.torn.is_none());
        assert_eq!(rec.segments, 1);
        assert_state(&rec.stores);
        // Reopen (write-path recovery) sees the same state.
        let store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        assert!(!store.is_fresh());
        assert_state(store.stores());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_drops_segments() {
        let dir = tmpdir("compact");
        let mut store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        populate(&mut store);
        store.compact().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1, "old segments deleted");
        assert_eq!(segs[0].0, 1, "snapshot segment has the next index");
        assert_state(store.stores());
        // Appends continue after compaction and everything replays.
        store
            .append_commit(0, &meta(9, &[9, 9], false), &Nums(vec![1, 2, 3]))
            .unwrap();
        drop(store);
        let rec = recover(&dir, &NumsCodec).unwrap();
        assert_eq!(rec.stores[&0].latest().unwrap().meta.sn, SeqNum(9));
        assert_eq!(rec.stores[&1].len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_triggers_on_threshold() {
        let dir = tmpdir("autocompact");
        let opts = DurableOptions {
            sync: SyncPolicy::Manual,
            compact_bytes: Some(256),
        };
        let mut store = DurableStore::open(&dir, NumsCodec, opts).unwrap();
        for k in 1..=32u64 {
            store
                .append_commit(0, &meta(k, &[k], false), &Nums((0..k).collect()))
                .unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1, "auto-compaction keeps one live segment");
        assert!(segs[0].0 >= 1, "compaction bumped the segment index");
        let rec = recover(&dir, &NumsCodec).unwrap();
        assert_eq!(rec.stores[&0].len(), 32);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_reopen_appends() {
        let dir = tmpdir("torn");
        let mut store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        populate(&mut store);
        drop(store);
        let (idx, path) = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&path).unwrap();
        // Tear off the last 3 bytes: the final frame is now torn.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let rec = recover(&dir, &NumsCodec).unwrap();
        let t = rec.torn.expect("tear detected");
        assert_eq!(t.segment, idx);
        // The discarded frame was the prune: node 0 still has 4 entries.
        assert_eq!(rec.stores[&0].len(), 4);
        assert_eq!(rec.stores[&1].len(), 3, "truncate survived");
        // The write path truncates the tear and appends cleanly after it.
        let mut store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        assert_eq!(store.torn_tail(), Some(t));
        store.append_prune(0, SeqNum(2)).unwrap();
        drop(store);
        let rec = recover(&dir, &NumsCodec).unwrap();
        assert!(rec.torn.is_none());
        assert_state(&rec.stores);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_point_recovers_or_errors() {
        let dir = tmpdir("cuts");
        let mut store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        populate(&mut store);
        drop(store);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            // Must never panic; a shorter log is always *recoverable*
            // (every prefix of valid frames is a state we passed through).
            let rec = recover(&dir, &NumsCodec).unwrap();
            if cut == full.len() - 1 {
                assert!(rec.torn.is_some());
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_recover_or_error_never_panic() {
        let dir = tmpdir("flips");
        let mut store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        populate(&mut store);
        drop(store);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&path).unwrap();
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x41;
            fs::write(&path, &bad).unwrap();
            // Either a clean error or a (possibly shortened) recovery.
            let _ = recover(&dir, &NumsCodec);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_in_non_final_segment_is_corrupt() {
        let dir = tmpdir("midseg");
        let mut store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        populate(&mut store);
        store.compact().unwrap();
        store
            .append_commit(0, &meta(9, &[9, 9], false), &Nums(vec![7]))
            .unwrap();
        drop(store);
        // Fabricate a follow-up segment so the snapshot segment is no
        // longer final, then damage the snapshot segment.
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        let (idx, snap_path) = segs[0].clone();
        let bytes = fs::read(&snap_path).unwrap();
        fs::copy(&snap_path, segment_path(&dir, idx + 1)).unwrap();
        fs::write(&snap_path, &bytes[..bytes.len() - 2]).unwrap();
        match recover(&dir, &NumsCodec) {
            Err(DurableError::Corrupt { segment, .. }) => assert_eq!(segment, idx),
            other => panic!("expected Corrupt, got {:?}", other.map(|r| r.frames)),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_node_seeds_genesis() {
        let dir = tmpdir("genesis");
        let mut chain = ClcStore::new();
        chain.commit(meta(1, &[1, 0], false), Nums(vec![1]));
        let mut store = DurableStore::open(&dir, NumsCodec, opts_manual()).unwrap();
        store.snapshot_node(5, &chain).unwrap();
        store
            .append_commit(5, &meta(2, &[2, 0], false), &Nums(vec![1, 2]))
            .unwrap();
        drop(store);
        let rec = recover(&dir, &NumsCodec).unwrap();
        assert_eq!(rec.stores[&5].len(), 2);
        assert_eq!(rec.total_entries(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
