//! In-cluster stable storage by neighbour replication.
//!
//! The paper (§3.1): "each node record its part of the CLCs, and in the
//! memory of an other node in the cluster. Because of this stable storage
//! implementation, only one simultaneous fault in a cluster is tolerated."
//! The future-work section asks for a configurable replication degree — we
//! implement that generalization: node `i`'s fragment is replicated on the
//! `degree` following nodes (mod cluster size), tolerating `degree`
//! simultaneous faults.

/// Placement policy for checkpoint fragments inside one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPolicy {
    degree: u32,
}

impl ReplicationPolicy {
    /// The paper's policy: one replica on the next node (degree 1).
    pub fn paper_default() -> Self {
        ReplicationPolicy { degree: 1 }
    }

    /// A policy with `degree` replicas per fragment.
    ///
    /// # Panics
    /// If `degree == 0` (a fragment existing only on its owner cannot
    /// survive that owner's failure).
    pub fn with_degree(degree: u32) -> Self {
        assert!(degree > 0, "replication degree must be at least 1");
        ReplicationPolicy { degree }
    }

    /// Number of replicas per fragment (excluding the owner's copy).
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Total copies of each fragment (owner + replicas).
    pub fn copies(&self) -> u32 {
        self.degree + 1
    }

    /// Ranks holding a replica of `rank`'s fragment in a cluster of
    /// `n` nodes (owner excluded). Fewer than `degree` if the cluster is
    /// small.
    pub fn replica_holders(&self, rank: u32, n: u32) -> Vec<u32> {
        assert!(rank < n, "rank out of range");
        let k = self.degree.min(n.saturating_sub(1));
        (1..=k).map(|d| (rank + d) % n).collect()
    }

    /// Can the cluster reconstruct every fragment if `failed` ranks fail
    /// simultaneously? (Every fragment needs a surviving copy.)
    pub fn recoverable(&self, failed: &[u32], n: u32) -> bool {
        let is_failed = |r: u32| failed.contains(&r);
        if failed.iter().any(|&r| r >= n) {
            return false;
        }
        for &f in failed {
            // The owner's copy is gone; some replica holder must survive.
            let holders = self.replica_holders(f, n);
            if holders.is_empty() || holders.iter().all(|&h| is_failed(h)) {
                return false;
            }
        }
        true
    }

    /// Maximum number of simultaneous faults guaranteed recoverable for a
    /// cluster of `n` nodes (i.e. every failure pattern of this size is
    /// survivable). With replicas on consecutive neighbours this is the
    /// degree, as long as the cluster is strictly larger than the degree.
    pub fn guaranteed_faults(&self, n: u32) -> u32 {
        if n <= 1 {
            0
        } else {
            self.degree.min(n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_degree_one() {
        let p = ReplicationPolicy::paper_default();
        assert_eq!(p.degree(), 1);
        assert_eq!(p.copies(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn degree_zero_rejected() {
        ReplicationPolicy::with_degree(0);
    }

    #[test]
    fn holders_wrap_around() {
        let p = ReplicationPolicy::with_degree(2);
        assert_eq!(p.replica_holders(8, 10), vec![9, 0]);
        assert_eq!(p.replica_holders(0, 10), vec![1, 2]);
    }

    #[test]
    fn holders_clamped_in_tiny_cluster() {
        let p = ReplicationPolicy::with_degree(3);
        assert_eq!(p.replica_holders(0, 2), vec![1]);
        assert_eq!(p.replica_holders(0, 1), Vec::<u32>::new());
    }

    #[test]
    fn single_fault_recoverable_at_degree_one() {
        let p = ReplicationPolicy::paper_default();
        for f in 0..10 {
            assert!(p.recoverable(&[f], 10));
        }
    }

    #[test]
    fn adjacent_double_fault_not_recoverable_at_degree_one() {
        let p = ReplicationPolicy::paper_default();
        // Node 3's only replica lives on node 4; both down -> unrecoverable.
        assert!(!p.recoverable(&[3, 4], 10));
        // Non-adjacent double faults happen to survive...
        assert!(p.recoverable(&[3, 7], 10));
        // ...but are not *guaranteed*:
        assert_eq!(p.guaranteed_faults(10), 1);
    }

    #[test]
    fn degree_two_survives_adjacent_pairs() {
        let p = ReplicationPolicy::with_degree(2);
        assert!(p.recoverable(&[3, 4], 10));
        assert!(
            !p.recoverable(&[3, 4, 5], 10),
            "three consecutive exceed degree 2"
        );
        assert_eq!(p.guaranteed_faults(10), 2);
    }

    #[test]
    fn out_of_range_failure_is_unrecoverable() {
        let p = ReplicationPolicy::paper_default();
        assert!(!p.recoverable(&[10], 10));
    }

    #[test]
    fn degenerate_cluster_sizes() {
        let p = ReplicationPolicy::paper_default();
        assert_eq!(p.guaranteed_faults(1), 0);
        assert!(
            !p.recoverable(&[0], 1),
            "lone node has nowhere to replicate"
        );
    }
}
