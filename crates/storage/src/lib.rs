//! # storage — checkpoint storage substrate
//!
//! The pieces of durable (within the failure model) state the HC3I protocol
//! manipulates:
//!
//! * [`SeqNum`] / [`Ddv`] — per-cluster sequence numbers and Direct
//!   Dependency Vectors (paper §3.1–3.2);
//! * [`ClcStore`] — the ordered store of committed cluster-level
//!   checkpoints, with the rollback-target and GC-pruning queries;
//! * [`MessageLog`] — the sender-side optimistic log of inter-cluster
//!   messages with receiver-SN acknowledgements (paper §3.3);
//! * [`ReplicationPolicy`] — in-cluster neighbour replication implementing
//!   the paper's stable-storage assumption, generalized to a configurable
//!   degree (paper §7 future work).
//!
//! ## Copy-on-write stamps
//!
//! [`ClcMeta`] holds its DDV as an `Arc<Ddv>`: every node of a cluster
//! stores the *same* immutable stamp the coordinator broadcast at commit,
//! and [`ClcStore::ddv_list`] — what the centralized garbage collector
//! collects from each cluster every round — clones pointers, not vectors.
//! The recovery-line and GC safe-minimum analyses in `hc3i-core` operate
//! on these shared stamps directly, so a federation-wide GC round borrows
//! the stored `(SN, DDV)` pairs structurally instead of deep-copying one
//! vector per stored checkpoint. Sharing is invisible to consumers:
//! stamps are immutable, compare by value, and serialize by value.

//!
//! ## Durable backend
//!
//! [`DurableStore`] puts these stores on disk: an append-only segment log
//! of length-prefixed, CRC-checksummed frames with snapshot compaction
//! and crash-consistent recovery (see [`durable`] for the durability
//! contract and torn-tail policy). The entry payload encoding is plugged
//! in from above via [`EntryCodec`], so `hc3i-core` can reuse its
//! byte-stable v2 checkpoint format without inverting the crate
//! dependency order.

#![warn(missing_docs)]

pub mod clc_store;
pub mod durable;
pub mod log_store;
pub mod replication;
pub mod stamp;

pub use clc_store::{ClcEntry, ClcMeta, ClcStore};
pub use durable::{
    recover, DurableError, DurableOptions, DurableStore, EntryCodec, Recovered, SyncPolicy,
    TornTail,
};
pub use log_store::{LogEntry, LogId, MessageLog};
pub use replication::ReplicationPolicy;
pub use stamp::{Ddv, SeqNum};
