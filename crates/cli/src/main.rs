//! `hc3i-sim` — run HC3I federation simulations from config files.
//!
//! Mirrors the paper's simulator interface (§5.1): a topology file, an
//! application file and a timers file.
//!
//! ```text
//! hc3i-sim run --topology topo.conf --application app.conf --timers timers.conf
//!          [--seed N] [--fault MINUTES:CLUSTER:RANK]... [--full-ddv]
//!          [--contention none|fifo] [--replication N]
//!          [--trace protocol|full] [--trace-file PATH]
//! hc3i-sim sample-configs <dir>
//! ```

use desim::{RngStreams, SimDuration, SimTime, TraceLevel};
use hc3i_core::{PiggybackMode, ProtocolConfig, ReplicationPolicy};
use netsim::{ContentionModel, NodeId};
use simdriver::SimConfig;
use std::io::Write as _;
use std::process::ExitCode;
use workload::Workload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sample-configs") => cmd_sample(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  hc3i-sim run --topology FILE --application FILE --timers FILE
           [--seed N] [--fault MIN:CLUSTER:RANK]... [--full-ddv]
           [--contention none|fifo] [--replication N]
           [--trace protocol|full] [--trace-file PATH]
  hc3i-sim sample-configs DIR

flags:
  --full-ddv         piggyback the whole DDV (paper §7) instead of the SN
  --contention       inter-cluster link model: none (default) or fifo
                     (transfers on a directed cluster pair serialize)
  --replication N    checkpoint-fragment replication degree (default 1)
  --trace LEVEL      record protocol or full trace (default off)
  --trace-file PATH  write the trace to PATH instead of stdout (implies
                     --trace protocol unless a level is given)
";

fn cmd_run(args: &[String]) -> ExitCode {
    let mut topology = None;
    let mut application = None;
    let mut timers = None;
    let mut seed = 42u64;
    let mut faults: Vec<(u64, u16, u32)> = vec![];
    let mut full_ddv = false;
    let mut trace = TraceLevel::Off;
    let mut trace_file: Option<String> = None;
    let mut contention = ContentionModel::Unlimited;
    let mut replication: Option<u32> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--topology" => topology = it.next().cloned(),
            "--application" => application = it.next().cloned(),
            "--timers" => timers = it.next().cloned(),
            "--seed" => {
                seed = match it.next().and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => return usage_error("--seed needs an integer"),
                }
            }
            "--full-ddv" => full_ddv = true,
            "--contention" => {
                contention = match it.next().map(String::as_str) {
                    Some("none") => ContentionModel::Unlimited,
                    Some("fifo") => ContentionModel::InterClusterFifo,
                    _ => return usage_error("--contention wants none|fifo"),
                }
            }
            "--replication" => {
                replication = match it.next().and_then(|s| s.parse().ok()) {
                    Some(0) => return usage_error("--replication needs a degree >= 1"),
                    Some(d) => Some(d),
                    None => return usage_error("--replication needs an integer"),
                }
            }
            "--trace" => {
                trace = match it.next().map(String::as_str) {
                    Some("protocol") => TraceLevel::Protocol,
                    Some("full") => TraceLevel::Full,
                    Some("off") => TraceLevel::Off,
                    _ => return usage_error("--trace wants protocol|full|off"),
                }
            }
            "--trace-file" => {
                trace_file = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => return usage_error("--trace-file needs a path"),
                }
            }
            "--fault" => {
                let spec = it.next().cloned().unwrap_or_default();
                let parts: Vec<&str> = spec.split(':').collect();
                let parsed = (|| {
                    Some((
                        parts.first()?.parse().ok()?,
                        parts.get(1)?.parse().ok()?,
                        parts.get(2)?.parse().ok()?,
                    ))
                })();
                match parsed {
                    Some(f) => faults.push(f),
                    None => return usage_error("--fault wants MINUTES:CLUSTER:RANK"),
                }
            }
            other => return usage_error(&format!("unknown flag {other}")),
        }
    }

    let (Some(topology), Some(application), Some(timers)) = (topology, application, timers) else {
        return usage_error("need --topology, --application and --timers");
    };

    // A trace file without an explicit level would silently be empty;
    // default to the protocol level instead.
    if trace_file.is_some() && trace == TraceLevel::Off {
        trace = TraceLevel::Protocol;
    }

    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    };
    let result = (|| -> Result<(), String> {
        let topo =
            workload::parse_topology(&read(&topology)?).map_err(|e| format!("{topology}: {e}"))?;
        let app = workload::parse_application(&read(&application)?, &topo)
            .map_err(|e| format!("{application}: {e}"))?;
        let timer_spec = workload::parse_timers(&read(&timers)?, topo.num_clusters())
            .map_err(|e| format!("{timers}: {e}"))?;

        let sends = app.schedule(&RngStreams::new(seed));
        let mut protocol = ProtocolConfig::new(app.cluster_sizes.clone());
        if full_ddv {
            protocol = protocol.with_piggyback(PiggybackMode::FullDdv);
        }
        if let Some(degree) = replication {
            protocol = protocol.with_replication(ReplicationPolicy::with_degree(degree));
        }
        let mut cfg = SimConfig::new(topo, app.duration)
            .with_sends(sends)
            .with_seed(seed)
            .with_protocol(protocol);
        cfg.contention = contention;
        cfg.detection_delay = timer_spec.detection_delay;
        for (c, d) in timer_spec.clc_delays.iter().enumerate() {
            cfg.clc_delays[c] = *d;
        }
        if let Some(gc) = timer_spec.gc_interval {
            cfg = cfg.with_gc_interval(gc);
        }
        for (minutes, cluster, rank) in &faults {
            cfg = cfg.with_fault(
                SimTime::ZERO + SimDuration::from_minutes(*minutes),
                NodeId::new(*cluster, *rank),
            );
        }

        cfg = cfg.with_trace(trace);
        let (report, tracer) = simdriver::run_traced(cfg);
        if let Some(path) = &trace_file {
            let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let mut write_all = || -> std::io::Result<()> {
                for rec in tracer.records() {
                    writeln!(f, "[{}] {:<9} {}", rec.at, rec.subsystem, rec.detail)?;
                }
                Ok(())
            };
            write_all().map_err(|e| format!("{path}: {e}"))?;
            eprintln!("trace: {} records -> {path}", tracer.records().len());
        } else if trace != TraceLevel::Off {
            println!("== trace ({} records) ==", tracer.records().len());
            for rec in tracer.records() {
                println!("[{}] {:<9} {}", rec.at, rec.subsystem, rec.detail);
            }
            println!();
        }
        print_report(&report);
        Ok(())
    })();

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn print_report(report: &simdriver::RunReport) {
    println!("== HC3I simulation report ==");
    println!(
        "simulated time: {}  events: {}",
        report.ended_at, report.events_processed
    );
    println!();
    print!("{}", report.format_app_matrix());
    println!();
    for (c, s) in report.clusters.iter().enumerate() {
        println!(
            "cluster {c}: CLCs committed {} (unforced {}, forced {}), stored {} (peak {})",
            s.total_clcs(),
            s.unforced_clcs,
            s.forced_clcs,
            s.stored_clcs,
            s.peak_stored_clcs
        );
        for (k, &(before, after)) in s.gc_before_after.iter().enumerate() {
            println!("  gc #{:<2} stored CLCs {before} -> {after}", k + 1);
        }
        for (i, &(at, sn, discarded)) in s.rollbacks.iter().enumerate() {
            println!(
                "  rollback #{:<2} at {at} -> SN {sn} ({discarded} CLCs discarded, {} lost)",
                i + 1,
                s.work_lost[i]
            );
        }
    }
    println!();
    println!(
        "messages: app sent {} delivered {}, protocol {} ({} bytes), acks {}",
        report.app_sent,
        report.app_delivered,
        report.protocol_messages,
        report.protocol_bytes,
        report.ack_messages
    );
    if report.late_crossings > 0 || report.unrecoverable_faults > 0 {
        println!(
            "WARNINGS: late_crossings={} unrecoverable_faults={}",
            report.late_crossings, report.unrecoverable_faults
        );
    }
}

fn cmd_sample(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage_error("sample-configs needs a directory");
    };
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let files = [
        (
            "topology.conf",
            "# The paper's reference federation (section 5.2)\n\
             clusters 2\n\
             nodes 100 100\n\
             intra 0 10us 80Mbps\n\
             intra 1 10us 80Mbps\n\
             inter 0 1 150us 100Mbps\n\
             mtbf inf\n",
        ),
        (
            "application.conf",
            "# Simulation on cluster 0 feeding a trace processor on cluster 1\n\
             duration 10h\n\
             payload 1024\n\
             compute_mean 0 120s\n\
             compute_mean 1 140s\n\
             pattern 0 0.95 0.05\n\
             pattern 1 0.005 0.995\n",
        ),
        (
            "timers.conf",
            "# Checkpoint every 30 minutes in cluster 0; never in cluster 1;\n\
             # collect garbage every 2 hours.\n\
             clc_timer 0 30m\n\
             clc_timer 1 inf\n\
             gc_timer 2h\n\
             detection_delay 100ms\n",
        ),
    ];
    for (name, content) in files {
        if let Err(e) = std::fs::write(dir.join(name), content) {
            eprintln!("error writing {name}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {}", dir.join(name).display());
    }
    ExitCode::SUCCESS
}
