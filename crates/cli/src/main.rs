//! `hc3i-sim` — run HC3I federation simulations from config files.
//!
//! Mirrors the paper's simulator interface (§5.1): a topology file, an
//! application file and a timers file.
//!
//! ```text
//! hc3i-sim run --topology topo.conf --application app.conf --timers timers.conf
//!          [--seed N] [--fault MINUTES:CLUSTER:RANK]... [--full-ddv]
//!          [--contention none|fifo] [--replication N]
//!          [--trace protocol|full] [--trace-file PATH]
//!          [--runtime [--shards N]]
//! hc3i-sim sample-configs <dir>
//! ```
//!
//! `--runtime` drives the same workload through the live sharded
//! message-passing substrate (`runtime::Federation`) instead of the
//! discrete-event simulator, and prints the identical report format via
//! [`runtime::Federation::report`].

use desim::{RngStreams, SimDuration, SimTime, TraceLevel};
use hc3i_core::{PiggybackMode, ProtocolConfig, ReplicationPolicy};
use netsim::{ContentionModel, NodeId};
use simdriver::SimConfig;
use std::io::Write as _;
use std::process::ExitCode;
use workload::Workload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("sample-configs") => cmd_sample(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  hc3i-sim run --topology FILE --application FILE --timers FILE
           [--seed N] [--fault MIN:CLUSTER:RANK]... [--full-ddv]
           [--contention none|fifo] [--replication N]
           [--trace protocol|full] [--trace-file PATH]
           [--durable-dir DIR [--durable-crash-after N]]
           [--sim-shards N] [--runtime [--shards N]]
  hc3i-sim campaign [--json PATH] [--seeds N,N,...] [--sim-shards N]
  hc3i-sim recover --durable-dir DIR [--verify-prefix-of DIR]
  hc3i-sim sample-configs DIR

flags:
  --full-ddv         piggyback the whole DDV (paper §7) instead of the SN
  --contention       inter-cluster link model: none (default) or fifo
                     (transfers on a directed cluster pair serialize)
  --replication N    checkpoint-fragment replication degree (default 1)
  --trace LEVEL      record protocol or full trace (default off)
  --trace-file PATH  write the trace to PATH instead of stdout (implies
                     --trace protocol unless a level is given)
  --runtime          drive the live sharded substrate instead of the
                     simulator and report via Federation::report (faults,
                     contention and tracing are simulator-only; clusters
                     with a finite clc_timer take one explicit CLC after
                     the workload drains, and gc_timer maps to one final
                     collection)
  --sim-shards N     run the simulator's conservative parallel executive
                     on N shards (default 1). Reports are byte-identical
                     at any shard count; durable runs fall back to the
                     sequential executive
  --shards N         worker-pool size for --runtime (default: all cores)
  --durable-dir DIR  mirror every node's CLC store to an on-disk segment
                     log under DIR (must not already hold one); a
                     hard-killed run recovers via `hc3i-sim recover`
  --durable-crash-after N
                     abort the process (simulated power loss) once N
                     commit frames are durable (simulator-only; for
                     crash-consistency testing)

campaign flags:
  --json PATH        write the deterministic JSON summary to PATH
  --seeds N,N,...    override the default seed set (20040426,7,424242)
  --sim-shards N     run every cell on N simulator shards (the summary is
                     byte-identical at any shard count)

recover flags:
  --durable-dir DIR  the segment-log directory to scan (read-only)
  --verify-prefix-of DIR
                     also recover DIR and require every node chain of the
                     first image to be a prefix of its chain there (the
                     crash-consistency check for fault-free runs: a
                     killed run's durable state vs its uninterrupted twin)
";

fn cmd_run(args: &[String]) -> ExitCode {
    let mut topology = None;
    let mut application = None;
    let mut timers = None;
    let mut seed = 42u64;
    let mut faults: Vec<(u64, u16, u32)> = vec![];
    let mut full_ddv = false;
    let mut trace = TraceLevel::Off;
    let mut trace_file: Option<String> = None;
    let mut contention = ContentionModel::Unlimited;
    let mut replication: Option<u32> = None;
    let mut live_runtime = false;
    let mut shards: Option<usize> = None;
    let mut sim_shards: Option<usize> = None;
    let mut durable_dir: Option<String> = None;
    let mut durable_crash_after: Option<u64> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runtime" => live_runtime = true,
            "--durable-dir" => {
                durable_dir = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => return usage_error("--durable-dir needs a directory"),
                }
            }
            "--durable-crash-after" => {
                durable_crash_after = match it.next().and_then(|s| s.parse().ok()) {
                    Some(0) => return usage_error("--durable-crash-after needs a count >= 1"),
                    Some(n) => Some(n),
                    None => return usage_error("--durable-crash-after needs an integer"),
                }
            }
            "--shards" => {
                shards = match it.next().and_then(|s| s.parse().ok()) {
                    Some(0) => return usage_error("--shards needs a pool size >= 1"),
                    Some(s) => Some(s),
                    None => return usage_error("--shards needs an integer"),
                }
            }
            "--sim-shards" => {
                sim_shards = match it.next().and_then(|s| s.parse().ok()) {
                    Some(0) => return usage_error("--sim-shards needs a count >= 1"),
                    Some(s) => Some(s),
                    None => return usage_error("--sim-shards needs an integer"),
                }
            }
            "--topology" => topology = it.next().cloned(),
            "--application" => application = it.next().cloned(),
            "--timers" => timers = it.next().cloned(),
            "--seed" => {
                seed = match it.next().and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => return usage_error("--seed needs an integer"),
                }
            }
            "--full-ddv" => full_ddv = true,
            "--contention" => {
                contention = match it.next().map(String::as_str) {
                    Some("none") => ContentionModel::Unlimited,
                    Some("fifo") => ContentionModel::InterClusterFifo,
                    _ => return usage_error("--contention wants none|fifo"),
                }
            }
            "--replication" => {
                replication = match it.next().and_then(|s| s.parse().ok()) {
                    Some(0) => return usage_error("--replication needs a degree >= 1"),
                    Some(d) => Some(d),
                    None => return usage_error("--replication needs an integer"),
                }
            }
            "--trace" => {
                trace = match it.next().map(String::as_str) {
                    Some("protocol") => TraceLevel::Protocol,
                    Some("full") => TraceLevel::Full,
                    Some("off") => TraceLevel::Off,
                    _ => return usage_error("--trace wants protocol|full|off"),
                }
            }
            "--trace-file" => {
                trace_file = match it.next() {
                    Some(p) => Some(p.clone()),
                    None => return usage_error("--trace-file needs a path"),
                }
            }
            "--fault" => {
                let spec = it.next().cloned().unwrap_or_default();
                let parts: Vec<&str> = spec.split(':').collect();
                let parsed = (|| {
                    Some((
                        parts.first()?.parse().ok()?,
                        parts.get(1)?.parse().ok()?,
                        parts.get(2)?.parse().ok()?,
                    ))
                })();
                match parsed {
                    Some(f) => faults.push(f),
                    None => return usage_error("--fault wants MINUTES:CLUSTER:RANK"),
                }
            }
            other => return usage_error(&format!("unknown flag {other}")),
        }
    }

    let (Some(topology), Some(application), Some(timers)) = (topology, application, timers) else {
        return usage_error("need --topology, --application and --timers");
    };

    if live_runtime {
        if !faults.is_empty() {
            return usage_error("--fault is simulator-only (scheduled in simulated time)");
        }
        if trace != TraceLevel::Off || trace_file.is_some() {
            return usage_error("--trace is simulator-only");
        }
        if contention != ContentionModel::Unlimited {
            return usage_error("--contention is simulator-only");
        }
        if durable_crash_after.is_some() {
            return usage_error("--durable-crash-after is simulator-only");
        }
    }
    if shards.is_some() && !live_runtime {
        return usage_error("--shards requires --runtime");
    }
    if sim_shards.is_some() && live_runtime {
        return usage_error("--sim-shards is simulator-only (--runtime has --shards)");
    }
    if durable_crash_after.is_some() && durable_dir.is_none() {
        return usage_error("--durable-crash-after requires --durable-dir");
    }

    // A trace file without an explicit level would silently be empty;
    // default to the protocol level instead.
    if trace_file.is_some() && trace == TraceLevel::Off {
        trace = TraceLevel::Protocol;
    }

    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    };
    let result = (|| -> Result<(), String> {
        let topo =
            workload::parse_topology(&read(&topology)?).map_err(|e| format!("{topology}: {e}"))?;
        let app = workload::parse_application(&read(&application)?, &topo)
            .map_err(|e| format!("{application}: {e}"))?;
        let timer_spec = workload::parse_timers(&read(&timers)?, topo.num_clusters())
            .map_err(|e| format!("{timers}: {e}"))?;

        let sends = app.schedule(&RngStreams::new(seed));
        let mut protocol = ProtocolConfig::new(app.cluster_sizes.clone());
        if full_ddv {
            protocol = protocol.with_piggyback(PiggybackMode::FullDdv);
        }
        if let Some(degree) = replication {
            protocol = protocol.with_replication(ReplicationPolicy::with_degree(degree));
        }
        if live_runtime {
            let report = run_live(
                &app.cluster_sizes,
                protocol,
                &sends,
                &timer_spec,
                shards,
                durable_dir.as_deref(),
            )?;
            println!("== live substrate (sharded runtime) ==");
            print_report(&report);
            return Ok(());
        }
        let mut cfg = SimConfig::new(topo, app.duration)
            .with_sends(sends)
            .with_seed(seed)
            .with_protocol(protocol);
        if let Some(k) = sim_shards {
            cfg = cfg.with_sim_shards(k);
        }
        if let Some(dir) = &durable_dir {
            cfg = cfg.with_durable_dir(dir);
        }
        if let Some(n) = durable_crash_after {
            cfg = cfg.with_durable_crash_after(n);
        }
        cfg.contention = contention;
        cfg.detection_delay = timer_spec.detection_delay;
        for (c, d) in timer_spec.clc_delays.iter().enumerate() {
            cfg.clc_delays[c] = *d;
        }
        if let Some(gc) = timer_spec.gc_interval {
            cfg = cfg.with_gc_interval(gc);
        }
        for (minutes, cluster, rank) in &faults {
            cfg = cfg.with_fault(
                SimTime::ZERO + SimDuration::from_minutes(*minutes),
                NodeId::new(*cluster, *rank),
            );
        }

        cfg = cfg.with_trace(trace);
        let (report, tracer) = simdriver::run_traced(cfg);
        if let Some(path) = &trace_file {
            let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let mut write_all = || -> std::io::Result<()> {
                for rec in tracer.records() {
                    writeln!(f, "[{}] {:<9} {}", rec.at, rec.subsystem, rec.detail)?;
                }
                Ok(())
            };
            write_all().map_err(|e| format!("{path}: {e}"))?;
            eprintln!("trace: {} records -> {path}", tracer.records().len());
        } else if trace != TraceLevel::Off {
            println!("== trace ({} records) ==", tracer.records().len());
            for rec in tracer.records() {
                println!("[{}] {:<9} {}", rec.at, rec.subsystem, rec.detail);
            }
            println!();
        }
        print_report(&report);
        Ok(())
    })();

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Drive the parsed workload through the live sharded substrate and
/// produce the run report via [`runtime::Federation::report`] — the same
/// shape (and printer) the simulator path uses.
///
/// The schedule's sends are injected in timestamp order and every
/// delivery awaited (forced CLCs happen exactly as in simulation);
/// clusters whose timers file arms a finite `clc_timer` then take one
/// explicit unforced CLC, and a configured `gc_timer` maps to one final
/// garbage collection. Simulated-time timer replay is meaningless on a
/// wall-clock substrate, so the mapping is workload-equivalent, not
/// time-equivalent.
fn run_live(
    cluster_sizes: &[u32],
    protocol: ProtocolConfig,
    sends: &[workload::SendEvent],
    timer_spec: &workload::TimerSpec,
    shards: Option<usize>,
    durable_dir: Option<&str>,
) -> Result<runtime::RunReport, String> {
    use runtime::{Federation, RtEvent, RuntimeConfig};
    use std::time::Duration;

    const STEP_TIMEOUT: Duration = Duration::from_secs(120);

    let mut cfg = RuntimeConfig::manual(cluster_sizes.to_vec()).with_protocol(protocol);
    if let Some(s) = shards {
        cfg = cfg.with_shards(s);
    }
    if let Some(dir) = durable_dir {
        cfg = cfg.with_durable_dir(dir);
    }
    let fed = Federation::spawn(cfg);
    eprintln!(
        "runtime: {} nodes on {} shard worker(s); injecting {} sends",
        cluster_sizes.iter().map(|&n| n as usize).sum::<usize>(),
        fed.shards(),
        sends.len()
    );
    for (tag, s) in sends.iter().enumerate() {
        fed.send_app(
            s.from,
            s.to,
            hc3i_core::AppPayload {
                bytes: s.bytes,
                tag: tag as u64,
            },
        );
    }
    if !sends.is_empty() {
        let total = sends.len() as u64;
        let mut delivered = 0u64;
        fed.wait_for(STEP_TIMEOUT, |e| {
            if matches!(e, RtEvent::Delivered { .. }) {
                delivered += 1;
            }
            delivered == total
        })
        .ok_or_else(|| format!("timed out: {delivered}/{total} deliveries"))?;
    }
    // One explicit CLC per periodically-checkpointing cluster.
    for (c, delay) in timer_spec.clc_delays.iter().enumerate() {
        if !delay.is_infinite() {
            fed.checkpoint_now(c);
            fed.wait_for(
                STEP_TIMEOUT,
                |e| matches!(e, RtEvent::Committed { cluster, .. } if *cluster == c),
            )
            .ok_or_else(|| format!("timed out waiting for cluster {c}'s CLC"))?;
        }
    }
    // One final collection when the timers file configures a GC.
    if timer_spec.gc_interval.is_some() {
        let clusters = cluster_sizes.len();
        let mut reports = 0usize;
        fed.gc_now();
        fed.wait_for(STEP_TIMEOUT, |e| {
            if matches!(e, RtEvent::GcReport { .. }) {
                reports += 1;
            }
            reports == clusters
        })
        .ok_or_else(|| format!("timed out: {reports}/{clusters} GC reports"))?;
    }
    let nodes: usize = cluster_sizes.iter().map(|&n| n as usize).sum();
    let answered = fed.quiesce(4, STEP_TIMEOUT);
    if answered != nodes {
        return Err(format!(
            "quiesce barrier: {answered}/{nodes} nodes answered"
        ));
    }
    Ok(fed.report())
}

/// `hc3i-sim campaign`: run the adversarial scenario × topology × seed
/// matrix, print one line per cell, and exit nonzero on any invariant
/// violation. `--json PATH` writes the deterministic summary CI diffs
/// against the committed golden.
fn cmd_campaign(args: &[String]) -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut plan = campaign::CampaignPlan::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage_error("--json needs a path"),
            },
            "--seeds" => {
                let Some(list) = it.next() else {
                    return usage_error("--seeds needs a comma-separated list");
                };
                let parsed: Result<Vec<u64>, _> = list.split(',').map(str::parse).collect();
                match parsed {
                    Ok(seeds) if !seeds.is_empty() => plan.seeds = seeds,
                    _ => return usage_error("--seeds wants integers like 1,2,3"),
                }
            }
            "--sim-shards" => {
                plan.sim_shards = match it.next().and_then(|s| s.parse().ok()) {
                    Some(0) => return usage_error("--sim-shards needs a count >= 1"),
                    Some(s) => s,
                    None => return usage_error("--sim-shards needs an integer"),
                }
            }
            other => return usage_error(&format!("unknown campaign flag {other}")),
        }
    }

    let summary = campaign::run_campaign(&plan, |cell| {
        let status = if cell.violations.is_empty() {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "{status:4} {:<20} {:<12} seed {:<10} rollbacks {:<2} delivered {}/{} dup {} held {} reord {} lost {} rexmit {}",
            cell.scenario,
            cell.topology,
            cell.seed,
            cell.rollbacks,
            cell.app_delivered,
            cell.app_sent,
            cell.duplicates,
            cell.held,
            cell.reordered,
            cell.lost,
            cell.retransmissions,
        );
        for v in &cell.violations {
            println!("       - {v}");
        }
    });

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, summary.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("summary written to {path}");
    }

    let failures = summary.failures();
    if failures.is_empty() {
        println!("campaign passed: {} cells clean", summary.cells.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "campaign FAILED: {}/{} cells violated protocol invariants",
            failures.len(),
            summary.cells.len()
        );
        ExitCode::FAILURE
    }
}

/// `hc3i-sim recover`: scan a durable segment log read-only, rebuild every
/// node's CLC chain to the last durable checkpoint, and print a
/// deterministic per-node summary. With `--verify-prefix-of`, a second
/// image is recovered and every node chain of the first must be a prefix
/// of its counterpart there — the crash-consistency check for fault-free
/// runs, where a killed run's durable state can only trail (never diverge
/// from) its uninterrupted twin.
fn cmd_recover(args: &[String]) -> ExitCode {
    let mut dir: Option<String> = None;
    let mut reference: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--durable-dir" => match it.next() {
                Some(p) => dir = Some(p.clone()),
                None => return usage_error("--durable-dir needs a directory"),
            },
            "--verify-prefix-of" => match it.next() {
                Some(p) => reference = Some(p.clone()),
                None => return usage_error("--verify-prefix-of needs a directory"),
            },
            other => return usage_error(&format!("unknown recover flag {other}")),
        }
    }
    let Some(dir) = dir else {
        return usage_error("recover needs --durable-dir");
    };

    let recover_dir = |d: &str| {
        storage::recover(std::path::Path::new(d), &hc3i_core::CheckpointCodec)
            .map_err(|e| format!("{d}: {e}"))
    };
    let result = (|| -> Result<(), String> {
        let image = recover_dir(&dir)?;
        println!("== durable recovery report ==");
        println!(
            "segments scanned: {}  frames replayed: {}",
            image.segments, image.frames
        );
        match &image.torn {
            None => println!("torn tail: none"),
            Some(t) => println!(
                "torn tail: segment {} offset {} ({} bytes discarded)",
                t.segment, t.offset, t.discarded
            ),
        }
        for (node, chain) in image.stores.iter() {
            let sns: Vec<String> = chain.iter().map(|e| e.meta.sn.to_string()).collect();
            let (delivered, channel) = chain.latest().map_or((0, 0), |e| {
                (e.payload.delivered.len(), e.payload.channel_state.len())
            });
            println!(
                "node {node}: {} CLCs, SNs [{}], latest delivered {delivered} channel {channel}",
                chain.len(),
                sns.join(" "),
            );
        }
        println!(
            "total: {} nodes, {} stored CLCs",
            image.stores.len(),
            image.total_entries()
        );

        if let Some(reference) = reference {
            let full = recover_dir(&reference)?;
            if image.stores.len() != full.stores.len() {
                return Err(format!(
                    "prefix check: node count differs ({} vs {})",
                    image.stores.len(),
                    full.stores.len()
                ));
            }
            // The reference ran to completion, so its garbage collector can
            // have pruned CLCs the crashed image still holds (the crash
            // froze the image before those collections). Chains therefore
            // align by SN, not by position: image entries below the
            // reference chain's floor are historic — provably collected,
            // impossible to compare — and are reported, not failed.
            let mut historic_total = 0usize;
            let mut compared_total = 0usize;
            for (node, chain) in image.stores.iter() {
                let Some(other) = full.stores.get(node) else {
                    return Err(format!(
                        "prefix check: node {node} missing from {reference}"
                    ));
                };
                let floor = other
                    .iter()
                    .next()
                    .map(|e| e.meta.sn)
                    .ok_or_else(|| format!("prefix check: node {node} empty in {reference}"))?;
                let historic = chain.iter().take_while(|e| e.meta.sn < floor).count();
                if historic > 0 {
                    historic_total += historic;
                    println!(
                        "node {node}: {historic} CLC(s) historic (GC-pruned in reference), skipped"
                    );
                }
                for mine in chain.iter().skip(historic) {
                    let Some(theirs) = other.iter().find(|t| t.meta.sn == mine.meta.sn) else {
                        return Err(format!(
                            "prefix check: node {node} has SN {} absent from {reference}",
                            mine.meta.sn
                        ));
                    };
                    if mine.meta != theirs.meta || mine.payload != theirs.payload {
                        return Err(format!(
                            "prefix check: node {node} diverges at SN {}",
                            mine.meta.sn
                        ));
                    }
                    compared_total += 1;
                }
            }
            println!(
                "prefix check: OK ({compared_total} CLCs are a prefix of {} in the reference \
                 image{})",
                full.total_entries(),
                if historic_total > 0 {
                    format!("; {historic_total} historic, skipped")
                } else {
                    String::new()
                }
            );
        }
        Ok(())
    })();

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn print_report(report: &simdriver::RunReport) {
    println!("== HC3I simulation report ==");
    println!(
        "simulated time: {}  events: {}",
        report.ended_at, report.events_processed
    );
    println!();
    print!("{}", report.format_app_matrix());
    println!();
    for (c, s) in report.clusters.iter().enumerate() {
        println!(
            "cluster {c}: CLCs committed {} (unforced {}, forced {}), stored {} (peak {})",
            s.total_clcs(),
            s.unforced_clcs,
            s.forced_clcs,
            s.stored_clcs,
            s.peak_stored_clcs
        );
        for (k, &(before, after)) in s.gc_before_after.iter().enumerate() {
            println!("  gc #{:<2} stored CLCs {before} -> {after}", k + 1);
        }
        for (i, &(at, sn, discarded)) in s.rollbacks.iter().enumerate() {
            println!(
                "  rollback #{:<2} at {at} -> SN {sn} ({discarded} CLCs discarded, {} lost)",
                i + 1,
                s.work_lost[i]
            );
        }
    }
    println!();
    println!(
        "messages: app sent {} delivered {}, protocol {} ({} bytes), acks {}",
        report.app_sent,
        report.app_delivered,
        report.protocol_messages,
        report.protocol_bytes,
        report.ack_messages
    );
    if report.late_crossings > 0 || report.unrecoverable_faults > 0 {
        println!(
            "WARNINGS: late_crossings={} unrecoverable_faults={}",
            report.late_crossings, report.unrecoverable_faults
        );
    }
}

fn cmd_sample(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage_error("sample-configs needs a directory");
    };
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let files = [
        (
            "topology.conf",
            "# The paper's reference federation (section 5.2)\n\
             clusters 2\n\
             nodes 100 100\n\
             intra 0 10us 80Mbps\n\
             intra 1 10us 80Mbps\n\
             inter 0 1 150us 100Mbps\n\
             mtbf inf\n",
        ),
        (
            "application.conf",
            "# Simulation on cluster 0 feeding a trace processor on cluster 1\n\
             duration 10h\n\
             payload 1024\n\
             compute_mean 0 120s\n\
             compute_mean 1 140s\n\
             pattern 0 0.95 0.05\n\
             pattern 1 0.005 0.995\n",
        ),
        (
            "timers.conf",
            "# Checkpoint every 30 minutes in cluster 0; never in cluster 1;\n\
             # collect garbage every 2 hours.\n\
             clc_timer 0 30m\n\
             clc_timer 1 inf\n\
             gc_timer 2h\n\
             detection_delay 100ms\n",
        ),
    ];
    for (name, content) in files {
        if let Err(e) = std::fs::write(dir.join(name), content) {
            eprintln!("error writing {name}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {}", dir.join(name).display());
    }
    ExitCode::SUCCESS
}
