//! End-to-end smoke tests of the `hc3i-sim` binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hc3i-sim")
}

#[test]
fn sample_configs_then_run() {
    let dir = std::env::temp_dir().join(format!("hc3i-cli-smoke-{}", std::process::id()));
    let out = Command::new(bin())
        .args(["sample-configs", dir.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let arg = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let out = Command::new(bin())
        .args([
            "run",
            "--topology",
            &arg("topology.conf"),
            "--application",
            &arg("application.conf"),
            "--timers",
            &arg("timers.conf"),
            "--seed",
            "7",
            "--fault",
            "200:0:17",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("HC3I simulation report"));
    assert!(
        stdout.contains("rollback #1"),
        "fault must appear: {stdout}"
    );
    assert!(!stdout.contains("WARNINGS"), "run must be clean: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_args_fail_with_usage() {
    let out = Command::new(bin()).args(["run"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = Command::new(bin()).args(["bogus"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn runtime_mode_drives_live_substrate() {
    let dir = std::env::temp_dir().join(format!("hc3i-cli-runtime-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A small workload so the live run stays fast in debug builds.
    let write = |name: &str, content: &str| {
        std::fs::write(dir.join(name), content).unwrap();
    };
    write(
        "topology.conf",
        "clusters 2\nnodes 4 4\nintra 0 10us 80Mbps\nintra 1 10us 80Mbps\n\
         inter 0 1 150us 100Mbps\nmtbf inf\n",
    );
    write(
        "application.conf",
        "duration 10m\npayload 256\ncompute_mean 0 30s\ncompute_mean 1 30s\n\
         pattern 0 0.9 0.1\npattern 1 0.1 0.9\n",
    );
    write(
        "timers.conf",
        "clc_timer 0 5m\nclc_timer 1 inf\ngc_timer 5m\ndetection_delay 100ms\n",
    );
    let arg = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let out = Command::new(bin())
        .args([
            "run",
            "--topology",
            &arg("topology.conf"),
            "--application",
            &arg("application.conf"),
            "--timers",
            &arg("timers.conf"),
            "--seed",
            "11",
            "--runtime",
            "--shards",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("live substrate"), "{stdout}");
    assert!(stdout.contains("HC3I simulation report"), "{stdout}");
    assert!(stdout.contains("gc #1"), "gc must have run: {stdout}");
    assert!(!stdout.contains("WARNINGS"), "run must be clean: {stdout}");
    // Every injected message was delivered (the report prints both).
    let line = stdout
        .lines()
        .find(|l| l.starts_with("messages: app sent"))
        .expect("messages line");
    let mut nums = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty());
    let sent: u64 = nums.next().unwrap().parse().unwrap();
    let delivered: u64 = nums.next().unwrap().parse().unwrap();
    assert_eq!(sent, delivered, "{line}");
    assert!(sent > 0, "{line}");

    // --runtime rejects simulator-only flags.
    let out = Command::new(bin())
        .args([
            "run",
            "--topology",
            &arg("topology.conf"),
            "--application",
            &arg("application.conf"),
            "--timers",
            &arg("timers.conf"),
            "--runtime",
            "--fault",
            "1:0:0",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("simulator-only"));
    std::fs::remove_dir_all(&dir).ok();
}
