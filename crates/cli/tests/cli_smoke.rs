//! End-to-end smoke tests of the `hc3i-sim` binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hc3i-sim")
}

#[test]
fn sample_configs_then_run() {
    let dir = std::env::temp_dir().join(format!("hc3i-cli-smoke-{}", std::process::id()));
    let out = Command::new(bin())
        .args(["sample-configs", dir.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let arg = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let out = Command::new(bin())
        .args([
            "run",
            "--topology",
            &arg("topology.conf"),
            "--application",
            &arg("application.conf"),
            "--timers",
            &arg("timers.conf"),
            "--seed",
            "7",
            "--fault",
            "200:0:17",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("HC3I simulation report"));
    assert!(
        stdout.contains("rollback #1"),
        "fault must appear: {stdout}"
    );
    assert!(!stdout.contains("WARNINGS"), "run must be clean: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_args_fail_with_usage() {
    let out = Command::new(bin()).args(["run"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = Command::new(bin()).args(["bogus"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
