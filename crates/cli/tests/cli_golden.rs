//! Golden-output tests of `hc3i-sim run`.
//!
//! A simulation is a pure function of its configuration and seed, so the
//! CLI's report must match the checked-in fixture byte for byte — on any
//! machine. Regenerate the fixture after an *intentional* behaviour change
//! with the command embedded in `golden_args` below, e.g.:
//!
//! ```text
//! hc3i-sim sample-configs /tmp/d && hc3i-sim run --topology … \
//!     > crates/cli/tests/golden/run_reference.stdout
//! ```

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hc3i-sim")
}

/// Write the sample configs into a fresh temp dir and return it.
fn sample_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hc3i-cli-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(bin())
        .args(["sample-configs", dir.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir
}

fn golden_args(dir: &std::path::Path, trace_file: &std::path::Path) -> Vec<String> {
    let arg = |name: &str| dir.join(name).to_str().unwrap().to_string();
    vec![
        "run".into(),
        "--topology".into(),
        arg("topology.conf"),
        "--application".into(),
        arg("application.conf"),
        "--timers".into(),
        arg("timers.conf"),
        "--seed".into(),
        "7".into(),
        "--fault".into(),
        "200:0:17".into(),
        "--contention".into(),
        "fifo".into(),
        "--replication".into(),
        "2".into(),
        "--trace".into(),
        "protocol".into(),
        "--trace-file".into(),
        trace_file.to_str().unwrap().into(),
    ]
}

#[test]
fn report_matches_golden_fixture_exactly() {
    let dir = sample_dir("report");
    let trace_path = dir.join("trace.txt");
    let out = Command::new(bin())
        .args(golden_args(&dir, &trace_path))
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let got = String::from_utf8(out.stdout).expect("utf8 report");
    let want = include_str!("golden/run_reference.stdout");
    assert_eq!(
        got, want,
        "report deviates from the golden fixture — if the change is \
         intentional, regenerate crates/cli/tests/golden/run_reference.stdout"
    );

    // The trace went to the file, not stdout.
    assert!(!got.contains("== trace"), "trace leaked into stdout");
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert_eq!(trace.lines().count(), 245, "protocol-level record count");
    assert!(
        trace
            .lines()
            .next()
            .unwrap()
            .contains("committed CLC 2 (forced)"),
        "first record: {trace:.120}"
    );
    assert!(
        trace.contains("rollback"),
        "the scripted fault must be traced"
    );
    assert!(trace.contains("gc"), "the periodic GC must be traced");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn contention_model_changes_delivery_timing() {
    let dir = sample_dir("contention");
    let arg = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let run = |contention: &str| {
        let trace = dir.join(format!("trace-{contention}.txt"));
        let out = Command::new(bin())
            .args([
                "run",
                "--topology",
                &arg("topology.conf"),
                "--application",
                &arg("application.conf"),
                "--timers",
                &arg("timers.conf"),
                "--seed",
                "7",
                "--trace",
                "protocol",
                "--trace-file",
                trace.to_str().unwrap(),
                "--contention",
                contention,
            ])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&trace).expect("trace written")
    };
    // The report only aggregates counts; the protocol *timestamps* are
    // where serializing the shared inter-cluster pipe shows up.
    let unlimited = run("none");
    let fifo = run("fifo");
    assert_ne!(
        unlimited, fifo,
        "serializing the inter-cluster pipe must shift protocol timing"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flag_values_fail_with_usage() {
    for args in [
        vec!["run", "--contention", "carrier-pigeon"],
        vec!["run", "--replication", "0"],
        vec!["run", "--replication", "many"],
        vec!["run", "--trace-file"],
    ] {
        let out = Command::new(bin()).args(&args).output().expect("spawn");
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage"), "{args:?}: {err}");
    }
}
