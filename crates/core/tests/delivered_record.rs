//! Property test: the generational, copy-on-write [`DeliveredRecord`]
//! behaves identically to the eager clone-per-CLC representation it
//! replaced, across random CLC / rollback / GC interleavings.
//!
//! The model is the old representation itself: a plain `HashMap` whose
//! "seal" is a full deep clone. The test drives both through the same
//! random op sequence —
//!
//! * `Insert` — an inter-cluster delivery recorded between CLCs;
//! * `Seal` — `freeze_and_stage` staging a checkpoint;
//! * `Restore(i)` — a rollback to the `i`-th stored checkpoint (newer
//!   snapshots are discarded, like `ClcStore::truncate_after`);
//! * `Prune(n)` — garbage collection dropping the `n` oldest snapshots
//!   (shared generations must keep later snapshots intact);
//!
//! — and asserts lookups, lengths, snapshot contents and the persisted
//! encoding agree at every step.

use hc3i_core::persist::{decode_checkpoint, encode_checkpoint};
use hc3i_core::{DeliveredKey, DeliveredRecord, NodeCheckpoint, SeqNum};
use netsim::NodeId;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { key_seed: u32, sn: u64 },
    Seal,
    Restore { pick: usize },
    Prune { count: usize },
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            5 => (any::<u32>(), 1u64..1000).prop_map(|(key_seed, sn)| Op::Insert { key_seed, sn }),
            3 => Just(Op::Seal),
            1 => any::<prop::sample::Index>().prop_map(|i| Op::Restore { pick: i.index(64) }),
            1 => any::<prop::sample::Index>().prop_map(|i| Op::Prune { count: i.index(4) }),
        ],
        0..80,
    )
}

fn key(seed: u32) -> DeliveredKey {
    // A small key space so inserts collide with existing entries often
    // (collisions are skipped, as the engine's duplicate check does).
    (
        NodeId::new((seed % 3) as u16, (seed >> 2) % 4),
        (seed % 11) as u64,
    )
}

fn contents_match(rec: &DeliveredRecord, model: &HashMap<DeliveredKey, SeqNum>) -> bool {
    rec.len() == model.len() && model.iter().all(|(k, sn)| rec.get(k) == Some(*sn))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generational_record_matches_eager_model(ops in ops_strategy()) {
        let mut live = DeliveredRecord::new();
        let mut model: HashMap<DeliveredKey, SeqNum> = HashMap::new();
        // Parallel stores of (generational snapshot, eager clone).
        let mut snaps: Vec<(DeliveredRecord, HashMap<DeliveredKey, SeqNum>)> = Vec::new();

        for op in ops {
            match op {
                Op::Insert { key_seed, sn } => {
                    let k = key(key_seed);
                    // The engine only records a delivery after its
                    // duplicate check; mirror that here.
                    if live.get(&k).is_none() {
                        prop_assert!(!model.contains_key(&k), "model diverged");
                        live.insert(k, SeqNum(sn));
                        model.insert(k, SeqNum(sn));
                    } else {
                        prop_assert_eq!(live.get(&k), model.get(&k).copied());
                    }
                }
                Op::Seal => {
                    // Old representation: full clone. New: O(delta) seal.
                    snaps.push((live.seal(), model.clone()));
                }
                Op::Restore { pick } => {
                    if !snaps.is_empty() {
                        let idx = pick % snaps.len();
                        // Rollback: restore snapshot `idx`, discard newer.
                        live = snaps[idx].0.clone();
                        model = snaps[idx].1.clone();
                        snaps.truncate(idx + 1);
                    }
                }
                Op::Prune { count } => {
                    // GC drops the oldest checkpoints; later snapshots and
                    // the live record must be unaffected even though they
                    // share generations with the dropped ones.
                    let n = count.min(snaps.len());
                    snaps.drain(..n);
                }
            }
            prop_assert!(contents_match(&live, &model), "live record diverged");
        }

        // Every surviving snapshot still equals its eager counterpart…
        for (rec, eager) in &snaps {
            prop_assert!(contents_match(rec, eager), "snapshot diverged");
            // …is canonical under sorting…
            let mut expect: Vec<_> = eager.iter().map(|(k, sn)| (*k, *sn)).collect();
            expect.sort_unstable_by_key(|&(k, _)| k);
            prop_assert_eq!(rec.sorted_entries(), expect);
            // …and round-trips through the flat checkpoint encoding.
            let ckpt = NodeCheckpoint {
                delivered: rec.clone(),
                channel_state: vec![],
                app_state: None,
            };
            let bytes = encode_checkpoint(&ckpt);
            let mut pos = 0;
            let back = decode_checkpoint(&bytes, &mut pos).unwrap();
            prop_assert_eq!(pos, bytes.len());
            prop_assert_eq!(&back.delivered, rec);
        }
    }
}
