//! Duplicate-message idempotence at the engine level.
//!
//! A duplicating WAN (or an original racing a §3.3 replay) can hand a
//! `NodeEngine` the same message twice. Every protocol message must be
//! idempotent on the second copy: re-acked, ignored, or dropped — never
//! double-counted and never delivered twice to the application.

use hc3i_core::testkit::InstantFederation;
use hc3i_core::{
    AppPayload, Ddv, Input, LogId, Msg, NodeEngine, Output, OutputBuf, Piggyback, ProtocolConfig,
    SeqNum,
};
use netsim::NodeId;
use std::sync::Arc;

fn receive(from: NodeId, msg: Msg) -> Input {
    Input::Receive { from, msg }
}

/// A duplicated `AppInter` whose original was already delivered is
/// re-acknowledged from the delivered record, never re-delivered.
#[test]
fn duplicate_app_inter_is_reacked_not_redelivered() {
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2]));
    let sender = NodeId::new(0, 0);
    let receiver = NodeId::new(1, 0);
    fed.app_send(sender, receiver, AppPayload { bytes: 256, tag: 1 });
    assert_eq!(fed.delivered_tags(receiver), vec![1]);

    // The WAN re-delivers the same message (the sender logged it as
    // LogId(0), its first inter-cluster send).
    fed.input(
        receiver,
        receive(
            sender,
            Msg::AppInter {
                payload: AppPayload { bytes: 256, tag: 1 },
                piggyback: Piggyback::Sn(SeqNum(0)),
                log_id: LogId(0),
                resend: false,
                sender_epoch: 0,
            },
        ),
    );
    assert_eq!(
        fed.delivered_tags(receiver),
        vec![1],
        "duplicate must not reach the application a second time"
    );
}

/// A duplicated `ClcCommit` after the round already committed finds no
/// frozen state and is a no-op: no double-counted commit, no SN change.
#[test]
fn duplicate_clc_commit_is_a_no_op() {
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2]));
    fed.fire_clc_timer(0);
    assert_eq!(fed.clc_counts(0), (1, 0));
    let node = NodeId::new(0, 1);
    // The initial CLC is SN 1 (paper §4), so the timer commit is SN 2.
    let sn = fed.engine(node).sn();
    assert_eq!(sn, SeqNum(2));

    let ddv = Arc::new(fed.engine(node).ddv().clone());
    fed.input(
        node,
        receive(
            NodeId::new(0, 0),
            Msg::ClcCommit {
                round: 1,
                sn,
                ddv,
                forced: false,
                epoch: 0,
            },
        ),
    );
    assert_eq!(fed.clc_counts(0), (1, 0), "commit double-counted");
    assert_eq!(fed.engine(node).sn(), sn);
    assert!(!fed.engine(node).is_frozen());
}

/// A duplicated `FragmentReplica` after the round committed re-stores the
/// fragment and re-acks `FragmentStored`; the owner (no longer frozen)
/// ignores the stale ack. Nothing advances, nothing panics.
#[test]
fn duplicate_fragment_replica_is_idempotent() {
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2]));
    fed.fire_clc_timer(0);
    assert_eq!(fed.clc_counts(0), (1, 0));
    let holder = NodeId::new(0, 0);
    let sn_before = fed.engine(holder).sn();

    fed.input(
        holder,
        receive(
            NodeId::new(0, 1),
            Msg::FragmentReplica {
                round: 1,
                owner: 1,
                epoch: 0,
            },
        ),
    );
    assert_eq!(fed.clc_counts(0), (1, 0));
    assert_eq!(fed.engine(holder).sn(), sn_before);
    assert!(!fed.engine(holder).is_frozen());
    assert!(!fed.engine(NodeId::new(0, 1)).is_frozen());
}

/// Regression: a duplicate arriving while the original is held for a
/// forced CLC must be dropped — before the dedup check in `recv_inter`,
/// both copies were queued and the commit delivered the payload twice.
/// This drives a bare engine through the full forced-CLC round by hand so
/// the hold window stays open across the duplicate.
#[test]
fn pending_duplicate_delivers_exactly_once() {
    let cfg = ProtocolConfig::new(vec![1, 2]);
    let me = NodeId::new(1, 1); // rank 1: not the coordinator, so the
                                // forced CLC stays in flight until we
                                // deliver the round by hand.
    let mut engine = NodeEngine::new(cfg, me);
    let mut out = OutputBuf::new();
    let sender = NodeId::new(0, 0);
    let t = |n: u64| desim::SimTime::ZERO + desim::SimDuration::from_nanos(n);
    let app_inter = || {
        receive(
            sender,
            Msg::AppInter {
                payload: AppPayload { bytes: 256, tag: 9 },
                // The sender's cluster is one CLC ahead: forces a CLC here.
                piggyback: Piggyback::Sn(SeqNum(1)),
                log_id: LogId(0),
                resend: false,
                sender_epoch: 0,
            },
        )
    };

    let mut deliveries = 0usize;
    let mut drain = |out: &mut OutputBuf| {
        let outs: Vec<Output> = out.drain().collect();
        deliveries += outs
            .iter()
            .filter(|o| matches!(o, Output::DeliverApp { .. }))
            .count();
        outs
    };

    // Original: held, CLC requested from the coordinator.
    engine.handle(t(1), app_inter(), &mut out);
    let outs = drain(&mut out);
    assert_eq!(engine.pending_inter_count(), 1);
    assert!(outs
        .iter()
        .any(|o| matches!(o, Output::Send { to, msg: Msg::ClcInit { .. } } if to.rank == 0)));

    // Duplicate while held: dropped, not queued a second time.
    engine.handle(t(2), app_inter(), &mut out);
    let outs = drain(&mut out);
    assert_eq!(engine.pending_inter_count(), 1, "duplicate was queued");
    assert!(outs.is_empty(), "duplicate produced outputs: {outs:?}");

    // Run the 2PC round by hand: request → fragment stored → commit.
    let coord = NodeId::new(1, 0);
    engine.handle(
        t(3),
        receive(coord, Msg::ClcRequest { round: 1, epoch: 0 }),
        &mut out,
    );
    drain(&mut out);
    engine.handle(
        t(4),
        receive(
            coord,
            Msg::FragmentStored {
                round: 1,
                holder: 0,
                epoch: 0,
            },
        ),
        &mut out,
    );
    drain(&mut out);
    engine.handle(
        t(5),
        receive(
            coord,
            Msg::ClcCommit {
                round: 1,
                // The initial CLC is SN 1, so this forced CLC commits as 2.
                sn: SeqNum(2),
                // The commit records the dependency on the sender cluster,
                // so the held message no longer forces anything.
                ddv: Arc::new(Ddv::from_entries(vec![SeqNum(1), SeqNum(2)])),
                forced: true,
                epoch: 0,
            },
        ),
        &mut out,
    );
    let outs = drain(&mut out);
    assert_eq!(engine.pending_inter_count(), 0);
    assert!(
        outs.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Msg::InterAck { .. },
                ..
            }
        )),
        "held message must be acknowledged at commit"
    );
    assert_eq!(
        deliveries, 1,
        "payload must reach the application exactly once"
    );
}

/// Satellite of the lossy-network work: the per-sender `delivered_hwm`
/// fast path is *not* reset by a rollback, so after a restore it sits
/// stale-high above log ids whose deliveries were just discarded. A
/// retransmitted copy of such a rolled-back log id must not be
/// misclassified as a duplicate: the stale mark only skips the
/// common-case probe shortcut, and the probe itself runs against the
/// *restored* delivered record, finds nothing, and re-delivers into the
/// new incarnation.
#[test]
fn rolled_back_log_id_is_redelivered_despite_stale_hwm() {
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2]));
    let sender = NodeId::new(0, 0);
    let receiver = NodeId::new(1, 0);
    // Two sends: log ids 0 and 1, pushing the receiver's high-water mark
    // for this sender to 1. The first forces CLC 2; both deliveries land
    // *after* that commit, so the restored record will contain neither.
    fed.app_send(
        sender,
        receiver,
        AppPayload {
            bytes: 256,
            tag: 41,
        },
    );
    fed.app_send(
        sender,
        receiver,
        AppPayload {
            bytes: 256,
            tag: 42,
        },
    );
    assert_eq!(fed.delivered_tags(receiver), vec![41, 42]);

    // Fail a cluster-1 node: the cluster restores CLC 2, discarding both
    // deliveries; the sender's log replays both messages with their
    // original log ids — exactly the retransmitted-rolled-back-id shape.
    fed.fail_node(NodeId::new(1, 1));
    assert_eq!(
        fed.delivered_tags(receiver),
        vec![41, 42, 41, 42],
        "replayed copies must re-deliver into the restored incarnation"
    );

    // A late transport duplicate of the replay is now a true duplicate of
    // the new incarnation's delivery: re-acked, never a third delivery.
    fed.input(
        receiver,
        receive(
            sender,
            Msg::AppInter {
                payload: AppPayload {
                    bytes: 256,
                    tag: 42,
                },
                piggyback: Piggyback::Sn(SeqNum(1)),
                log_id: LogId(1),
                resend: true,
                sender_epoch: 0,
            },
        ),
    );
    assert_eq!(fed.delivered_tags(receiver), vec![41, 42, 41, 42]);
}

/// Satellite of the lossy-network work: the ack-loss shape. The original
/// is delivered and acknowledged, the ack vanishes on the wire, and the
/// sender's retransmission arrives only after a later CLC sealed the
/// delivery into a committed checkpoint. The retransmitted copy must be
/// re-acknowledged with the SN recorded at first delivery — probed
/// through the sealed generational record — and never re-delivered.
#[test]
fn retransmission_after_clc_is_reacked_with_original_sn() {
    let cfg = ProtocolConfig::new(vec![1, 2]);
    let me = NodeId::new(1, 1);
    let mut engine = NodeEngine::new(cfg, me);
    let mut out = OutputBuf::new();
    let sender = NodeId::new(0, 0);
    let t = |n: u64| desim::SimTime::ZERO + desim::SimDuration::from_nanos(n);
    let app_inter = |resend: bool| {
        receive(
            sender,
            Msg::AppInter {
                payload: AppPayload { bytes: 256, tag: 9 },
                piggyback: Piggyback::Sn(SeqNum(0)),
                log_id: LogId(0),
                resend,
                sender_epoch: 0,
            },
        )
    };

    // Original: delivered immediately (no forced CLC) and acked at SN 1.
    engine.handle(t(1), app_inter(false), &mut out);
    let outs: Vec<Output> = out.drain().collect();
    assert!(outs.iter().any(|o| matches!(o, Output::DeliverApp { .. })));
    assert!(outs.iter().any(|o| matches!(
        o,
        Output::Send {
            msg: Msg::InterAck {
                receiver_sn: SeqNum(1),
                ..
            },
            ..
        }
    )));
    // The ack is "lost" on the wire: nothing is forwarded to the sender.

    // A CLC commits, sealing the delivery into checkpoint SN 2.
    let coord = NodeId::new(1, 0);
    engine.handle(
        t(2),
        receive(coord, Msg::ClcRequest { round: 1, epoch: 0 }),
        &mut out,
    );
    out.drain().for_each(drop);
    engine.handle(
        t(3),
        receive(
            coord,
            Msg::FragmentStored {
                round: 1,
                holder: 0,
                epoch: 0,
            },
        ),
        &mut out,
    );
    out.drain().for_each(drop);
    engine.handle(
        t(4),
        receive(
            coord,
            Msg::ClcCommit {
                round: 1,
                sn: SeqNum(2),
                ddv: Arc::new(Ddv::from_entries(vec![SeqNum(1), SeqNum(2)])),
                forced: false,
                epoch: 0,
            },
        ),
        &mut out,
    );
    out.drain().for_each(drop);

    // The sender retransmits the unacked message post-CLC: the probe must
    // reach through the sealed record, re-ack with the *original* SN 1
    // (not the current SN 2), and must not deliver a second time.
    engine.handle(t(5), app_inter(true), &mut out);
    let outs: Vec<Output> = out.drain().collect();
    assert!(
        !outs.iter().any(|o| matches!(o, Output::DeliverApp { .. })),
        "retransmitted copy re-delivered: {outs:?}"
    );
    assert!(
        outs.iter().any(|o| matches!(
            o,
            Output::Send {
                to,
                msg: Msg::InterAck {
                    log_id: LogId(0),
                    receiver_sn: SeqNum(1),
                },
            } if *to == sender
        )),
        "re-ack with the first-delivery SN missing: {outs:?}"
    );
}
