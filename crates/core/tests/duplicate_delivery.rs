//! Duplicate-message idempotence at the engine level.
//!
//! A duplicating WAN (or an original racing a §3.3 replay) can hand a
//! `NodeEngine` the same message twice. Every protocol message must be
//! idempotent on the second copy: re-acked, ignored, or dropped — never
//! double-counted and never delivered twice to the application.

use hc3i_core::testkit::InstantFederation;
use hc3i_core::{
    AppPayload, Ddv, Input, LogId, Msg, NodeEngine, Output, OutputBuf, Piggyback, ProtocolConfig,
    SeqNum,
};
use netsim::NodeId;
use std::sync::Arc;

fn receive(from: NodeId, msg: Msg) -> Input {
    Input::Receive { from, msg }
}

/// A duplicated `AppInter` whose original was already delivered is
/// re-acknowledged from the delivered record, never re-delivered.
#[test]
fn duplicate_app_inter_is_reacked_not_redelivered() {
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2]));
    let sender = NodeId::new(0, 0);
    let receiver = NodeId::new(1, 0);
    fed.app_send(sender, receiver, AppPayload { bytes: 256, tag: 1 });
    assert_eq!(fed.delivered_tags(receiver), vec![1]);

    // The WAN re-delivers the same message (the sender logged it as
    // LogId(0), its first inter-cluster send).
    fed.input(
        receiver,
        receive(
            sender,
            Msg::AppInter {
                payload: AppPayload { bytes: 256, tag: 1 },
                piggyback: Piggyback::Sn(SeqNum(0)),
                log_id: LogId(0),
                resend: false,
                sender_epoch: 0,
            },
        ),
    );
    assert_eq!(
        fed.delivered_tags(receiver),
        vec![1],
        "duplicate must not reach the application a second time"
    );
}

/// A duplicated `ClcCommit` after the round already committed finds no
/// frozen state and is a no-op: no double-counted commit, no SN change.
#[test]
fn duplicate_clc_commit_is_a_no_op() {
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2]));
    fed.fire_clc_timer(0);
    assert_eq!(fed.clc_counts(0), (1, 0));
    let node = NodeId::new(0, 1);
    // The initial CLC is SN 1 (paper §4), so the timer commit is SN 2.
    let sn = fed.engine(node).sn();
    assert_eq!(sn, SeqNum(2));

    let ddv = Arc::new(fed.engine(node).ddv().clone());
    fed.input(
        node,
        receive(
            NodeId::new(0, 0),
            Msg::ClcCommit {
                round: 1,
                sn,
                ddv,
                forced: false,
                epoch: 0,
            },
        ),
    );
    assert_eq!(fed.clc_counts(0), (1, 0), "commit double-counted");
    assert_eq!(fed.engine(node).sn(), sn);
    assert!(!fed.engine(node).is_frozen());
}

/// A duplicated `FragmentReplica` after the round committed re-stores the
/// fragment and re-acks `FragmentStored`; the owner (no longer frozen)
/// ignores the stale ack. Nothing advances, nothing panics.
#[test]
fn duplicate_fragment_replica_is_idempotent() {
    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2]));
    fed.fire_clc_timer(0);
    assert_eq!(fed.clc_counts(0), (1, 0));
    let holder = NodeId::new(0, 0);
    let sn_before = fed.engine(holder).sn();

    fed.input(
        holder,
        receive(
            NodeId::new(0, 1),
            Msg::FragmentReplica {
                round: 1,
                owner: 1,
                epoch: 0,
            },
        ),
    );
    assert_eq!(fed.clc_counts(0), (1, 0));
    assert_eq!(fed.engine(holder).sn(), sn_before);
    assert!(!fed.engine(holder).is_frozen());
    assert!(!fed.engine(NodeId::new(0, 1)).is_frozen());
}

/// Regression: a duplicate arriving while the original is held for a
/// forced CLC must be dropped — before the dedup check in `recv_inter`,
/// both copies were queued and the commit delivered the payload twice.
/// This drives a bare engine through the full forced-CLC round by hand so
/// the hold window stays open across the duplicate.
#[test]
fn pending_duplicate_delivers_exactly_once() {
    let cfg = ProtocolConfig::new(vec![1, 2]);
    let me = NodeId::new(1, 1); // rank 1: not the coordinator, so the
                                // forced CLC stays in flight until we
                                // deliver the round by hand.
    let mut engine = NodeEngine::new(cfg, me);
    let mut out = OutputBuf::new();
    let sender = NodeId::new(0, 0);
    let t = |n: u64| desim::SimTime::ZERO + desim::SimDuration::from_nanos(n);
    let app_inter = || {
        receive(
            sender,
            Msg::AppInter {
                payload: AppPayload { bytes: 256, tag: 9 },
                // The sender's cluster is one CLC ahead: forces a CLC here.
                piggyback: Piggyback::Sn(SeqNum(1)),
                log_id: LogId(0),
                resend: false,
                sender_epoch: 0,
            },
        )
    };

    let mut deliveries = 0usize;
    let mut drain = |out: &mut OutputBuf| {
        let outs: Vec<Output> = out.drain().collect();
        deliveries += outs
            .iter()
            .filter(|o| matches!(o, Output::DeliverApp { .. }))
            .count();
        outs
    };

    // Original: held, CLC requested from the coordinator.
    engine.handle(t(1), app_inter(), &mut out);
    let outs = drain(&mut out);
    assert_eq!(engine.pending_inter_count(), 1);
    assert!(outs
        .iter()
        .any(|o| matches!(o, Output::Send { to, msg: Msg::ClcInit { .. } } if to.rank == 0)));

    // Duplicate while held: dropped, not queued a second time.
    engine.handle(t(2), app_inter(), &mut out);
    let outs = drain(&mut out);
    assert_eq!(engine.pending_inter_count(), 1, "duplicate was queued");
    assert!(outs.is_empty(), "duplicate produced outputs: {outs:?}");

    // Run the 2PC round by hand: request → fragment stored → commit.
    let coord = NodeId::new(1, 0);
    engine.handle(
        t(3),
        receive(coord, Msg::ClcRequest { round: 1, epoch: 0 }),
        &mut out,
    );
    drain(&mut out);
    engine.handle(
        t(4),
        receive(
            coord,
            Msg::FragmentStored {
                round: 1,
                holder: 0,
                epoch: 0,
            },
        ),
        &mut out,
    );
    drain(&mut out);
    engine.handle(
        t(5),
        receive(
            coord,
            Msg::ClcCommit {
                round: 1,
                // The initial CLC is SN 1, so this forced CLC commits as 2.
                sn: SeqNum(2),
                // The commit records the dependency on the sender cluster,
                // so the held message no longer forces anything.
                ddv: Arc::new(Ddv::from_entries(vec![SeqNum(1), SeqNum(2)])),
                forced: true,
                epoch: 0,
            },
        ),
        &mut out,
    );
    let outs = drain(&mut out);
    assert_eq!(engine.pending_inter_count(), 0);
    assert!(
        outs.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Msg::InterAck { .. },
                ..
            }
        )),
        "held message must be acknowledged at commit"
    );
    assert_eq!(
        deliveries, 1,
        "payload must reach the application exactly once"
    );
}
