//! Property tests for the wire codec and the versioned checkpoint-store
//! codec: arbitrary messages and stores round-trip, old (v1) store bytes
//! still decode, and arbitrary byte soup never panics either decoder.

use hc3i_core::codec::{decode, decode_envelope, encode, encode_envelope};
use hc3i_core::persist::{decode_store, encode_store};
use hc3i_core::{
    AppPayload, ClcReason, Ddv, DeliveredRecord, LogId, Msg, NodeCheckpoint, Piggyback, SeqNum,
};
use netsim::NodeId;
use proptest::prelude::*;
use storage::{ClcMeta, ClcStore};

fn ddv_strategy() -> impl Strategy<Value = Ddv> {
    prop::collection::vec(any::<u64>(), 1..8)
        .prop_map(|v| Ddv::from_entries(v.into_iter().map(SeqNum).collect()))
}

fn piggyback_strategy() -> impl Strategy<Value = Piggyback> {
    prop_oneof![
        any::<u64>().prop_map(|v| Piggyback::Sn(SeqNum(v))),
        ddv_strategy().prop_map(|d| Piggyback::Ddv(std::sync::Arc::new(d))),
    ]
}

fn payload_strategy() -> impl Strategy<Value = AppPayload> {
    (any::<u64>(), any::<u64>()).prop_map(|(bytes, tag)| AppPayload { bytes, tag })
}

fn reason_strategy() -> impl Strategy<Value = ClcReason> {
    prop_oneof![
        Just(ClcReason::Timer),
        (piggyback_strategy(), 0usize..16).prop_map(|(p, c)| ClcReason::Forced(p, c)),
    ]
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (reason_strategy(), any::<u64>())
            .prop_map(|(reason, epoch)| Msg::ClcInit { reason, epoch }),
        (any::<u64>(), any::<u64>()).prop_map(|(round, epoch)| Msg::ClcRequest { round, epoch }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(round, owner, epoch)| {
            Msg::FragmentReplica {
                round,
                owner,
                epoch,
            }
        }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(round, holder, epoch)| {
            Msg::FragmentStored {
                round,
                holder,
                epoch,
            }
        }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(round, rank, epoch)| Msg::ClcAck {
            round,
            rank,
            epoch
        }),
        (
            any::<u64>(),
            any::<u64>(),
            ddv_strategy(),
            any::<bool>(),
            any::<u64>()
        )
            .prop_map(|(round, sn, ddv, forced, epoch)| Msg::ClcCommit {
                round,
                sn: SeqNum(sn),
                ddv: std::sync::Arc::new(ddv),
                forced,
                epoch,
            }),
        (payload_strategy(), any::<u64>()).prop_map(|(payload, sn)| Msg::AppIntra {
            payload,
            sent_at_sn: SeqNum(sn),
        }),
        (
            payload_strategy(),
            piggyback_strategy(),
            any::<u64>(),
            any::<bool>(),
            any::<u64>()
        )
            .prop_map(
                |(payload, piggyback, id, resend, sender_epoch)| Msg::AppInter {
                    payload,
                    piggyback,
                    log_id: LogId(id),
                    resend,
                    sender_epoch,
                }
            ),
        (any::<u64>(), any::<u64>()).prop_map(|(id, sn)| Msg::InterAck {
            log_id: LogId(id),
            receiver_sn: SeqNum(sn),
        }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(sn, epoch, nc)| {
            Msg::RollbackOrder {
                restore_sn: SeqNum(sn),
                epoch,
                new_coordinator: nc,
            }
        }),
        (0usize..16, any::<u64>(), any::<u64>()).prop_map(|(origin, sn, e)| Msg::RollbackAlert {
            origin,
            sn: SeqNum(sn),
            origin_epoch: e,
        }),
        (0usize..16, any::<u64>(), any::<u64>()).prop_map(|(origin, sn, e)| Msg::AlertLocal {
            origin,
            sn: SeqNum(sn),
            origin_epoch: e,
        }),
        Just(Msg::GcCollect),
        (
            0usize..16,
            prop::collection::vec((any::<u64>(), ddv_strategy()), 0..6)
        )
            .prop_map(|(cluster, raw)| Msg::GcDdvList {
                cluster,
                list: raw
                    .into_iter()
                    .map(|(sn, ddv)| (SeqNum(sn), std::sync::Arc::new(ddv)))
                    .collect(),
            }),
        prop::collection::vec(any::<u64>(), 0..8).prop_map(|v| Msg::GcPrune {
            min_sns: v.into_iter().map(SeqNum).collect(),
        }),
    ]
}

/// One step of a random store history: deliveries recorded since the
/// previous CLC, plus whether the application published a snapshot.
#[derive(Debug, Clone)]
struct StoreStep {
    deliveries: Vec<(u16, u32, u64, u64)>,
    channel: Vec<(u16, u32, u64, u64)>,
    app_state: Option<Vec<u8>>,
    forced: bool,
}

fn store_strategy() -> impl Strategy<Value = Vec<StoreStep>> {
    prop::collection::vec(
        (
            prop::collection::vec((0u16..4, 0u32..4, any::<u64>(), any::<u64>()), 0..5),
            prop::collection::vec((0u16..4, 0u32..4, 0u64..1 << 20, any::<u64>()), 0..3),
            // (the vendored proptest has no `prop::option`; model the
            // optional app snapshot with an explicit presence bool)
            (any::<bool>(), prop::collection::vec(any::<u8>(), 0..16)),
            any::<bool>(),
        )
            .prop_map(|(deliveries, channel, (has_app, app), forced)| StoreStep {
                deliveries,
                channel,
                app_state: has_app.then_some(app),
                forced,
            }),
        0..10,
    )
}

/// Build a store the way a live engine does: one sealed, structurally
/// shared delivered-record per CLC.
fn build_store(steps: &[StoreStep]) -> ClcStore<NodeCheckpoint> {
    let mut store = ClcStore::new();
    let mut live = DeliveredRecord::new();
    for (i, step) in steps.iter().enumerate() {
        for &(c, r, id, sn) in &step.deliveries {
            let key = (NodeId::new(c, r), id);
            if live.get(&key).is_none() {
                live.insert(key, SeqNum(sn));
            }
        }
        let sn = SeqNum(i as u64 + 1);
        let mut ddv = Ddv::zeros(4);
        ddv.set(0, sn);
        store.commit(
            ClcMeta {
                sn,
                ddv: std::sync::Arc::new(ddv),
                committed_at: desim::SimTime(i as u64),
                forced: step.forced,
            },
            NodeCheckpoint {
                delivered: live.seal(),
                channel_state: step
                    .channel
                    .iter()
                    .map(|&(c, r, bytes, tag)| (NodeId::new(c, r), AppPayload { bytes, tag }))
                    .collect(),
                app_state: step.app_state.clone(),
            },
        );
    }
    store
}

/// Encode a store in the legacy v1 layout (version byte 1, every
/// checkpoint's delivery record written in full, no delivered tag).
fn encode_store_v1(store: &ClcStore<NodeCheckpoint>) -> Vec<u8> {
    fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                return;
            }
            buf.push(byte | 0x80);
        }
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(b"HC3I");
    buf.push(1);
    put_u64(&mut buf, store.len() as u64);
    for entry in store.iter() {
        put_u64(&mut buf, entry.meta.sn.0);
        put_u64(&mut buf, entry.meta.ddv.len() as u64);
        for e in entry.meta.ddv.iter() {
            put_u64(&mut buf, e.0);
        }
        put_u64(&mut buf, entry.meta.committed_at.nanos());
        buf.push(entry.meta.forced as u8);
        let mut body = Vec::new();
        let delivered = entry.payload.delivered.sorted_entries();
        put_u64(&mut body, delivered.len() as u64);
        for ((node, log_id), sn) in delivered {
            put_u64(&mut body, node.cluster.0 as u64);
            put_u64(&mut body, node.rank as u64);
            put_u64(&mut body, log_id);
            put_u64(&mut body, sn.0);
        }
        put_u64(&mut body, entry.payload.channel_state.len() as u64);
        for (from, payload) in &entry.payload.channel_state {
            put_u64(&mut body, from.cluster.0 as u64);
            put_u64(&mut body, from.rank as u64);
            put_u64(&mut body, payload.bytes);
            put_u64(&mut body, payload.tag);
        }
        match &entry.payload.app_state {
            None => body.push(0),
            Some(state) => {
                body.push(1);
                put_u64(&mut body, state.len() as u64);
                body.extend_from_slice(state);
            }
        }
        put_u64(&mut buf, body.len() as u64);
        buf.extend_from_slice(&body);
    }
    buf
}

fn stores_equal(a: &ClcStore<NodeCheckpoint>, b: &ClcStore<NodeCheckpoint>) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.meta == y.meta && x.payload == y.payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_message_round_trips(msg in msg_strategy()) {
        let wire = encode(&msg);
        prop_assert_eq!(decode(&wire).unwrap(), msg);
    }

    #[test]
    fn envelopes_round_trip(
        msg in msg_strategy(),
        fc in any::<u16>(), fr in any::<u32>(),
        tc in any::<u16>(), tr in any::<u32>(),
    ) {
        let from = NodeId::new(fc, fr);
        let to = NodeId::new(tc, tr);
        let wire = encode_envelope(from, to, &msg);
        let (f, t, m) = decode_envelope(&wire).unwrap();
        prop_assert_eq!(f, from);
        prop_assert_eq!(t, to);
        prop_assert_eq!(m, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
        let _ = decode_envelope(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_messages(
        msg in msg_strategy(),
        flip_at in any::<prop::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let mut wire = encode(&msg);
        if wire.is_empty() {
            return Ok(());
        }
        let idx = flip_at.index(wire.len());
        wire[idx] = new_byte;
        let _ = decode(&wire); // must not panic; Err or a different Msg are both fine
    }

    #[test]
    fn encoding_is_deterministic(msg in msg_strategy()) {
        prop_assert_eq!(encode(&msg), encode(&msg));
    }

    #[test]
    fn versioned_store_encoding_round_trips_byte_stably(steps in store_strategy()) {
        let store = build_store(&steps);
        let bytes = encode_store(&store);
        let back = decode_store(&bytes).unwrap();
        prop_assert!(stores_equal(&store, &back), "content round-trip");
        // Byte stability: re-encoding the decoded store reproduces the
        // image exactly (the decoder rebuilt the structural deltas).
        prop_assert_eq!(encode_store(&back), bytes);
    }

    #[test]
    fn legacy_v1_store_bytes_still_decode(steps in store_strategy()) {
        let store = build_store(&steps);
        let v1 = encode_store_v1(&store);
        let back = decode_store(&v1).unwrap();
        prop_assert!(stores_equal(&store, &back), "v1 image decodes to equal content");
    }

    #[test]
    fn store_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_store(&bytes);
    }

    #[test]
    fn store_decoder_never_panics_on_mutated_valid_images(
        steps in store_strategy(),
        flip_at in any::<prop::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let mut bytes = encode_store(&build_store(&steps));
        let idx = flip_at.index(bytes.len());
        bytes[idx] = new_byte;
        let _ = decode_store(&bytes); // Err or a different store; no panic
    }

    #[test]
    fn store_decoder_never_panics_on_mutated_v1_images(
        steps in store_strategy(),
        flip_at in any::<prop::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let mut bytes = encode_store_v1(&build_store(&steps));
        let idx = flip_at.index(bytes.len());
        bytes[idx] = new_byte;
        let _ = decode_store(&bytes); // Err or a different store; no panic
    }

    // Every strict prefix of a valid image must fail to decode with a
    // `DecodeError` — the decoder may never panic on missing bytes, and
    // (because lengths are explicit and trailing bytes are rejected) may
    // never silently return a shorter-but-valid store either. This is
    // what the durable segment log leans on when a torn frame slips
    // past framing: the payload decoder itself detects the cut.
    #[test]
    fn prefix_truncation_of_v2_images_always_errors(
        steps in store_strategy(),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let bytes = encode_store(&build_store(&steps));
        let cut = cut_at.index(bytes.len()); // 0..len: a strict prefix
        prop_assert!(
            decode_store(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes must not decode",
            bytes.len()
        );
    }

    #[test]
    fn prefix_truncation_of_v1_images_always_errors(
        steps in store_strategy(),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let bytes = encode_store_v1(&build_store(&steps));
        let cut = cut_at.index(bytes.len());
        prop_assert!(
            decode_store(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes must not decode",
            bytes.len()
        );
    }
}
