//! Property tests for the wire codec: arbitrary messages round-trip, and
//! arbitrary byte soup never panics the decoder.

use hc3i_core::codec::{decode, decode_envelope, encode, encode_envelope};
use hc3i_core::{AppPayload, ClcReason, Ddv, LogId, Msg, Piggyback, SeqNum};
use netsim::NodeId;
use proptest::prelude::*;

fn ddv_strategy() -> impl Strategy<Value = Ddv> {
    prop::collection::vec(any::<u64>(), 1..8)
        .prop_map(|v| Ddv::from_entries(v.into_iter().map(SeqNum).collect()))
}

fn piggyback_strategy() -> impl Strategy<Value = Piggyback> {
    prop_oneof![
        any::<u64>().prop_map(|v| Piggyback::Sn(SeqNum(v))),
        ddv_strategy().prop_map(|d| Piggyback::Ddv(std::sync::Arc::new(d))),
    ]
}

fn payload_strategy() -> impl Strategy<Value = AppPayload> {
    (any::<u64>(), any::<u64>()).prop_map(|(bytes, tag)| AppPayload { bytes, tag })
}

fn reason_strategy() -> impl Strategy<Value = ClcReason> {
    prop_oneof![
        Just(ClcReason::Timer),
        (piggyback_strategy(), 0usize..16).prop_map(|(p, c)| ClcReason::Forced(p, c)),
    ]
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (reason_strategy(), any::<u64>())
            .prop_map(|(reason, epoch)| Msg::ClcInit { reason, epoch }),
        (any::<u64>(), any::<u64>()).prop_map(|(round, epoch)| Msg::ClcRequest { round, epoch }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(round, owner, epoch)| {
            Msg::FragmentReplica {
                round,
                owner,
                epoch,
            }
        }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(round, holder, epoch)| {
            Msg::FragmentStored {
                round,
                holder,
                epoch,
            }
        }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(round, rank, epoch)| Msg::ClcAck {
            round,
            rank,
            epoch
        }),
        (
            any::<u64>(),
            any::<u64>(),
            ddv_strategy(),
            any::<bool>(),
            any::<u64>()
        )
            .prop_map(|(round, sn, ddv, forced, epoch)| Msg::ClcCommit {
                round,
                sn: SeqNum(sn),
                ddv: std::sync::Arc::new(ddv),
                forced,
                epoch,
            }),
        (payload_strategy(), any::<u64>()).prop_map(|(payload, sn)| Msg::AppIntra {
            payload,
            sent_at_sn: SeqNum(sn),
        }),
        (
            payload_strategy(),
            piggyback_strategy(),
            any::<u64>(),
            any::<bool>(),
            any::<u64>()
        )
            .prop_map(
                |(payload, piggyback, id, resend, sender_epoch)| Msg::AppInter {
                    payload,
                    piggyback,
                    log_id: LogId(id),
                    resend,
                    sender_epoch,
                }
            ),
        (any::<u64>(), any::<u64>()).prop_map(|(id, sn)| Msg::InterAck {
            log_id: LogId(id),
            receiver_sn: SeqNum(sn),
        }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(sn, epoch, nc)| {
            Msg::RollbackOrder {
                restore_sn: SeqNum(sn),
                epoch,
                new_coordinator: nc,
            }
        }),
        (0usize..16, any::<u64>(), any::<u64>()).prop_map(|(origin, sn, e)| Msg::RollbackAlert {
            origin,
            sn: SeqNum(sn),
            origin_epoch: e,
        }),
        (0usize..16, any::<u64>(), any::<u64>()).prop_map(|(origin, sn, e)| Msg::AlertLocal {
            origin,
            sn: SeqNum(sn),
            origin_epoch: e,
        }),
        Just(Msg::GcCollect),
        (
            0usize..16,
            prop::collection::vec((any::<u64>(), ddv_strategy()), 0..6)
        )
            .prop_map(|(cluster, raw)| Msg::GcDdvList {
                cluster,
                list: raw.into_iter().map(|(sn, ddv)| (SeqNum(sn), ddv)).collect(),
            }),
        prop::collection::vec(any::<u64>(), 0..8).prop_map(|v| Msg::GcPrune {
            min_sns: v.into_iter().map(SeqNum).collect(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_message_round_trips(msg in msg_strategy()) {
        let wire = encode(&msg);
        prop_assert_eq!(decode(&wire).unwrap(), msg);
    }

    #[test]
    fn envelopes_round_trip(
        msg in msg_strategy(),
        fc in any::<u16>(), fr in any::<u32>(),
        tc in any::<u16>(), tr in any::<u32>(),
    ) {
        let from = NodeId::new(fc, fr);
        let to = NodeId::new(tc, tr);
        let wire = encode_envelope(from, to, &msg);
        let (f, t, m) = decode_envelope(&wire).unwrap();
        prop_assert_eq!(f, from);
        prop_assert_eq!(t, to);
        prop_assert_eq!(m, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
        let _ = decode_envelope(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_messages(
        msg in msg_strategy(),
        flip_at in any::<prop::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let mut wire = encode(&msg);
        if wire.is_empty() {
            return Ok(());
        }
        let idx = flip_at.index(wire.len());
        wire[idx] = new_byte;
        let _ = decode(&wire); // must not panic; Err or a different Msg are both fine
    }

    #[test]
    fn encoding_is_deterministic(msg in msg_strategy()) {
        prop_assert_eq!(encode(&msg), encode(&msg));
    }
}
