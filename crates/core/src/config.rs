//! Protocol configuration.

use netsim::NodeId;
use storage::ReplicationPolicy;

/// What inter-cluster application messages piggyback for dependency
/// tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PiggybackMode {
    /// The paper's protocol: piggyback the sender cluster's SN only.
    #[default]
    SnOnly,
    /// The paper's §7 extension: piggyback the whole DDV, adding
    /// transitivity to dependency tracking (fewer forced CLCs).
    FullDdv,
}

/// Wire-size model for protocol messages (drives the network cost
/// accounting; the protocol logic itself never reads these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSizes {
    /// Size of a bare control message (requests, acks, commits, alerts).
    pub control: u64,
    /// Size of an inter-cluster application-message acknowledgement.
    pub ack: u64,
    /// Size of one node's checkpoint fragment (replicated to neighbours at
    /// every CLC — the dominant storage/network cost of checkpointing).
    pub fragment: u64,
    /// Bytes added per DDV entry when a DDV travels on the wire.
    pub per_ddv_entry: u64,
}

impl Default for WireSizes {
    fn default() -> Self {
        WireSizes {
            control: 64,
            ack: 16,
            fragment: 4 << 20, // 4 MiB of process state per node
            per_ddv_entry: 8,
        }
    }
}

/// Static configuration shared by every node engine of a federation.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Nodes per cluster, indexed by cluster.
    pub cluster_sizes: Vec<u32>,
    /// SN-only (paper) or full-DDV (paper §7 extension) piggybacking.
    pub piggyback: PiggybackMode,
    /// In-cluster stable-storage replication policy.
    pub replication: ReplicationPolicy,
    /// Wire-size model.
    pub sizes: WireSizes,
    /// How many *simultaneous cluster failures* the garbage collector must
    /// preserve recovery lines for (paper §7 extension; the paper's
    /// protocol is `1`).
    pub gc_fault_tolerance: usize,
}

impl ProtocolConfig {
    /// Config for `cluster_sizes` with paper defaults everywhere else.
    pub fn new(cluster_sizes: Vec<u32>) -> Self {
        assert!(
            !cluster_sizes.is_empty(),
            "a federation needs at least one cluster"
        );
        assert!(
            cluster_sizes.iter().all(|&n| n > 0),
            "clusters cannot be empty"
        );
        ProtocolConfig {
            cluster_sizes,
            piggyback: PiggybackMode::default(),
            replication: ReplicationPolicy::paper_default(),
            sizes: WireSizes::default(),
            gc_fault_tolerance: 1,
        }
    }

    /// Switch the piggyback mode.
    pub fn with_piggyback(mut self, mode: PiggybackMode) -> Self {
        self.piggyback = mode;
        self
    }

    /// Switch the replication policy.
    pub fn with_replication(mut self, policy: ReplicationPolicy) -> Self {
        self.replication = policy;
        self
    }

    /// Override wire sizes.
    pub fn with_sizes(mut self, sizes: WireSizes) -> Self {
        self.sizes = sizes;
        self
    }

    /// Make the GC preserve recovery lines for up to `k` simultaneous
    /// cluster failures (paper §7 extension).
    pub fn with_gc_fault_tolerance(mut self, k: usize) -> Self {
        assert!(k >= 1, "must tolerate at least one failure");
        self.gc_fault_tolerance = k;
        self
    }

    /// Number of clusters in the federation.
    pub fn num_clusters(&self) -> usize {
        self.cluster_sizes.len()
    }

    /// Number of nodes in cluster `c`.
    pub fn nodes_in(&self, c: usize) -> u32 {
        self.cluster_sizes[c]
    }

    /// The default coordinator node of cluster `c` (rank 0). Recovery may
    /// move the coordinator role to another rank; this is only the initial
    /// assignment.
    pub fn initial_coordinator(&self, c: usize) -> NodeId {
        NodeId::new(c as u16, 0)
    }

    /// Wire size of a DDV of federation dimension.
    pub fn ddv_bytes(&self) -> u64 {
        self.sizes.per_ddv_entry * self.num_clusters() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ProtocolConfig::new(vec![100, 100]);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.nodes_in(1), 100);
        assert_eq!(c.piggyback, PiggybackMode::SnOnly);
        assert_eq!(c.replication.degree(), 1);
        assert_eq!(c.initial_coordinator(1), NodeId::new(1, 0));
        assert_eq!(c.ddv_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn rejects_empty_federation() {
        ProtocolConfig::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn rejects_empty_cluster() {
        ProtocolConfig::new(vec![4, 0]);
    }

    #[test]
    fn builders_compose() {
        let c = ProtocolConfig::new(vec![2])
            .with_piggyback(PiggybackMode::FullDdv)
            .with_replication(storage::ReplicationPolicy::with_degree(2))
            .with_sizes(WireSizes {
                control: 1,
                ack: 2,
                fragment: 3,
                per_ddv_entry: 4,
            });
        assert_eq!(c.piggyback, PiggybackMode::FullDdv);
        assert_eq!(c.replication.degree(), 2);
        assert_eq!(c.sizes.fragment, 3);
    }
}
