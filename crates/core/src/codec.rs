//! Binary wire codec for protocol messages.
//!
//! The threaded runtime moves [`Msg`] values through in-process channels,
//! but a real federation deployment crosses address spaces and machines.
//! This module provides a compact, hand-rolled, versioned binary encoding
//! for every protocol message — no external serialization framework, so
//! the wire format is fully specified here:
//!
//! * integers: unsigned LEB128 (varint);
//! * sequences: varint length prefix, then elements;
//! * messages: 1-byte format version, 1-byte discriminant, then fields in
//!   declaration order.
//!
//! Payload *content* is not part of the protocol (the engine only sees
//! sizes and tags), so [`AppPayload`] encodes as `(bytes, tag)`.

use crate::msg::{AppPayload, ClcReason, Msg, Piggyback};
use netsim::NodeId;
use std::sync::Arc;
use storage::{Ddv, LogId, SeqNum};

/// Wire-format version byte; bump on any incompatible change.
pub const WIRE_VERSION: u8 = 1;

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// Unknown format version.
    BadVersion(u8),
    /// Unknown message discriminant.
    BadTag(u8),
    /// A varint ran over its maximum width.
    VarintOverflow,
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
    /// Structurally well-formed input that violates a semantic invariant
    /// (duplicate delivery keys, non-monotone store entries, …).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            DecodeError::Invalid(what) => write!(f, "invalid content: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---- primitives -----------------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::VarintOverflow)
}

fn put_bool(buf: &mut Vec<u8>, b: bool) {
    buf.push(b as u8);
}

fn get_bool(buf: &[u8], pos: &mut usize) -> Result<bool, DecodeError> {
    let byte = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    Ok(byte != 0)
}

fn put_node(buf: &mut Vec<u8>, n: NodeId) {
    put_u64(buf, n.cluster.0 as u64);
    put_u64(buf, n.rank as u64);
}

fn get_node(buf: &[u8], pos: &mut usize) -> Result<NodeId, DecodeError> {
    let cluster = get_u64(buf, pos)? as u16;
    let rank = get_u64(buf, pos)? as u32;
    Ok(NodeId::new(cluster, rank))
}

fn put_ddv(buf: &mut Vec<u8>, ddv: &Ddv) {
    put_u64(buf, ddv.len() as u64);
    for e in ddv.iter() {
        put_u64(buf, e.0);
    }
}

fn get_ddv(buf: &[u8], pos: &mut usize) -> Result<Ddv, DecodeError> {
    let n = get_u64(buf, pos)? as usize;
    if n > 1 << 20 {
        return Err(DecodeError::VarintOverflow); // absurd federation size
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(SeqNum(get_u64(buf, pos)?));
    }
    Ok(Ddv::from_entries(entries))
}

fn put_payload(buf: &mut Vec<u8>, p: AppPayload) {
    put_u64(buf, p.bytes);
    put_u64(buf, p.tag);
}

fn get_payload(buf: &[u8], pos: &mut usize) -> Result<AppPayload, DecodeError> {
    Ok(AppPayload {
        bytes: get_u64(buf, pos)?,
        tag: get_u64(buf, pos)?,
    })
}

fn put_piggyback(buf: &mut Vec<u8>, p: &Piggyback) {
    match p {
        Piggyback::Sn(sn) => {
            buf.push(0);
            put_u64(buf, sn.0);
        }
        Piggyback::Ddv(ddv) => {
            buf.push(1);
            put_ddv(buf, ddv);
        }
    }
}

fn get_piggyback(buf: &[u8], pos: &mut usize) -> Result<Piggyback, DecodeError> {
    let tag = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    match tag {
        0 => Ok(Piggyback::Sn(SeqNum(get_u64(buf, pos)?))),
        1 => Ok(Piggyback::Ddv(Arc::new(get_ddv(buf, pos)?))),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn put_reason(buf: &mut Vec<u8>, r: &ClcReason) {
    match r {
        ClcReason::Timer => buf.push(0),
        ClcReason::Forced(p, cluster) => {
            buf.push(1);
            put_piggyback(buf, p);
            put_u64(buf, *cluster as u64);
        }
    }
}

fn get_reason(buf: &[u8], pos: &mut usize) -> Result<ClcReason, DecodeError> {
    let tag = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    match tag {
        0 => Ok(ClcReason::Timer),
        1 => {
            let p = get_piggyback(buf, pos)?;
            let cluster = get_u64(buf, pos)? as usize;
            Ok(ClcReason::Forced(p, cluster))
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

// ---- messages --------------------------------------------------------------

const T_CLC_INIT: u8 = 1;
const T_CLC_REQUEST: u8 = 2;
const T_FRAG_REPLICA: u8 = 3;
const T_FRAG_STORED: u8 = 4;
const T_CLC_ACK: u8 = 5;
const T_CLC_COMMIT: u8 = 6;
const T_APP_INTRA: u8 = 7;
const T_APP_INTER: u8 = 8;
const T_INTER_ACK: u8 = 9;
const T_ROLLBACK_ORDER: u8 = 10;
const T_ROLLBACK_ALERT: u8 = 11;
const T_ALERT_LOCAL: u8 = 12;
const T_GC_COLLECT: u8 = 13;
const T_GC_DDV_LIST: u8 = 14;
const T_GC_PRUNE: u8 = 15;
const T_RELIABLE: u8 = 16;
const T_XPORT_ACK: u8 = 17;

/// Encode a message into a fresh buffer.
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.push(WIRE_VERSION);
    match msg {
        Msg::ClcInit { reason, epoch } => {
            buf.push(T_CLC_INIT);
            put_reason(&mut buf, reason);
            put_u64(&mut buf, *epoch);
        }
        Msg::ClcRequest { round, epoch } => {
            buf.push(T_CLC_REQUEST);
            put_u64(&mut buf, *round);
            put_u64(&mut buf, *epoch);
        }
        Msg::FragmentReplica {
            round,
            owner,
            epoch,
        } => {
            buf.push(T_FRAG_REPLICA);
            put_u64(&mut buf, *round);
            put_u64(&mut buf, *owner as u64);
            put_u64(&mut buf, *epoch);
        }
        Msg::FragmentStored {
            round,
            holder,
            epoch,
        } => {
            buf.push(T_FRAG_STORED);
            put_u64(&mut buf, *round);
            put_u64(&mut buf, *holder as u64);
            put_u64(&mut buf, *epoch);
        }
        Msg::ClcAck { round, rank, epoch } => {
            buf.push(T_CLC_ACK);
            put_u64(&mut buf, *round);
            put_u64(&mut buf, *rank as u64);
            put_u64(&mut buf, *epoch);
        }
        Msg::ClcCommit {
            round,
            sn,
            ddv,
            forced,
            epoch,
        } => {
            buf.push(T_CLC_COMMIT);
            put_u64(&mut buf, *round);
            put_u64(&mut buf, sn.0);
            put_ddv(&mut buf, ddv);
            put_bool(&mut buf, *forced);
            put_u64(&mut buf, *epoch);
        }
        Msg::AppIntra {
            payload,
            sent_at_sn,
        } => {
            buf.push(T_APP_INTRA);
            put_payload(&mut buf, *payload);
            put_u64(&mut buf, sent_at_sn.0);
        }
        Msg::AppInter {
            payload,
            piggyback,
            log_id,
            resend,
            sender_epoch,
        } => {
            buf.push(T_APP_INTER);
            put_payload(&mut buf, *payload);
            put_piggyback(&mut buf, piggyback);
            put_u64(&mut buf, log_id.0);
            put_bool(&mut buf, *resend);
            put_u64(&mut buf, *sender_epoch);
        }
        Msg::InterAck {
            log_id,
            receiver_sn,
        } => {
            buf.push(T_INTER_ACK);
            put_u64(&mut buf, log_id.0);
            put_u64(&mut buf, receiver_sn.0);
        }
        Msg::RollbackOrder {
            restore_sn,
            epoch,
            new_coordinator,
        } => {
            buf.push(T_ROLLBACK_ORDER);
            put_u64(&mut buf, restore_sn.0);
            put_u64(&mut buf, *epoch);
            put_u64(&mut buf, *new_coordinator as u64);
        }
        Msg::RollbackAlert {
            origin,
            sn,
            origin_epoch,
        } => {
            buf.push(T_ROLLBACK_ALERT);
            put_u64(&mut buf, *origin as u64);
            put_u64(&mut buf, sn.0);
            put_u64(&mut buf, *origin_epoch);
        }
        Msg::AlertLocal {
            origin,
            sn,
            origin_epoch,
        } => {
            buf.push(T_ALERT_LOCAL);
            put_u64(&mut buf, *origin as u64);
            put_u64(&mut buf, sn.0);
            put_u64(&mut buf, *origin_epoch);
        }
        Msg::GcCollect => buf.push(T_GC_COLLECT),
        Msg::GcDdvList { cluster, list } => {
            buf.push(T_GC_DDV_LIST);
            put_u64(&mut buf, *cluster as u64);
            put_u64(&mut buf, list.len() as u64);
            for (sn, ddv) in list {
                put_u64(&mut buf, sn.0);
                put_ddv(&mut buf, ddv);
            }
        }
        Msg::GcPrune { min_sns } => {
            buf.push(T_GC_PRUNE);
            put_u64(&mut buf, min_sns.len() as u64);
            for sn in min_sns {
                put_u64(&mut buf, sn.0);
            }
        }
        Msg::Reliable { seq, inner } => {
            debug_assert!(
                !matches!(**inner, Msg::Reliable { .. }),
                "transport envelopes never nest"
            );
            buf.push(T_RELIABLE);
            put_u64(&mut buf, *seq);
            let body = encode(inner);
            put_u64(&mut buf, body.len() as u64);
            buf.extend_from_slice(&body);
        }
        Msg::XportAck { seq } => {
            buf.push(T_XPORT_ACK);
            put_u64(&mut buf, *seq);
        }
    }
    buf
}

/// Decode one message; the whole input must be consumed.
pub fn decode(buf: &[u8]) -> Result<Msg, DecodeError> {
    let mut pos = 0usize;
    let version = *buf.get(pos).ok_or(DecodeError::Truncated)?;
    pos += 1;
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let tag = *buf.get(pos).ok_or(DecodeError::Truncated)?;
    pos += 1;
    let msg = match tag {
        T_CLC_INIT => Msg::ClcInit {
            reason: get_reason(buf, &mut pos)?,
            epoch: get_u64(buf, &mut pos)?,
        },
        T_CLC_REQUEST => Msg::ClcRequest {
            round: get_u64(buf, &mut pos)?,
            epoch: get_u64(buf, &mut pos)?,
        },
        T_FRAG_REPLICA => Msg::FragmentReplica {
            round: get_u64(buf, &mut pos)?,
            owner: get_u64(buf, &mut pos)? as u32,
            epoch: get_u64(buf, &mut pos)?,
        },
        T_FRAG_STORED => Msg::FragmentStored {
            round: get_u64(buf, &mut pos)?,
            holder: get_u64(buf, &mut pos)? as u32,
            epoch: get_u64(buf, &mut pos)?,
        },
        T_CLC_ACK => Msg::ClcAck {
            round: get_u64(buf, &mut pos)?,
            rank: get_u64(buf, &mut pos)? as u32,
            epoch: get_u64(buf, &mut pos)?,
        },
        T_CLC_COMMIT => Msg::ClcCommit {
            round: get_u64(buf, &mut pos)?,
            sn: SeqNum(get_u64(buf, &mut pos)?),
            ddv: Arc::new(get_ddv(buf, &mut pos)?),
            forced: get_bool(buf, &mut pos)?,
            epoch: get_u64(buf, &mut pos)?,
        },
        T_APP_INTRA => Msg::AppIntra {
            payload: get_payload(buf, &mut pos)?,
            sent_at_sn: SeqNum(get_u64(buf, &mut pos)?),
        },
        T_APP_INTER => Msg::AppInter {
            payload: get_payload(buf, &mut pos)?,
            piggyback: get_piggyback(buf, &mut pos)?,
            log_id: LogId(get_u64(buf, &mut pos)?),
            resend: get_bool(buf, &mut pos)?,
            sender_epoch: get_u64(buf, &mut pos)?,
        },
        T_INTER_ACK => Msg::InterAck {
            log_id: LogId(get_u64(buf, &mut pos)?),
            receiver_sn: SeqNum(get_u64(buf, &mut pos)?),
        },
        T_ROLLBACK_ORDER => Msg::RollbackOrder {
            restore_sn: SeqNum(get_u64(buf, &mut pos)?),
            epoch: get_u64(buf, &mut pos)?,
            new_coordinator: get_u64(buf, &mut pos)? as u32,
        },
        T_ROLLBACK_ALERT => Msg::RollbackAlert {
            origin: get_u64(buf, &mut pos)? as usize,
            sn: SeqNum(get_u64(buf, &mut pos)?),
            origin_epoch: get_u64(buf, &mut pos)?,
        },
        T_ALERT_LOCAL => Msg::AlertLocal {
            origin: get_u64(buf, &mut pos)? as usize,
            sn: SeqNum(get_u64(buf, &mut pos)?),
            origin_epoch: get_u64(buf, &mut pos)?,
        },
        T_GC_COLLECT => Msg::GcCollect,
        T_GC_DDV_LIST => {
            let cluster = get_u64(buf, &mut pos)? as usize;
            let n = get_u64(buf, &mut pos)? as usize;
            if n > 1 << 24 {
                return Err(DecodeError::VarintOverflow);
            }
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                let sn = SeqNum(get_u64(buf, &mut pos)?);
                let ddv = get_ddv(buf, &mut pos)?;
                list.push((sn, Arc::new(ddv)));
            }
            Msg::GcDdvList { cluster, list }
        }
        T_GC_PRUNE => {
            let n = get_u64(buf, &mut pos)? as usize;
            if n > 1 << 20 {
                return Err(DecodeError::VarintOverflow);
            }
            let mut min_sns = Vec::with_capacity(n);
            for _ in 0..n {
                min_sns.push(SeqNum(get_u64(buf, &mut pos)?));
            }
            Msg::GcPrune { min_sns }
        }
        T_RELIABLE => {
            let seq = get_u64(buf, &mut pos)?;
            let len = get_u64(buf, &mut pos)? as usize;
            let body = buf.get(pos..pos + len).ok_or(DecodeError::Truncated)?;
            pos += len;
            let inner = decode(body)?;
            // The transport never nests envelopes; rejecting nesting also
            // bounds decode recursion to one level on adversarial input.
            if matches!(inner, Msg::Reliable { .. }) {
                return Err(DecodeError::Invalid("nested reliable envelope"));
            }
            Msg::Reliable {
                seq,
                inner: Box::new(inner),
            }
        }
        T_XPORT_ACK => Msg::XportAck {
            seq: get_u64(buf, &mut pos)?,
        },
        t => return Err(DecodeError::BadTag(t)),
    };
    if pos != buf.len() {
        return Err(DecodeError::TrailingBytes(buf.len() - pos));
    }
    Ok(msg)
}

/// Encode a routed envelope `(from, to, msg)` — the unit a transport
/// actually ships.
pub fn encode_envelope(from: NodeId, to: NodeId, msg: &Msg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(40);
    buf.push(WIRE_VERSION);
    put_node(&mut buf, from);
    put_node(&mut buf, to);
    let body = encode(msg);
    put_u64(&mut buf, body.len() as u64);
    buf.extend_from_slice(&body);
    buf
}

/// Decode a routed envelope.
pub fn decode_envelope(buf: &[u8]) -> Result<(NodeId, NodeId, Msg), DecodeError> {
    let mut pos = 0usize;
    let version = *buf.get(pos).ok_or(DecodeError::Truncated)?;
    pos += 1;
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let from = get_node(buf, &mut pos)?;
    let to = get_node(buf, &mut pos)?;
    let len = get_u64(buf, &mut pos)? as usize;
    let body = buf.get(pos..pos + len).ok_or(DecodeError::Truncated)?;
    if pos + len != buf.len() {
        return Err(DecodeError::TrailingBytes(buf.len() - pos - len));
    }
    let msg = decode(body)?;
    Ok((from, to, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        let ddv = Ddv::from_entries(vec![SeqNum(1), SeqNum(0), SeqNum(300)]);
        vec![
            Msg::ClcInit {
                reason: ClcReason::Timer,
                epoch: 0,
            },
            Msg::ClcInit {
                reason: ClcReason::Forced(Piggyback::Sn(SeqNum(5)), 2),
                epoch: 3,
            },
            Msg::ClcInit {
                reason: ClcReason::Forced(Piggyback::Ddv(Arc::new(ddv.clone())), 1),
                epoch: u64::MAX,
            },
            Msg::ClcRequest { round: 9, epoch: 1 },
            Msg::FragmentReplica {
                round: 9,
                owner: 4,
                epoch: 1,
            },
            Msg::FragmentStored {
                round: 9,
                holder: 5,
                epoch: 1,
            },
            Msg::ClcAck {
                round: 1 << 40,
                rank: u32::MAX,
                epoch: 2,
            },
            Msg::ClcCommit {
                round: 10,
                sn: SeqNum(11),
                ddv: Arc::new(ddv.clone()),
                forced: true,
                epoch: 0,
            },
            Msg::AppIntra {
                payload: AppPayload {
                    bytes: 4096,
                    tag: 77,
                },
                sent_at_sn: SeqNum(3),
            },
            Msg::AppInter {
                payload: AppPayload { bytes: 1, tag: 0 },
                piggyback: Piggyback::Ddv(Arc::new(ddv.clone())),
                log_id: LogId(128),
                resend: true,
                sender_epoch: 6,
            },
            Msg::InterAck {
                log_id: LogId(0),
                receiver_sn: SeqNum(2),
            },
            Msg::RollbackOrder {
                restore_sn: SeqNum(4),
                epoch: 7,
                new_coordinator: 0,
            },
            Msg::RollbackAlert {
                origin: 2,
                sn: SeqNum(9),
                origin_epoch: 1,
            },
            Msg::AlertLocal {
                origin: 0,
                sn: SeqNum(1),
                origin_epoch: 1,
            },
            Msg::GcCollect,
            Msg::GcDdvList {
                cluster: 1,
                list: vec![
                    (SeqNum(1), Arc::new(ddv.clone())),
                    (SeqNum(2), Arc::new(Ddv::zeros(3))),
                ],
            },
            Msg::GcPrune {
                min_sns: vec![SeqNum(3), SeqNum(1), SeqNum(0)],
            },
            Msg::Reliable {
                seq: 1 << 50,
                inner: Box::new(Msg::AppInter {
                    payload: AppPayload { bytes: 9, tag: 4 },
                    piggyback: Piggyback::Sn(SeqNum(2)),
                    log_id: LogId(3),
                    resend: false,
                    sender_epoch: 0,
                }),
            },
            Msg::Reliable {
                seq: 0,
                inner: Box::new(Msg::GcCollect),
            },
            Msg::XportAck { seq: 12345 },
        ]
    }

    #[test]
    fn round_trips_every_variant() {
        for msg in samples() {
            let wire = encode(&msg);
            let back = decode(&wire).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn envelopes_round_trip() {
        let from = NodeId::new(2, 31);
        let to = NodeId::new(0, 0);
        for msg in samples() {
            let wire = encode_envelope(from, to, &msg);
            let (f, t, m) = decode_envelope(&wire).unwrap();
            assert_eq!((f, t), (from, to));
            assert_eq!(m, msg);
        }
    }

    #[test]
    fn varints_are_compact() {
        let small = encode(&Msg::GcCollect);
        assert_eq!(small.len(), 2, "version + tag only");
        let ack = encode(&Msg::InterAck {
            log_id: LogId(5),
            receiver_sn: SeqNum(3),
        });
        assert_eq!(ack.len(), 4);
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        for msg in samples() {
            let wire = encode(&msg);
            for cut in 0..wire.len() {
                let r = decode(&wire[..cut]);
                assert!(
                    r.is_err(),
                    "truncated at {cut}/{} decoded to {r:?} for {msg:?}",
                    wire.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = encode(&Msg::GcCollect);
        wire.push(0);
        assert_eq!(decode(&wire), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut wire = encode(&Msg::GcCollect);
        wire[0] = 99;
        assert_eq!(decode(&wire), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn nested_reliable_envelope_rejected() {
        // Hand-build the nesting the encoder forbids: Reliable{Reliable{..}}.
        let inner = encode(&Msg::Reliable {
            seq: 1,
            inner: Box::new(Msg::GcCollect),
        });
        let mut wire = vec![WIRE_VERSION, T_RELIABLE];
        put_u64(&mut wire, 2);
        put_u64(&mut wire, inner.len() as u64);
        wire.extend_from_slice(&inner);
        assert_eq!(
            decode(&wire),
            Err(DecodeError::Invalid("nested reliable envelope"))
        );
    }

    #[test]
    fn bad_tag_rejected() {
        let wire = vec![WIRE_VERSION, 200];
        assert_eq!(decode(&wire), Err(DecodeError::BadTag(200)));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), Err(DecodeError::VarintOverflow));
    }
}
