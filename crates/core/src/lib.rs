//! # hc3i-core — the HC3I checkpointing protocol
//!
//! Implementation of the paper's contribution: a **H**ierarchical protocol
//! **C**ombining **C**oordinated and **C**ommunication-**I**nduced
//! checkpointing for parallel applications in cluster federations
//! (Monnet, Morin, Badrinath — FTPDS/IPDPS 2004).
//!
//! * Inside a cluster: coordinated checkpointing via a two-phase commit
//!   with frozen application messages and neighbour-replicated stable
//!   storage (§3.1).
//! * Between clusters: communication-induced checkpointing driven by
//!   piggybacked sequence numbers and per-cluster Direct Dependency
//!   Vectors; receivers force a CLC before delivering a message that
//!   carries a newer dependency (§3.2).
//! * Sender-side optimistic message logging limits how many clusters roll
//!   back (§3.3); rollback alerts cascade until the recovery line is
//!   reached (§3.4); a centralized garbage collector prunes CLCs and logs
//!   no failure could ever need (§3.5).
//!
//! The protocol is packaged as a per-node state machine ([`NodeEngine`]):
//! feed it [`Input`]s, perform the [`Output`]s it emits into a caller-owned
//! reusable sink ([`OutputBuf`]). Both the discrete-event simulator
//! (`simdriver`) and the hand-rolled threaded messaging runtime (`runtime`)
//! drive this same type through the same sink API, so simulation results
//! and live-runtime behaviour come from identical protocol code — and the
//! engine allocates nothing per input on the hot path (DDV stamps on
//! outgoing messages and cluster-wide commit broadcasts are `Arc`-shared,
//! not deep-cloned).
//!
//! **Determinism contract:** the engine is deterministic — identical input
//! sequences produce identical outputs, which is what makes whole-
//! federation runs a pure function of their configuration and seed (same
//! seed ⇒ bit-identical reports).
//!
//! **Copy-on-write checkpoint contract:** the checkpoint/GC data plane
//! shares state structurally instead of duplicating it, without changing
//! anything observable. Staging a CLC seals the per-node delivery record
//! ([`DeliveredRecord`]) in O(new deliveries) — the sealed generations
//! are `Arc`-shared between the live record and every stored checkpoint;
//! stored `(SN, DDV)` stamps are `Arc`-shared across the store, the GC's
//! collected lists ([`Msg::GcDdvList`]) and the recovery analyses, while
//! the wire codec still serializes them by value; and a freeze emits one
//! batched [`Output::SendFragments`] that hosts expand into the exact
//! per-holder `FragmentReplica` messages (same order, same wire bytes)
//! the unbatched fan-out sent. Content equality, persisted images and
//! report fingerprints — including per-cluster byte counters — are
//! independent of the sharing; only allocations and wall time change.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod config;
pub mod gc;
pub mod io;
pub mod msg;
pub mod node;
pub mod persist;
pub mod recovery;
pub mod testkit;
pub mod xport;

pub use checkpoint::{DeliveredKey, DeliveredRecord, NodeCheckpoint};
pub use config::{PiggybackMode, ProtocolConfig, WireSizes};
pub use io::{Input, Output, OutputBuf};
pub use msg::{AppPayload, ClcReason, Msg, Piggyback};
pub use node::NodeEngine;
pub use persist::CheckpointCodec;
pub use recovery::{is_consistent_cut, recovery_line, recovery_line_multi, RecoveryLine};
pub use xport::{ReceiverChannel, SenderChannel, XportConfig};

// Re-export the storage vocabulary used throughout the public API.
pub use storage::{ClcMeta, Ddv, LogId, ReplicationPolicy, SeqNum};
