//! Centralized garbage collection (paper §3.5).
//!
//! The initiator gathers every cluster's list of stored `(SN, DDV)` pairs,
//! "simulates a failure in each cluster and keeps the smallest SN to which
//! the clusters of the federation might rollback", then distributes the
//! per-cluster minimum SNs; each node drops CLCs below its cluster's
//! minimum and logged messages acked below the receiver's minimum.

use crate::recovery::{recovery_line, recovery_line_multi, ClcList};
use storage::SeqNum;

/// For each cluster, the smallest SN any single-cluster failure could force
/// it to restore. CLCs strictly below this SN can never be needed.
pub fn safe_minimum_sns(lists: &[ClcList]) -> Vec<SeqNum> {
    safe_minimum_sns_k(lists, 1)
}

/// Like [`safe_minimum_sns`], but tolerating up to `k` **simultaneous**
/// cluster failures (the paper's §7 extension: "the garbage collector
/// should take care of this"). Considers every non-empty failure set of
/// size at most `k` and keeps the deepest line any of them forces.
///
/// # Panics
/// If `k == 0` (a GC that tolerates no failures could prune everything).
pub fn safe_minimum_sns_k(lists: &[ClcList], k: usize) -> Vec<SeqNum> {
    assert!(k >= 1, "must tolerate at least one failure");
    let n = lists.len();
    let k = k.min(n);
    let mut mins: Vec<SeqNum> = lists
        .iter()
        .map(|l| l.last().expect("cluster with no CLC").0)
        .collect();
    // Size-1 sets (the common case) use the single-failure line directly.
    for faulty in 0..n {
        let line = recovery_line(lists, faulty);
        for (m, &sn) in mins.iter_mut().zip(&line.sns) {
            *m = (*m).min(sn);
        }
    }
    // Larger sets: enumerate combinations up to size k.
    let mut set: Vec<usize> = Vec::with_capacity(k);
    fn walk(
        lists: &[ClcList],
        mins: &mut [SeqNum],
        set: &mut Vec<usize>,
        start: usize,
        remaining: usize,
    ) {
        if set.len() >= 2 {
            let line = recovery_line_multi(lists, set);
            for (m, &sn) in mins.iter_mut().zip(&line.sns) {
                *m = (*m).min(sn);
            }
        }
        if remaining == 0 {
            return;
        }
        for c in start..lists.len() {
            set.push(c);
            walk(lists, mins, set, c + 1, remaining - 1);
            set.pop();
        }
    }
    if k >= 2 {
        walk(lists, &mut mins, &mut set, 0, k);
    }
    mins
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::Ddv;

    fn ddv(entries: &[u64]) -> std::sync::Arc<Ddv> {
        std::sync::Arc::new(Ddv::from_entries(
            entries.iter().map(|&e| SeqNum(e)).collect(),
        ))
    }

    #[test]
    fn independent_clusters_keep_only_latest() {
        let lists = vec![
            vec![
                (SeqNum(1), ddv(&[1, 0])),
                (SeqNum(2), ddv(&[2, 0])),
                (SeqNum(3), ddv(&[3, 0])),
            ],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[0, 2]))],
        ];
        // No cross dependencies: any failure rolls back only the faulty
        // cluster, to its latest. Everything older is dead weight.
        assert_eq!(safe_minimum_sns(&lists), vec![SeqNum(3), SeqNum(2)]);
    }

    #[test]
    fn dependencies_hold_older_clcs_alive() {
        // Cluster 1's CLC 2 records the dependency on cluster 0's SN-3
        // suffix (DDV[0]=3). A failure of cluster 0 restores SN 3 and
        // loses that suffix — cluster 1 falls back to CLC 2 itself: the
        // forced CLC that *recorded* the dependency predates every
        // delivery from the lost suffix, so it is the safe restore point.
        let lists = vec![
            vec![
                (SeqNum(1), ddv(&[1, 0])),
                (SeqNum(2), ddv(&[2, 0])),
                (SeqNum(3), ddv(&[3, 0])),
            ],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[3, 2]))],
        ];
        assert_eq!(safe_minimum_sns(&lists), vec![SeqNum(3), SeqNum(2)]);

        // Symmetric case: cluster 0's CLC 3 records cluster 1's SN-2
        // suffix. A failure of cluster 1 (restores SN 2) sends cluster 0
        // back to CLC 3 — again the recording CLC, not its predecessor.
        let lists = vec![
            vec![
                (SeqNum(1), ddv(&[1, 0])),
                (SeqNum(2), ddv(&[2, 0])),
                (SeqNum(3), ddv(&[3, 2])),
            ],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[0, 2]))],
        ];
        assert_eq!(safe_minimum_sns(&lists), vec![SeqNum(3), SeqNum(2)]);
    }

    #[test]
    fn gc_result_is_safe_for_every_failure() {
        // Ping-pong dependency history (the paper's worst case: heavy
        // two-way traffic). Whatever the minima are, pruning below them
        // must leave every single-failure recovery line intact, and the
        // lines must be consistent cuts.
        let mut c0 = vec![(SeqNum(1), ddv(&[1, 0]))];
        let mut c1 = vec![(SeqNum(1), ddv(&[0, 1]))];
        for k in 2..=10u64 {
            c0.push((SeqNum(k), ddv(&[k, k - 1])));
            c1.push((SeqNum(k), ddv(&[k, k])));
        }
        let lists = vec![c0, c1];
        let mins = safe_minimum_sns(&lists);
        for faulty in 0..2 {
            let line = recovery_line(&lists, faulty);
            assert!(crate::recovery::is_consistent_cut(
                &lists,
                &line.sns,
                &line.rolled_back
            ));
            for (sn, min) in line.sns.iter().zip(&mins) {
                assert!(sn >= min, "GC would prune a CLC failure {faulty} needs");
            }
        }
    }

    #[test]
    fn sparse_cross_traffic_keeps_few_clcs() {
        // The paper's Tables 2–3 shape: with one-directional, sparse
        // cross-cluster traffic the minima land at the tail, so after a GC
        // only a couple of CLCs remain.
        let c0 = vec![
            (SeqNum(1), ddv(&[1, 0])),
            (SeqNum(2), ddv(&[2, 0])),
            (SeqNum(3), ddv(&[3, 0])),
            (SeqNum(4), ddv(&[4, 0])),
        ];
        // Cluster 1 heard from cluster 0 once, long ago (SN 1).
        let c1 = vec![
            (SeqNum(1), ddv(&[0, 1])),
            (SeqNum(2), ddv(&[1, 2])),
            (SeqNum(3), ddv(&[1, 3])),
        ];
        let lists = vec![c0.clone(), c1.clone()];
        let mins = safe_minimum_sns(&lists);
        let keep0 = c0.iter().filter(|(sn, _)| *sn >= mins[0]).count();
        let keep1 = c1.iter().filter(|(sn, _)| *sn >= mins[1]).count();
        assert!(keep0 <= 2, "cluster 0 keeps {keep0}");
        assert!(keep1 <= 2, "cluster 1 keeps {keep1}");
    }

    #[test]
    fn mins_never_exceed_latest() {
        let lists = vec![
            vec![(SeqNum(1), ddv(&[1, 0])), (SeqNum(4), ddv(&[4, 2]))],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[1, 2]))],
        ];
        let mins = safe_minimum_sns(&lists);
        assert!(mins[0] <= SeqNum(4));
        assert!(mins[1] <= SeqNum(2));
    }

    #[test]
    fn simultaneous_faults_can_need_deeper_lines() {
        // Clusters 0 and 1 each depend on the other's newest execution
        // through a third cluster's relay, such that single failures stop
        // early but a double failure cascades one step deeper.
        //
        // c0's CLC2 depends on c1@1; c1's CLC2 depends on c0@1.
        let lists = vec![
            vec![(SeqNum(1), ddv(&[1, 0])), (SeqNum(2), ddv(&[2, 1]))],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[1, 2]))],
        ];
        // Single failure of 0: restores SN 2; c1's oldest CLC with
        // DDV[0] >= 2: none (max is 1) -> line [2, 2].
        let single = safe_minimum_sns(&lists);
        assert_eq!(single, vec![SeqNum(2), SeqNum(2)]);
        // Double failure: both restore SN 2; both alerts (sn 2) find no
        // offending entries (deps are at 1 < 2) -> same line here…
        let double = safe_minimum_sns_k(&lists, 2);
        assert!(double[0] <= single[0] && double[1] <= single[1]);

        // …but shift the dependency to the newest SN and the double
        // failure bites where singles do not even run both cascades:
        let lists = vec![
            vec![(SeqNum(1), ddv(&[1, 0])), (SeqNum(2), ddv(&[2, 2]))],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[2, 2]))],
        ];
        let double = safe_minimum_sns_k(&lists, 2);
        for (d, s_) in double.iter().zip(&safe_minimum_sns(&lists)) {
            assert!(d <= s_);
        }
    }

    #[test]
    #[should_panic(expected = "at least one failure")]
    fn k_zero_rejected() {
        let lists = vec![vec![(SeqNum(1), ddv(&[1]))]];
        safe_minimum_sns_k(&lists, 0);
    }

    #[test]
    fn k_larger_than_clusters_is_clamped() {
        let lists = vec![
            vec![(SeqNum(1), ddv(&[1, 0])), (SeqNum(3), ddv(&[3, 0]))],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[0, 2]))],
        ];
        let a = safe_minimum_sns_k(&lists, 2);
        let b = safe_minimum_sns_k(&lists, 99);
        assert_eq!(a, b);
    }
}
