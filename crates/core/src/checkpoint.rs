//! Per-node checkpoint content.

use crate::msg::AppPayload;
use netsim::{FastHashMap as HashMap, NodeId};
use std::sync::Arc;
use storage::SeqNum;

/// Key of one inter-cluster delivery: `(sender node, sender log id)`.
pub type DeliveredKey = (NodeId, u64);

/// Generations deeper than this are flattened at the next seal, bounding
/// the lookup chain walk. The value trades the duplicate-check miss cost
/// (every inter-cluster receive probes up to `depth + 1` maps) against
/// the amortized flatten: each entry is copied at most once per
/// `COLLAPSE_DEPTH` CLCs, still a `COLLAPSE_DEPTH`-fold reduction in copy
/// volume over the eager clone-per-CLC representation this replaced.
const COLLAPSE_DEPTH: usize = 8;

/// One sealed, immutable generation of delivery records.
///
/// A generation owns the entries recorded between two consecutive CLCs and
/// links to the generation sealed at the previous CLC. Chains are shared
/// (`Arc`) between the live engine record and every stored checkpoint, so
/// sealing a checkpoint never copies what older checkpoints already hold.
#[derive(Debug)]
struct DeliveredGen {
    parent: Option<Arc<DeliveredGen>>,
    entries: HashMap<DeliveredKey, SeqNum>,
    /// Cumulative entry count including all parents (keys are recorded at
    /// most once across a chain, so the sum is exact).
    len: usize,
    /// Chain length including this generation.
    depth: usize,
}

/// The inter-cluster delivery record: `(sender, log id) -> SN at delivery`.
///
/// Copy-on-write and generational: an immutable, `Arc`-shared **base**
/// (the chain of generations sealed at past CLCs) plus a small mutable
/// **delta** holding only the deliveries since the last seal. The protocol
/// operations map onto it directly:
///
/// * delivering a message inserts into the delta — O(1);
/// * `freeze_and_stage` calls [`DeliveredRecord::seal`], which moves the
///   delta into a new shared generation — O(1) moves, no per-entry copy,
///   where the eager representation cloned the whole map at every CLC;
/// * a rollback restores the stored checkpoint's record by cloning it —
///   an `Arc` bump, not a rebuild.
///
/// Lookups check the delta, then walk the generation chain; chains are
/// flattened once they exceed an internal depth bound, so lookups stay
/// O(1) amortized. Content equality and the persisted encoding are
/// independent of the generation structure (two records with the same
/// entries are equal however they were sealed).
#[derive(Debug, Clone, Default)]
pub struct DeliveredRecord {
    base: Option<Arc<DeliveredGen>>,
    delta: HashMap<DeliveredKey, SeqNum>,
}

impl DeliveredRecord {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a record holding exactly `entries` (one flat generation).
    /// Keys must be distinct.
    pub fn from_entries(entries: impl IntoIterator<Item = (DeliveredKey, SeqNum)>) -> Self {
        let mut rec = DeliveredRecord::new();
        for (k, sn) in entries {
            rec.insert(k, sn);
        }
        rec
    }

    /// The delivery SN recorded for `key`, if any.
    pub fn get(&self, key: &DeliveredKey) -> Option<SeqNum> {
        if let Some(sn) = self.delta.get(key) {
            return Some(*sn);
        }
        let mut gen = self.base.as_deref();
        while let Some(g) = gen {
            if let Some(sn) = g.entries.get(key) {
                return Some(*sn);
            }
            gen = g.parent.as_deref();
        }
        None
    }

    /// Record a delivery. The key must not be present yet (the engine only
    /// records a delivery after the duplicate check).
    pub fn insert(&mut self, key: DeliveredKey, sn: SeqNum) {
        debug_assert!(self.get(&key).is_none(), "delivery recorded twice");
        self.delta.insert(key, sn);
    }

    /// Number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.delta.len() + self.base.as_ref().map_or(0, |g| g.len)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seal the current content into the shared immutable base and return
    /// a snapshot of it (what a staged checkpoint stores). O(delta): the
    /// delta map is *moved* into a new generation; nothing already sealed
    /// is copied. Afterwards the live record continues on an empty delta
    /// over the new base.
    pub fn seal(&mut self) -> DeliveredRecord {
        if !self.delta.is_empty() {
            let parent = self.base.take();
            let (plen, pdepth) = parent.as_ref().map_or((0, 0), |g| (g.len, g.depth));
            let entries = std::mem::take(&mut self.delta);
            self.base = Some(Arc::new(DeliveredGen {
                len: plen + entries.len(),
                depth: pdepth + 1,
                parent,
                entries,
            }));
        }
        if self.base.as_ref().is_some_and(|g| g.depth > COLLAPSE_DEPTH) {
            self.collapse();
        }
        DeliveredRecord {
            base: self.base.clone(),
            delta: HashMap::default(),
        }
    }

    /// Flatten the generation chain into a single generation (bounds the
    /// lookup walk; sharing with already-stored checkpoints is unaffected —
    /// they keep their own chains).
    fn collapse(&mut self) {
        let mut entries: HashMap<DeliveredKey, SeqNum> =
            HashMap::with_capacity_and_hasher(self.len(), Default::default());
        let mut gen = self.base.as_deref();
        while let Some(g) = gen {
            for (k, sn) in &g.entries {
                entries.insert(*k, *sn);
            }
            gen = g.parent.as_deref();
        }
        let len = entries.len();
        self.base = Some(Arc::new(DeliveredGen {
            parent: None,
            entries,
            len,
            depth: 1,
        }));
    }

    /// Every recorded delivery, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (DeliveredKey, SeqNum)> + '_ {
        DeliveredIter {
            delta: self.delta.iter(),
            gen: self.base.as_deref(),
            gen_iter: None,
        }
    }

    /// Every recorded delivery, sorted by key (the canonical order used by
    /// the persisted encoding and anything else that must be
    /// representation-independent).
    pub fn sorted_entries(&self) -> Vec<(DeliveredKey, SeqNum)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// The entries of `self` that are **not** part of `ancestor`'s sealed
    /// content, when `self` structurally extends `ancestor` (i.e.
    /// `ancestor` is a sealed snapshot whose base appears in `self`'s
    /// generation chain). Returns `None` when the records do not share
    /// structure that way — callers then fall back to a full copy.
    /// Used by the persisted encoding to store only per-CLC deltas.
    pub fn delta_since(&self, ancestor: &DeliveredRecord) -> Option<Vec<(DeliveredKey, SeqNum)>> {
        if !ancestor.delta.is_empty() {
            return None; // not a sealed snapshot
        }
        let mut out: Vec<(DeliveredKey, SeqNum)> =
            self.delta.iter().map(|(k, sn)| (*k, *sn)).collect();
        let mut gen = self.base.as_ref();
        loop {
            match (gen, ancestor.base.as_ref()) {
                (None, None) => break,
                (Some(g), Some(a)) if Arc::ptr_eq(g, a) => break,
                (Some(g), _) => {
                    out.extend(g.entries.iter().map(|(k, sn)| (*k, *sn)));
                    gen = g.parent.as_ref();
                }
                (None, Some(_)) => return None,
            }
        }
        Some(out)
    }

    /// Extend a sealed snapshot by `entries`, producing the record a
    /// delta-encoded checkpoint round-trips back to (decode-side companion
    /// of [`DeliveredRecord::delta_since`]). Builds the generation
    /// directly — never collapses — so re-encoding a decoded store
    /// reproduces the same structural deltas byte-for-byte.
    pub fn extended_with(&self, entries: impl IntoIterator<Item = (DeliveredKey, SeqNum)>) -> Self {
        let add: HashMap<DeliveredKey, SeqNum> = entries.into_iter().collect();
        if add.is_empty() {
            return DeliveredRecord {
                base: self.base.clone(),
                delta: HashMap::default(),
            };
        }
        let parent = self.base.clone();
        let (plen, pdepth) = parent.as_ref().map_or((0, 0), |g| (g.len, g.depth));
        DeliveredRecord {
            base: Some(Arc::new(DeliveredGen {
                len: plen + add.len(),
                depth: pdepth + 1,
                parent,
                entries: add,
            })),
            delta: HashMap::default(),
        }
    }
}

struct DeliveredIter<'a> {
    delta: std::collections::hash_map::Iter<'a, DeliveredKey, SeqNum>,
    gen: Option<&'a DeliveredGen>,
    gen_iter: Option<std::collections::hash_map::Iter<'a, DeliveredKey, SeqNum>>,
}

impl Iterator for DeliveredIter<'_> {
    type Item = (DeliveredKey, SeqNum);

    fn next(&mut self) -> Option<Self::Item> {
        if let Some((k, sn)) = self.delta.next() {
            return Some((*k, *sn));
        }
        loop {
            if let Some(it) = self.gen_iter.as_mut() {
                if let Some((k, sn)) = it.next() {
                    return Some((*k, *sn));
                }
            }
            let g = self.gen?;
            self.gen_iter = Some(g.entries.iter());
            self.gen = g.parent.as_deref();
        }
    }
}

/// Content equality, independent of the generation structure.
impl PartialEq for DeliveredRecord {
    fn eq(&self, other: &Self) -> bool {
        // Keys are unique within a record, so equal lengths plus one-way
        // containment imply equality.
        self.len() == other.len() && self.iter().all(|(k, sn)| other.get(&k) == Some(sn))
    }
}

impl Eq for DeliveredRecord {}

impl FromIterator<(DeliveredKey, SeqNum)> for DeliveredRecord {
    fn from_iter<I: IntoIterator<Item = (DeliveredKey, SeqNum)>>(iter: I) -> Self {
        DeliveredRecord::from_entries(iter)
    }
}

/// What one node stores at each CLC, besides the protocol stamp.
///
/// In the discrete-event simulator the application state is abstract, but
/// the protocol-level content is real: the receiver-side delivery record
/// (inter-cluster duplicate suppression must roll back together with the
/// application) and the intra-cluster channel state captured during the
/// freeze window (messages that crossed the checkpoint line and must be
/// re-delivered after a restore). The threaded runtime additionally stores
/// the serialized application state.
///
/// The delivery record is a copy-on-write [`DeliveredRecord`]: staged
/// checkpoints share their content with the engine's live record and with
/// older checkpoints instead of deep-cloning a map per CLC.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeCheckpoint {
    /// Inter-cluster messages delivered so far:
    /// `(sender node, sender log id) -> SN at delivery`.
    pub delivered: DeliveredRecord,
    /// Intra-cluster application messages captured during the freeze window
    /// (Chandy–Lamport channel state): re-delivered after a restore.
    pub channel_state: Vec<(NodeId, AppPayload)>,
    /// Opaque serialized application state (used by the threaded runtime;
    /// `None` under the simulator).
    pub app_state: Option<Vec<u8>>,
}

impl NodeCheckpoint {
    /// Approximate in-memory size, for storage-cost accounting.
    pub fn approx_bytes(&self) -> u64 {
        let delivered = self.delivered.len() as u64 * 32;
        let channel: u64 = self.channel_state.iter().map(|(_, p)| p.bytes + 16).sum();
        let app = self.app_state.as_ref().map_or(0, |s| s.len() as u64);
        delivered + channel + app
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(c: u16, r: u32, id: u64) -> DeliveredKey {
        (NodeId::new(c, r), id)
    }

    #[test]
    fn approx_bytes_counts_components() {
        let mut c = NodeCheckpoint::default();
        assert_eq!(c.approx_bytes(), 0);
        c.delivered.insert(key(0, 1, 7), SeqNum(2));
        c.channel_state
            .push((NodeId::new(0, 2), AppPayload { bytes: 100, tag: 1 }));
        c.app_state = Some(vec![0; 50]);
        assert_eq!(c.approx_bytes(), 32 + 116 + 50);
    }

    #[test]
    fn seal_is_a_snapshot_not_a_copy() {
        let mut live = DeliveredRecord::new();
        live.insert(key(0, 0, 1), SeqNum(1));
        let snap1 = live.seal();
        live.insert(key(0, 0, 2), SeqNum(2));
        let snap2 = live.seal();
        // Snapshots froze their content; the live record kept growing.
        assert_eq!(snap1.len(), 1);
        assert_eq!(snap2.len(), 2);
        assert_eq!(live.len(), 2);
        assert_eq!(snap1.get(&key(0, 0, 2)), None);
        assert_eq!(snap2.get(&key(0, 0, 1)), Some(SeqNum(1)));
        // snap2 structurally extends snap1 by exactly the second entry.
        let delta = snap2.delta_since(&snap1).expect("shares structure");
        assert_eq!(delta, vec![(key(0, 0, 2), SeqNum(2))]);
        assert_eq!(snap2.delta_since(&snap2).expect("self"), vec![]);
    }

    #[test]
    fn sealing_an_unchanged_record_shares_the_base() {
        let mut live = DeliveredRecord::new();
        live.insert(key(1, 0, 9), SeqNum(3));
        let a = live.seal();
        let b = live.seal();
        assert_eq!(a, b);
        assert_eq!(b.delta_since(&a).expect("same base"), vec![]);
    }

    #[test]
    fn restore_is_a_cheap_clone_with_equal_content() {
        let mut live = DeliveredRecord::new();
        for i in 0..10 {
            live.insert(key(0, 0, i), SeqNum(i));
        }
        let snap = live.seal();
        live.insert(key(0, 0, 99), SeqNum(42));
        // Rollback: replace the live record with the stored snapshot.
        live = snap.clone();
        assert_eq!(live.len(), 10);
        assert_eq!(live.get(&key(0, 0, 99)), None);
        assert_eq!(live, snap);
    }

    #[test]
    fn equality_ignores_generation_structure() {
        let mut a = DeliveredRecord::new();
        a.insert(key(0, 0, 1), SeqNum(1));
        let _ = a.seal();
        a.insert(key(0, 1, 2), SeqNum(2));
        let flat =
            DeliveredRecord::from_entries([(key(0, 1, 2), SeqNum(2)), (key(0, 0, 1), SeqNum(1))]);
        assert_eq!(a, flat);
        let mut different = flat.clone();
        different.insert(key(3, 0, 0), SeqNum(9));
        assert_ne!(a, different);
    }

    #[test]
    fn deep_chains_collapse_but_keep_content() {
        let mut live = DeliveredRecord::new();
        for i in 0..(COLLAPSE_DEPTH as u64 + 10) {
            live.insert(key(0, 0, i), SeqNum(i + 1));
            let _ = live.seal();
        }
        assert_eq!(live.len(), COLLAPSE_DEPTH + 10);
        for i in 0..(COLLAPSE_DEPTH as u64 + 10) {
            assert_eq!(live.get(&key(0, 0, i)), Some(SeqNum(i + 1)));
        }
        assert!(
            live.base.as_ref().expect("sealed").depth <= COLLAPSE_DEPTH + 1,
            "chain depth bounded"
        );
    }

    #[test]
    fn sorted_entries_are_canonical() {
        let rec = DeliveredRecord::from_entries([
            (key(1, 0, 5), SeqNum(5)),
            (key(0, 2, 1), SeqNum(1)),
            (key(0, 1, 9), SeqNum(2)),
        ]);
        let sorted = rec.sorted_entries();
        assert_eq!(
            sorted,
            vec![
                (key(0, 1, 9), SeqNum(2)),
                (key(0, 2, 1), SeqNum(1)),
                (key(1, 0, 5), SeqNum(5)),
            ]
        );
    }

    #[test]
    fn delta_since_unrelated_records_falls_back() {
        let mut a = DeliveredRecord::new();
        a.insert(key(0, 0, 1), SeqNum(1));
        let a = a.seal();
        let mut b = DeliveredRecord::new();
        b.insert(key(0, 0, 1), SeqNum(1));
        let b = b.seal();
        // Same content, different chains: no structural delta.
        assert_eq!(a, b);
        assert!(b.delta_since(&a).is_none());
    }

    #[test]
    fn extended_with_round_trips_delta() {
        let mut live = DeliveredRecord::new();
        live.insert(key(0, 0, 1), SeqNum(1));
        let base = live.seal();
        live.insert(key(2, 1, 7), SeqNum(4));
        let next = live.seal();
        let delta = next.delta_since(&base).expect("extends");
        assert_eq!(base.extended_with(delta), next);
    }
}
