//! Per-node checkpoint content.

use crate::msg::AppPayload;
use netsim::NodeId;
use std::collections::HashMap;
use storage::SeqNum;

/// What one node stores at each CLC, besides the protocol stamp.
///
/// In the discrete-event simulator the application state is abstract, but
/// the protocol-level content is real: the receiver-side delivery record
/// (inter-cluster duplicate suppression must roll back together with the
/// application) and the intra-cluster channel state captured during the
/// freeze window (messages that crossed the checkpoint line and must be
/// re-delivered after a restore). The threaded runtime additionally stores
/// the serialized application state.
#[derive(Debug, Clone, Default)]
pub struct NodeCheckpoint {
    /// Inter-cluster messages delivered so far:
    /// `(sender node, sender log id) -> SN at delivery`.
    pub delivered: HashMap<(NodeId, u64), SeqNum>,
    /// Intra-cluster application messages captured during the freeze window
    /// (Chandy–Lamport channel state): re-delivered after a restore.
    pub channel_state: Vec<(NodeId, AppPayload)>,
    /// Opaque serialized application state (used by the threaded runtime;
    /// `None` under the simulator).
    pub app_state: Option<Vec<u8>>,
}

impl NodeCheckpoint {
    /// Approximate in-memory size, for storage-cost accounting.
    pub fn approx_bytes(&self) -> u64 {
        let delivered = self.delivered.len() as u64 * 32;
        let channel: u64 = self.channel_state.iter().map(|(_, p)| p.bytes + 16).sum();
        let app = self.app_state.as_ref().map_or(0, |s| s.len() as u64);
        delivered + channel + app
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_bytes_counts_components() {
        let mut c = NodeCheckpoint::default();
        assert_eq!(c.approx_bytes(), 0);
        c.delivered.insert((NodeId::new(0, 1), 7), SeqNum(2));
        c.channel_state
            .push((NodeId::new(0, 2), AppPayload { bytes: 100, tag: 1 }));
        c.app_state = Some(vec![0; 50]);
        assert_eq!(c.approx_bytes(), 32 + 116 + 50);
    }
}
