//! Host-level reliable transport for lossy inter-cluster links.
//!
//! The [`NodeEngine`](crate::NodeEngine) assumes the exactly-once, FIFO
//! transport the paper's machine model grants it. The hostile network
//! model (`netsim::hostile`) can violate that with packet loss; this
//! module restores the contract *below* the engine, the way a real
//! deployment's TCP/QUIC layer would, so the protocol code stays
//! byte-identical whether the wire is pristine or drops half its traffic:
//!
//! * the sending host wraps every inter-cluster message in
//!   [`Msg::Reliable`] with a per-directed-node-pair sequence number,
//!   keeps the copy in a bounded in-flight window, and retransmits on a
//!   timer with exponential backoff ([`XportConfig::rto`] doubling up to
//!   [`XportConfig::rto_cap`]) until the peer's [`Msg::XportAck`] cancels
//!   it — sends beyond the window queue at the sender and enter the wire
//!   as acks free slots;
//! * the receiving host acks *every* copy it sees (acks travel
//!   unreliably: a lost ack is covered by the sender's retransmission and
//!   the receiver's dedup) and hands the engine only the first copy of
//!   each sequence — a cumulative watermark plus a sparse above-watermark
//!   set make the dedup state O(reordering window), not O(messages).
//!
//! The state machines here are substrate-neutral: the discrete-event
//! simulator drives them through `desim` timer events and the threaded
//! runtime through shard ticks, both expressing "now" as a [`SimTime`].
//! Everything is deterministic — no randomness, iteration in sequence
//! order — so simulator fingerprints stay a pure function of the
//! configuration and seed.

use crate::msg::Msg;
use desim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Tuning of the reliability sub-layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XportConfig {
    /// Maximum unacknowledged copies in flight per directed node pair;
    /// further sends queue at the sender until acks free slots.
    pub window: usize,
    /// Initial retransmission timeout.
    pub rto: SimDuration,
    /// Backoff cap: the doubling stops here.
    pub rto_cap: SimDuration,
}

impl Default for XportConfig {
    /// 50 ms initial RTO doubling to a 5 s cap, window 32: at 50% loss a
    /// copy survives the two-minute drain window every scenario grants
    /// with overwhelming probability (~29 attempts).
    fn default() -> Self {
        XportConfig {
            window: 32,
            rto: SimDuration::from_millis(50),
            rto_cap: SimDuration::from_secs(5),
        }
    }
}

impl XportConfig {
    /// The retransmission deadline after `retries` prior attempts:
    /// `rto << retries`, capped.
    fn backoff(&self, retries: u32) -> SimDuration {
        let base = self.rto.nanos();
        let shifted = if base == 0 {
            0
        } else if retries >= base.leading_zeros() {
            u64::MAX
        } else {
            base << retries
        };
        SimDuration::from_nanos(shifted.min(self.rto_cap.nanos()))
    }
}

/// One unacknowledged copy held by a [`SenderChannel`].
#[derive(Debug, Clone)]
struct Inflight {
    msg: Msg,
    /// Retransmissions performed so far (0 = only the original send).
    retries: u32,
    /// When the next retransmission is due.
    next_at: SimTime,
}

/// Sender side of one directed node pair: sequence assignment, the
/// bounded in-flight window, the overflow queue and the backoff clock.
#[derive(Debug, Default)]
pub struct SenderChannel {
    next_seq: u64,
    inflight: BTreeMap<u64, Inflight>,
    queue: VecDeque<Msg>,
    /// Retransmitted copies (accounting only).
    pub retransmissions: u64,
}

impl SenderChannel {
    /// Accept `msg` for reliable delivery. Returns the assigned sequence
    /// if the window had room (the caller puts `Reliable{seq, msg}` on
    /// the wire and arms a retransmit timer at [`SenderChannel::deadline`]);
    /// `None` means the message queued and enters the wire later, from
    /// [`SenderChannel::ack`]'s released batch.
    pub fn send(&mut self, now: SimTime, cfg: &XportConfig, msg: Msg) -> Option<u64> {
        if self.inflight.len() >= cfg.window {
            self.queue.push_back(msg);
            return None;
        }
        Some(self.admit(now, cfg, msg))
    }

    fn admit(&mut self, now: SimTime, cfg: &XportConfig, msg: Msg) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight.insert(
            seq,
            Inflight {
                msg,
                retries: 0,
                next_at: now.saturating_add(cfg.backoff(0)),
            },
        );
        seq
    }

    /// Process an ack: drop the in-flight copy and admit queued messages
    /// into the freed window. Returns the newly admitted `(seq, msg)`
    /// pairs the caller must put on the wire (clones stay inside the
    /// window). Duplicate acks return an empty batch.
    pub fn ack(&mut self, now: SimTime, cfg: &XportConfig, seq: u64) -> Vec<(u64, Msg)> {
        if self.inflight.remove(&seq).is_none() {
            return Vec::new();
        }
        let mut released = Vec::new();
        while self.inflight.len() < cfg.window {
            match self.queue.pop_front() {
                Some(msg) => {
                    let seq = self.admit(now, cfg, msg.clone());
                    released.push((seq, msg));
                }
                None => break,
            }
        }
        released
    }

    /// Retransmit one specific sequence if it is still in flight and its
    /// deadline has passed: bump the backoff and return the wire copy plus
    /// the new deadline. `None` means the copy was acked meanwhile (or the
    /// deadline moved) — the caller's timer event is stale, ignore it.
    pub fn retransmit(
        &mut self,
        now: SimTime,
        cfg: &XportConfig,
        seq: u64,
    ) -> Option<(Msg, SimTime)> {
        let entry = self.inflight.get_mut(&seq)?;
        if entry.next_at > now {
            return None;
        }
        entry.retries += 1;
        entry.next_at = now.saturating_add(cfg.backoff(entry.retries));
        self.retransmissions += 1;
        Some((entry.msg.clone(), entry.next_at))
    }

    /// Collect every copy whose retransmission is due, bumping its
    /// backoff. The caller puts each `(seq, msg)` back on the wire and
    /// re-arms its timer at the new [`SenderChannel::deadline`].
    pub fn due(&mut self, now: SimTime, cfg: &XportConfig) -> Vec<(u64, Msg)> {
        let mut out = Vec::new();
        for (&seq, entry) in self.inflight.iter_mut() {
            if entry.next_at <= now {
                entry.retries += 1;
                entry.next_at = now.saturating_add(cfg.backoff(entry.retries));
                self.retransmissions += 1;
                out.push((seq, entry.msg.clone()));
            }
        }
        out
    }

    /// The retransmission deadline of one in-flight sequence.
    pub fn deadline(&self, seq: u64) -> Option<SimTime> {
        self.inflight.get(&seq).map(|e| e.next_at)
    }

    /// The earliest retransmission deadline of the channel.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.inflight.values().map(|e| e.next_at).min()
    }

    /// Unacknowledged copies currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Messages parked behind a full window.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// Receiver side of one directed node pair: exactly-once admission by
/// sequence number. All sequences `<= watermark` were seen; the sparse
/// set holds seen sequences above it (loss/reordering gaps).
#[derive(Debug, Default)]
pub struct ReceiverChannel {
    watermark: Option<u64>,
    above: BTreeSet<u64>,
}

impl ReceiverChannel {
    /// Admit a received sequence. `true` means first sighting — hand the
    /// inner message to the engine; `false` means duplicate — ack and
    /// drop. Either way the caller acks.
    pub fn accept(&mut self, seq: u64) -> bool {
        if let Some(w) = self.watermark {
            if seq <= w {
                return false;
            }
        }
        if !self.above.insert(seq) {
            return false;
        }
        // Advance the cumulative watermark over any now-contiguous run.
        let mut w = self.watermark;
        loop {
            let next = w.map_or(0, |v| v + 1);
            if self.above.remove(&next) {
                w = Some(next);
            } else {
                break;
            }
        }
        self.watermark = w;
        true
    }

    /// Sequences retained above the watermark (test introspection).
    pub fn gap_backlog(&self) -> usize {
        self.above.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn probe(seq: u64) -> Msg {
        Msg::XportAck { seq } // any cheap distinguishable payload
    }

    #[test]
    fn sequences_are_assigned_in_order_and_window_bounds_flight() {
        let cfg = XportConfig {
            window: 2,
            ..Default::default()
        };
        let mut s = SenderChannel::default();
        assert_eq!(s.send(t(0), &cfg, probe(0)), Some(0));
        assert_eq!(s.send(t(0), &cfg, probe(1)), Some(1));
        assert_eq!(s.send(t(0), &cfg, probe(2)), None, "window full: queued");
        assert_eq!((s.in_flight(), s.queued()), (2, 1));
        // Ack frees a slot and releases the queued message under seq 2.
        let released = s.ack(t(1), &cfg, 0);
        assert_eq!(released, vec![(2, probe(2))]);
        assert_eq!((s.in_flight(), s.queued()), (2, 0));
        // Duplicate ack: no-op.
        assert!(s.ack(t(2), &cfg, 0).is_empty());
    }

    #[test]
    fn retransmission_backs_off_exponentially_to_the_cap() {
        let cfg = XportConfig {
            window: 8,
            rto: SimDuration::from_millis(50),
            rto_cap: SimDuration::from_millis(300),
        };
        let mut s = SenderChannel::default();
        s.send(t(0), &cfg, probe(7));
        assert_eq!(s.deadline(0), Some(t(50)));
        assert!(s.due(t(49), &cfg).is_empty(), "not due yet");
        assert_eq!(s.due(t(50), &cfg), vec![(0, probe(7))]);
        assert_eq!(s.deadline(0), Some(t(150)), "50 + 2*50 backoff");
        assert_eq!(s.due(t(150), &cfg).len(), 1);
        assert_eq!(
            s.deadline(0),
            Some(t(350)),
            "150 + 200 (still under the cap)"
        );
        assert_eq!(s.due(t(350), &cfg).len(), 1);
        assert_eq!(s.deadline(0), Some(t(650)), "cap reached: +300");
        assert_eq!(s.retransmissions, 3);
        // Ack cancels everything.
        s.ack(t(651), &cfg, 0);
        assert!(s.due(t(10_000), &cfg).is_empty());
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn receiver_admits_each_sequence_exactly_once_in_any_order() {
        let mut r = ReceiverChannel::default();
        assert!(r.accept(0));
        assert!(!r.accept(0), "duplicate of the watermark run");
        assert!(r.accept(3), "gap: admitted above the watermark");
        assert!(r.accept(2));
        assert!(!r.accept(3), "duplicate above the watermark");
        assert_eq!(r.gap_backlog(), 2);
        assert!(r.accept(1), "fills the gap");
        assert_eq!(r.gap_backlog(), 0, "watermark swallowed 1,2,3");
        for seq in 0..=3 {
            assert!(!r.accept(seq), "seq {seq} replayed after compaction");
        }
        assert!(r.accept(4));
    }

    #[test]
    fn backoff_shift_never_overflows() {
        let cfg = XportConfig::default();
        assert_eq!(cfg.backoff(200), cfg.rto_cap);
        let wild = XportConfig {
            window: 1,
            rto: SimDuration::from_nanos(u64::MAX / 2),
            rto_cap: SimDuration::from_nanos(u64::MAX),
        };
        assert_eq!(wild.backoff(63).nanos(), u64::MAX);
    }
}
