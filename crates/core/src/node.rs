//! The per-node HC3I protocol engine.
//!
//! One [`NodeEngine`] per node of the federation. The engine is a pure
//! state machine ([`NodeEngine::handle`] consumes an [`Input`], returns
//! [`Output`] actions) so the identical protocol code runs under the
//! discrete-event simulator and the threaded message-passing runtime.
//!
//! Protocol roles:
//!
//! * every node: freeze/stage/commit in the intra-cluster two-phase commit,
//!   fragment replication to neighbours, CIC checks on incoming
//!   inter-cluster messages, sender-side logging, alert-driven replay;
//! * the cluster **coordinator** (rank 0): serializes CLC rounds, owns the
//!   unforced-CLC timer, coordinates rollback and relays alerts;
//! * the **GC initiator** (cluster 0's coordinator): runs the centralized
//!   garbage collection of §3.5.

use crate::checkpoint::{DeliveredRecord, NodeCheckpoint};
use crate::config::{PiggybackMode, ProtocolConfig};
use crate::gc;
use crate::io::{Input, Output, OutputBuf};
use crate::msg::{AppPayload, ClcReason, Msg, Piggyback};
use desim::SimTime;
use netsim::{FastHashMap, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;
use storage::{ClcMeta, ClcStore, Ddv, LogId, MessageLog, SeqNum};

/// An inter-cluster message held until a forced CLC commits (paper §3.2:
/// "the application takes messages into account only when the forced CLC is
/// committed").
#[derive(Debug, Clone)]
struct PendingInter {
    from: NodeId,
    payload: AppPayload,
    piggyback: Piggyback,
    log_id: LogId,
}

/// State held between a `ClcRequest` and the matching `ClcCommit`.
#[derive(Debug)]
struct FrozenState {
    round: u64,
    staged: NodeCheckpoint,
    /// Replica holders that have not yet confirmed storing our fragment
    /// (a short vector — at most the replication degree — so membership
    /// is a scan, not a hash probe).
    awaiting_frag: Vec<u32>,
    /// Whether our ClcAck has been sent to the coordinator.
    acked: bool,
    /// Intra-cluster app messages captured during the freeze (channel
    /// state): recorded in the checkpoint *and* delivered at commit.
    channel_msgs: Vec<(NodeId, AppPayload)>,
    /// Inter-cluster app messages received during the freeze, re-processed
    /// at commit.
    deferred: Vec<(NodeId, Msg)>,
    /// Application sends issued during the freeze, sent at commit.
    out_queue: Vec<(NodeId, AppPayload)>,
}

/// A CLC round in progress at the coordinator.
#[derive(Debug)]
struct RoundState {
    round: u64,
    /// Per-rank ack flags plus a running count (duplicate-proof without
    /// hashing on the commit hot path).
    acked: Vec<bool>,
    ack_count: u32,
    reasons: Vec<ClcReason>,
}

/// Coordinator-only state.
#[derive(Debug, Default)]
struct CoordState {
    next_round: u64,
    current: Option<RoundState>,
    /// Reasons that arrived while a round was running.
    queued: Vec<ClcReason>,
}

/// GC-initiator-only state: DDV lists collected so far (stamps are
/// `Arc`-shared with the reporting stores — collecting holds references,
/// not copies).
#[derive(Debug)]
struct GcState {
    lists: BTreeMap<usize, Vec<(SeqNum, Arc<Ddv>)>>,
}

/// Control-plane state, touched only on CLC rounds, rollbacks, fault
/// detections and garbage collections — never on the per-message hot path
/// (application delivery, sender-side logging, duplicate checks). Boxed
/// behind [`NodeEngine::cold`] so the hot fields of 100k engines pack
/// densely in the host's arena; one pointer chase on the rare paths buys
/// roughly half the per-engine inline footprint off the cache-resident set.
#[derive(Debug)]
struct ColdState {
    /// Rank coordinating this cluster (fixed at 0; a failed coordinator is
    /// revived by the rollback that recovery performs).
    coordinator_rank: u32,
    /// This node's checkpoint-fragment replica holders — a pure function
    /// of rank, cluster size and replication degree, so computed once and
    /// shared by reference with every per-commit fragment fan-out batch.
    frag_holders: Arc<[u32]>,
    store: ClcStore<NodeCheckpoint>,
    coord: CoordState,
    gc: Option<GcState>,
    /// Highest alert epoch processed per origin cluster (alert dedup).
    alert_seen: Vec<u64>,
    /// Count of intra-cluster messages observed crossing a checkpoint
    /// boundary outside a freeze window (consistency monitor).
    late_crossings: u64,
    /// Latest serialized application state published by the host.
    app_state: Option<Vec<u8>>,
}

/// The per-node protocol engine.
///
/// Layout: fields read on (nearly) every input live inline; everything
/// the control plane alone touches sits behind the cold-state box, and
/// the freeze window state — a whole staged [`NodeCheckpoint`] — is boxed
/// because it exists only between a `ClcRequest` and its commit.
#[derive(Debug)]
pub struct NodeEngine {
    /// Static federation configuration, `Arc`-shared by every engine of a
    /// federation: engines read it, nobody writes it after construction,
    /// and at 100k-node scale per-engine copies (each holding the whole
    /// `cluster_sizes` vector) would dominate the arena's memory. Hot:
    /// every inter-cluster send reads the piggyback mode.
    cfg: Arc<ProtocolConfig>,
    id: NodeId,
    /// Rollback epoch: bumped on every cluster rollback, stamps intra-
    /// cluster control messages so stale rounds are discarded.
    epoch: u64,
    sn: SeqNum,
    /// The node's current DDV. `Arc`-shared: outside a commit the DDV is
    /// immutable, so the commit's broadcast stamp *is* the live DDV, the
    /// FullDdv piggyback stamp, and the stored `ClcMeta` stamp — one
    /// allocation per cluster per CLC (the coordinator's), zero per node.
    ddv: Arc<Ddv>,
    log: MessageLog<AppPayload>,
    /// Delivery record for inter-cluster duplicate suppression:
    /// `(sender, log id) -> SN at delivery`. Checkpointed copy-on-write:
    /// staging a CLC seals the record's delta instead of cloning the map.
    delivered: DeliveredRecord,
    /// Monotone upper bound on the log id ever delivered per sender.
    /// Deliberately *not* part of the checkpoint: after a rollback the
    /// bound can only be stale-high, which merely disables the fast
    /// duplicate check (an id above the bound cannot have been delivered;
    /// an id at or below it gets the full [`DeliveredRecord`] probe).
    delivered_hwm: FastHashMap<NodeId, u64>,
    /// Inter-cluster messages awaiting a forced CLC.
    pending_inter: Vec<PendingInter>,
    frozen: Option<Box<FrozenState>>,
    failed: bool,
    /// Ghost floor per origin cluster: inter-cluster messages stamped with
    /// an epoch below this are in-flight sends of a dead incarnation.
    min_epoch: Vec<u64>,
    /// Application-material activity (delivery, send, commit) since the
    /// last restore; a re-restore of the latest CLC with no activity is a
    /// no-op and must not re-alert (terminates echo cascades).
    dirty: bool,
    /// Rarely-touched control-plane state (see [`ColdState`]).
    cold: Box<ColdState>,
}

impl NodeEngine {
    /// Create the engine for node `id`. Every node starts with the initial
    /// CLC already committed ("each cluster stores a first CLC which is the
    /// beginning of the application", paper §4), so `SN = 1`.
    pub fn new(cfg: impl Into<Arc<ProtocolConfig>>, id: NodeId) -> Self {
        let cfg = cfg.into();
        let initial_sn = SeqNum(1);
        let mut ddv = Ddv::zeros(cfg.num_clusters());
        ddv.set(id.cluster.index(), initial_sn);
        Self::with_initial_ddv(cfg, id, Arc::new(ddv))
    }

    /// [`NodeEngine::new`] with the initial DDV supplied by the caller:
    /// every node of a cluster starts from the *same* stamp (own entry at
    /// the initial SN, zero elsewhere), so an arena constructor allocates
    /// it once per cluster instead of once per node.
    pub fn with_initial_ddv(cfg: Arc<ProtocolConfig>, id: NodeId, ddv: Arc<Ddv>) -> Self {
        let n = cfg.num_clusters();
        assert!(id.cluster.index() < n, "node's cluster out of range");
        assert!(
            id.rank < cfg.nodes_in(id.cluster.index()),
            "node rank out of range"
        );
        let initial_sn = SeqNum(1);
        debug_assert_eq!(ddv.len(), n, "initial DDV dimension mismatch");
        debug_assert!(
            ddv.iter().enumerate().all(|(c, sn)| {
                sn == if c == id.cluster.index() {
                    initial_sn
                } else {
                    SeqNum::ZERO
                }
            }),
            "initial DDV must be the cluster's first-CLC stamp"
        );
        let frag_holders: Arc<[u32]> = cfg
            .replication
            .replica_holders(id.rank, cfg.nodes_in(id.cluster.index()))
            .into();
        let mut store = ClcStore::new();
        store.commit(
            ClcMeta {
                sn: initial_sn,
                ddv: ddv.clone(),
                committed_at: SimTime::ZERO,
                forced: false,
            },
            NodeCheckpoint::default(),
        );
        NodeEngine {
            cfg,
            id,
            epoch: 0,
            sn: initial_sn,
            ddv,
            log: MessageLog::new(),
            delivered: DeliveredRecord::new(),
            delivered_hwm: FastHashMap::default(),
            pending_inter: vec![],
            frozen: None,
            failed: false,
            min_epoch: vec![0; n],
            dirty: false,
            cold: Box::new(ColdState {
                coordinator_rank: 0,
                frag_holders,
                store,
                coord: CoordState::default(),
                gc: None,
                alert_seen: vec![0; n],
                late_crossings: 0,
                app_state: None,
            }),
        }
    }

    // ---- accessors -------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }
    /// Current cluster sequence number.
    pub fn sn(&self) -> SeqNum {
        self.sn
    }
    /// Current DDV.
    pub fn ddv(&self) -> &Ddv {
        &self.ddv
    }
    /// The CLC store.
    pub fn store(&self) -> &ClcStore<NodeCheckpoint> {
        &self.cold.store
    }
    /// The sender-side message log.
    pub fn log(&self) -> &MessageLog<AppPayload> {
        &self.log
    }
    /// Whether the node is currently failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }
    /// Whether the node currently acts as its cluster's coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.id.rank == self.cold.coordinator_rank
    }
    /// Whether a CLC two-phase commit is in progress on this node.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }
    /// Messages held for a pending forced CLC.
    pub fn pending_inter_count(&self) -> usize {
        self.pending_inter.len()
    }
    /// Consistency monitor: checkpoint-crossing intra messages seen.
    pub fn late_crossings(&self) -> u64 {
        self.cold.late_crossings
    }
    /// Current rollback epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn my_cluster(&self) -> usize {
        self.id.cluster.index()
    }

    fn cluster_size(&self) -> u32 {
        self.cfg.nodes_in(self.my_cluster())
    }

    fn coordinator_of(&self, cluster: usize) -> NodeId {
        NodeId::new(cluster as u16, 0)
    }

    fn current_piggyback(&mut self) -> Piggyback {
        match self.cfg.piggyback {
            PiggybackMode::SnOnly => Piggyback::Sn(self.sn),
            // The live DDV is already the shared immutable stamp.
            PiggybackMode::FullDdv => Piggyback::Ddv(self.ddv.clone()),
        }
    }

    /// Does an incoming piggyback require a forced CLC before delivery?
    fn needs_forced_clc(&self, piggyback: &Piggyback, sender_cluster: usize) -> bool {
        match piggyback {
            Piggyback::Sn(sn) => *sn > self.ddv.get(sender_cluster),
            Piggyback::Ddv(ddv) => !ddv.dominated_by(&self.ddv),
        }
    }

    // ---- main dispatch ---------------------------------------------------

    /// Feed one input; appends the actions the hosting engine must perform
    /// to `out` (a reusable, caller-owned buffer — hosts keep one alive
    /// across events so the hot path allocates nothing).
    pub fn handle(&mut self, now: SimTime, input: Input, out: &mut OutputBuf) {
        if self.failed {
            // A failed node reacts only to the rollback order that revives
            // it from stable storage.
            if let Input::Receive {
                msg:
                    Msg::RollbackOrder {
                        restore_sn,
                        epoch,
                        new_coordinator,
                    },
                ..
            } = &input
            {
                self.apply_rollback(*restore_sn, *epoch, *new_coordinator, out);
            }
            return;
        }
        match input {
            Input::Receive { from, msg } => self.handle_msg(now, from, msg, out),
            Input::AppSend { to, payload } => self.app_send(to, payload, out),
            Input::ClcTimer => self.on_clc_timer(now, out),
            Input::GcTimer => self.on_gc_timer(out),
            Input::Fail => {
                self.failed = true;
            }
            Input::DetectFault { failed_rank } => self.on_detect_faults(&[failed_rank], out),
            Input::DetectFaults { failed_ranks } => self.on_detect_faults(&failed_ranks, out),
            Input::AppStateUpdate { state } => {
                self.cold.app_state = Some(state);
            }
        }
    }

    /// Convenience wrapper around [`NodeEngine::handle`] that collects the
    /// actions into a fresh `Vec` (tests and one-shot callers; hot paths
    /// should hold a reusable [`OutputBuf`] instead).
    pub fn handle_collect(&mut self, now: SimTime, input: Input) -> Vec<Output> {
        let mut out = OutputBuf::new();
        self.handle(now, input, &mut out);
        out.into_vec()
    }

    fn handle_msg(&mut self, now: SimTime, from: NodeId, msg: Msg, out: &mut OutputBuf) {
        match msg {
            // ---- 2PC ----
            Msg::ClcInit { reason, epoch } => {
                if epoch == self.epoch && self.is_coordinator() {
                    self.coord_init(now, reason, out);
                }
            }
            Msg::ClcRequest { round, epoch } => {
                if epoch == self.epoch {
                    self.freeze_and_stage(now, round, out);
                }
            }
            Msg::FragmentReplica {
                round,
                owner,
                epoch,
            } => {
                if epoch == self.epoch {
                    // Store of the replica content is implicit (metadata
                    // level); confirm to the owner.
                    self.send_or_local(
                        now,
                        NodeId::new(self.id.cluster.0, owner),
                        Msg::FragmentStored {
                            round,
                            holder: self.id.rank,
                            epoch,
                        },
                        out,
                    );
                }
            }
            Msg::FragmentStored {
                round,
                holder,
                epoch,
            } => {
                if epoch != self.epoch {
                    return;
                }
                let mut ack_now = false;
                if let Some(f) = self.frozen.as_mut() {
                    if f.round == round {
                        if let Some(pos) = f.awaiting_frag.iter().position(|&h| h == holder) {
                            f.awaiting_frag.swap_remove(pos);
                        }
                        if f.awaiting_frag.is_empty() && !f.acked {
                            f.acked = true;
                            ack_now = true;
                        }
                    }
                }
                if ack_now {
                    let rank = self.id.rank;
                    self.send_or_local(
                        now,
                        NodeId::new(self.id.cluster.0, self.cold.coordinator_rank),
                        Msg::ClcAck {
                            round,
                            rank,
                            epoch: self.epoch,
                        },
                        out,
                    );
                }
            }
            Msg::ClcAck { round, rank, epoch } => {
                if epoch == self.epoch && self.is_coordinator() {
                    self.coord_ack(now, round, rank, out);
                }
            }
            Msg::ClcCommit {
                round,
                sn,
                ddv,
                forced,
                epoch,
            } => {
                if epoch == self.epoch {
                    self.apply_commit(now, round, sn, ddv, forced, out);
                }
            }

            // ---- application ----
            Msg::AppIntra {
                payload,
                sent_at_sn,
            } => {
                if let Some(f) = self.frozen.as_mut() {
                    // Channel state: recorded in the checkpoint, delivered
                    // at commit.
                    f.channel_msgs.push((from, payload));
                } else {
                    if sent_at_sn != self.sn {
                        self.cold.late_crossings += 1;
                        out.push(Output::LateCrossing { from });
                    }
                    self.dirty = true;
                    out.push(Output::DeliverApp { from, payload });
                }
            }
            Msg::AppInter {
                payload,
                piggyback,
                log_id,
                resend,
                sender_epoch,
            } => {
                // Ghost rejection: a message stamped with an epoch below
                // the known floor was sent by an incarnation whose
                // execution has been rolled back — it must not exist.
                let origin = from.cluster.index();
                if sender_epoch < self.min_epoch[origin] {
                    return;
                }
                if sender_epoch > self.min_epoch[origin] {
                    self.min_epoch[origin] = sender_epoch;
                }
                if let Some(f) = self.frozen.as_mut() {
                    f.deferred.push((
                        from,
                        Msg::AppInter {
                            payload,
                            piggyback,
                            log_id,
                            resend,
                            sender_epoch,
                        },
                    ));
                } else {
                    self.recv_inter(now, from, payload, piggyback, log_id, out);
                }
            }
            Msg::InterAck {
                log_id,
                receiver_sn,
            } => {
                // The entry may have been truncated by a sender-side
                // rollback; a stale ack is then simply dropped.
                let _ = self.log.ack(log_id, receiver_sn);
            }

            // ---- rollback ----
            Msg::RollbackOrder {
                restore_sn,
                epoch,
                new_coordinator,
            } => {
                self.apply_rollback(restore_sn, epoch, new_coordinator, out);
            }
            Msg::RollbackAlert {
                origin,
                sn,
                origin_epoch,
            } => {
                if self.is_coordinator() {
                    self.on_alert(now, origin, sn, origin_epoch, out);
                }
            }
            Msg::AlertLocal {
                origin,
                sn,
                origin_epoch,
            } => {
                self.min_epoch[origin] = self.min_epoch[origin].max(origin_epoch);
                self.resend_logged(origin, sn, out);
            }

            // ---- garbage collection ----
            Msg::GcCollect => {
                let list = self.cold.store.ddv_list();
                self.send_or_local(
                    now,
                    from,
                    Msg::GcDdvList {
                        cluster: self.my_cluster(),
                        list,
                    },
                    out,
                );
            }
            Msg::GcDdvList { cluster, list } => {
                self.on_gc_list(now, cluster, list, out);
            }
            Msg::GcPrune { min_sns } => {
                // A coordinator hearing this from outside its cluster
                // relays it to its own nodes.
                if self.is_coordinator() && from.cluster != self.id.cluster {
                    self.send_to_other_ranks(
                        &Msg::GcPrune {
                            min_sns: min_sns.clone(),
                        },
                        out,
                    );
                }
                self.apply_gc_prune(&min_sns, out);
            }
            // Transport frames terminate at the *host* reliability layer
            // (crate::xport): hosts unwrap Reliable and consume XportAck
            // before the engine is invoked. Reaching here means a host
            // wiring bug; drop rather than corrupt protocol state.
            Msg::Reliable { .. } | Msg::XportAck { .. } => {
                debug_assert!(false, "transport frame reached the engine");
            }
        }
    }

    // ---- helpers ---------------------------------------------------------

    /// Send `msg` to every other node of this cluster (allocation-free:
    /// the rank loop is inlined instead of materializing a rank list).
    fn send_to_other_ranks(&self, msg: &Msg, out: &mut OutputBuf) {
        let me = self.id.rank;
        for rank in 0..self.cluster_size() {
            if rank != me {
                out.push(Output::Send {
                    to: NodeId::new(self.id.cluster.0, rank),
                    msg: msg.clone(),
                });
            }
        }
    }

    /// Send `msg` to `to`, short-circuiting messages to self.
    fn send_or_local(&mut self, now: SimTime, to: NodeId, msg: Msg, out: &mut OutputBuf) {
        if to == self.id {
            self.handle_msg(now, to, msg, out);
        } else {
            out.push(Output::Send { to, msg });
        }
    }

    /// Broadcast `msg` to every other node of this cluster, then apply it
    /// locally.
    fn broadcast_cluster(&mut self, now: SimTime, msg: Msg, out: &mut OutputBuf) {
        self.send_to_other_ranks(&msg, out);
        self.handle_msg(now, self.id, msg, out);
    }

    // ---- application sends -----------------------------------------------

    fn app_send(&mut self, to: NodeId, payload: AppPayload, out: &mut OutputBuf) {
        assert!(to != self.id, "self-sends are not messages");
        if let Some(f) = self.frozen.as_mut() {
            // Application messages are frozen during the 2PC (paper §3.1).
            f.out_queue.push((to, payload));
            return;
        }
        self.do_send(to, payload, out);
    }

    fn do_send(&mut self, to: NodeId, payload: AppPayload, out: &mut OutputBuf) {
        if to.cluster == self.id.cluster {
            out.push(Output::Send {
                to,
                msg: Msg::AppIntra {
                    payload,
                    sent_at_sn: self.sn,
                },
            });
        } else {
            // Optimistic sender-side log (paper §3.3), then send with the
            // piggybacked dependency information (paper §3.2).
            let log_id = self
                .log
                .log(to.cluster.index(), to.rank, payload, payload.bytes, self.sn);
            self.dirty = true;
            out.push(Output::Send {
                to,
                msg: Msg::AppInter {
                    payload,
                    piggyback: self.current_piggyback(),
                    log_id,
                    resend: false,
                    sender_epoch: self.epoch,
                },
            });
        }
    }

    // ---- inter-cluster receive (the CIC rule) ------------------------------

    fn recv_inter(
        &mut self,
        now: SimTime,
        from: NodeId,
        payload: AppPayload,
        piggyback: Piggyback,
        log_id: LogId,
        out: &mut OutputBuf,
    ) {
        // Duplicate (an original raced a replay): re-acknowledge with the
        // SN recorded at first delivery. An id above the per-sender
        // high-water mark was never delivered, so the common new-message
        // case skips the generation-chain probe entirely.
        let dup_sn = if log_id.0 > self.delivered_hwm.get(&from).copied().unwrap_or(0) {
            None
        } else {
            self.delivered.get(&(from, log_id.0))
        };
        if let Some(ack_sn) = dup_sn {
            out.push(Output::Send {
                to: from,
                msg: Msg::InterAck {
                    log_id,
                    receiver_sn: ack_sn,
                },
            });
            return;
        }
        // Duplicate of a message already held for a forced CLC (a
        // duplicating WAN, or an original racing a replay): drop it — the
        // held copy is delivered and acknowledged exactly once when the
        // CLC commits.
        if self
            .pending_inter
            .iter()
            .any(|p| p.from == from && p.log_id == log_id)
        {
            return;
        }
        if self.needs_forced_clc(&piggyback, from.cluster.index()) {
            // Hold the message and ask the coordinator for a forced CLC
            // (paper §3.2: delivered only once the forced CLC commits).
            let reason = ClcReason::Forced(piggyback.clone(), from.cluster.index());
            self.pending_inter.push(PendingInter {
                from,
                payload,
                piggyback,
                log_id,
            });
            let epoch = self.epoch;
            self.send_or_local(
                now,
                NodeId::new(self.id.cluster.0, self.cold.coordinator_rank),
                Msg::ClcInit { reason, epoch },
                out,
            );
        } else {
            self.deliver_inter(from, payload, log_id, out);
        }
    }

    fn deliver_inter(
        &mut self,
        from: NodeId,
        payload: AppPayload,
        log_id: LogId,
        out: &mut OutputBuf,
    ) {
        self.dirty = true;
        self.delivered.insert((from, log_id.0), self.sn);
        let hwm = self.delivered_hwm.entry(from).or_insert(0);
        *hwm = (*hwm).max(log_id.0);
        out.push(Output::DeliverApp { from, payload });
        out.push(Output::Send {
            to: from,
            msg: Msg::InterAck {
                log_id,
                receiver_sn: self.sn,
            },
        });
    }

    /// After a commit (or rollback) re-examine held inter-cluster messages.
    fn recheck_pending(&mut self, out: &mut OutputBuf) {
        let mut still_pending = Vec::new();
        for p in std::mem::take(&mut self.pending_inter) {
            if let Some(ack_sn) = self.delivered.get(&(p.from, p.log_id.0)) {
                // Another copy was delivered while this one was held:
                // re-acknowledge, never re-deliver.
                out.push(Output::Send {
                    to: p.from,
                    msg: Msg::InterAck {
                        log_id: p.log_id,
                        receiver_sn: ack_sn,
                    },
                });
            } else if self.needs_forced_clc(&p.piggyback, p.from.cluster.index()) {
                still_pending.push(p);
            } else {
                self.deliver_inter(p.from, p.payload, p.log_id, out);
            }
        }
        self.pending_inter = still_pending;
    }

    // ---- 2PC: node side ----------------------------------------------------

    fn freeze_and_stage(&mut self, now: SimTime, round: u64, out: &mut OutputBuf) {
        if self.frozen.is_some() {
            // Duplicate request within a round (cannot happen with a
            // correct coordinator); ignore.
            return;
        }
        let staged = NodeCheckpoint {
            // O(delta) seal: deliveries since the last CLC move into the
            // shared immutable base; nothing older is copied.
            delivered: self.delivered.seal(),
            channel_state: vec![],
            app_state: self.cold.app_state.clone(),
        };
        // One batched fan-out action per freeze: the hosting engine
        // expands it into per-holder `FragmentReplica` sends (identical
        // ordering and byte accounting to the old per-holder outputs).
        if !self.cold.frag_holders.is_empty() {
            out.push(Output::SendFragments {
                holders: self.cold.frag_holders.clone(),
                round,
                epoch: self.epoch,
            });
        }
        let awaiting = self.cold.frag_holders.to_vec();
        let ack_immediately = awaiting.is_empty();
        self.frozen = Some(Box::new(FrozenState {
            round,
            staged,
            awaiting_frag: awaiting,
            acked: ack_immediately,
            channel_msgs: vec![],
            deferred: vec![],
            out_queue: vec![],
        }));
        if ack_immediately {
            let rank = self.id.rank;
            let epoch = self.epoch;
            let coord = NodeId::new(self.id.cluster.0, self.cold.coordinator_rank);
            self.send_or_local(now, coord, Msg::ClcAck { round, rank, epoch }, out);
        }
    }

    fn apply_commit(
        &mut self,
        now: SimTime,
        round: u64,
        sn: SeqNum,
        ddv: Arc<Ddv>,
        forced: bool,
        out: &mut OutputBuf,
    ) {
        let Some(frozen) = self.frozen.take() else {
            return; // stale commit after a rollback
        };
        if frozen.round != round {
            self.frozen = Some(frozen);
            return;
        }
        let FrozenState {
            mut staged,
            channel_msgs,
            deferred,
            out_queue,
            ..
        } = *frozen;
        staged.channel_state = channel_msgs.clone();
        self.cold.store.commit(
            ClcMeta {
                sn,
                ddv: ddv.clone(),
                committed_at: now,
                forced,
            },
            staged,
        );
        self.sn = sn;
        // The commit's shared stamp *is* the live DDV, the stored stamp
        // and the new outgoing piggyback — no per-node vector clone.
        self.ddv = ddv;
        self.dirty = true;
        out.push(Output::StoreCommitted { sn });
        if self.is_coordinator() {
            out.push(Output::Committed { sn, forced });
            out.push(Output::ResetClcTimer);
        }
        // Deliver the channel state (messages that arrived while frozen).
        for (from, payload) in channel_msgs {
            out.push(Output::DeliverApp { from, payload });
        }
        // Held inter-cluster messages may now be deliverable.
        self.recheck_pending(out);
        // Re-process inter-cluster messages deferred by the freeze.
        for (from, msg) in deferred {
            self.handle_msg(now, from, msg, out);
        }
        // Release the application sends queued during the freeze.
        for (to, payload) in out_queue {
            if let Some(f) = self.frozen.as_mut() {
                // A nested forced round already started; keep them frozen.
                f.out_queue.push((to, payload));
            } else {
                self.do_send(to, payload, out);
            }
        }
        // Coordinator: start a follow-up round if relevant reasons queued.
        if self.is_coordinator() {
            self.coord_maybe_start(now, out);
        }
    }

    // ---- 2PC: coordinator side ---------------------------------------------

    fn coord_init(&mut self, now: SimTime, reason: ClcReason, out: &mut OutputBuf) {
        if !self.reason_relevant(&reason) {
            return;
        }
        match self.cold.coord.current {
            Some(ref mut round) => round.reasons.push(reason),
            None => {
                self.cold.coord.queued.push(reason);
                self.coord_maybe_start(now, out);
            }
        }
    }

    fn on_clc_timer(&mut self, now: SimTime, out: &mut OutputBuf) {
        if !self.is_coordinator() {
            return;
        }
        self.coord_init(now, ClcReason::Timer, out);
    }

    fn reason_relevant(&self, reason: &ClcReason) -> bool {
        match reason {
            ClcReason::Timer => true,
            ClcReason::Forced(piggy, cluster) => self.needs_forced_clc(piggy, *cluster),
        }
    }

    fn coord_maybe_start(&mut self, now: SimTime, out: &mut OutputBuf) {
        if self.cold.coord.current.is_some() {
            return;
        }
        let reasons: Vec<ClcReason> = std::mem::take(&mut self.cold.coord.queued)
            .into_iter()
            .filter(|r| self.reason_relevant(r))
            .collect();
        if reasons.is_empty() {
            return;
        }
        self.cold.coord.next_round += 1;
        let round = self.cold.coord.next_round;
        self.cold.coord.current = Some(RoundState {
            round,
            acked: vec![false; self.cluster_size() as usize],
            ack_count: 0,
            reasons,
        });
        let epoch = self.epoch;
        self.broadcast_cluster(now, Msg::ClcRequest { round, epoch }, out);
    }

    fn coord_ack(&mut self, now: SimTime, round: u64, rank: u32, out: &mut OutputBuf) {
        let size = self.cluster_size();
        let complete = match self.cold.coord.current.as_mut() {
            Some(r) if r.round == round => {
                let idx = rank as usize;
                if idx < r.acked.len() && !r.acked[idx] {
                    r.acked[idx] = true;
                    r.ack_count += 1;
                }
                r.ack_count == size
            }
            _ => false,
        };
        if !complete {
            return;
        }
        let round_state = self.cold.coord.current.take().expect("round exists");
        // Compute the committed stamp: apply every DDV raise, then bump SN.
        // The one DDV allocation of the whole CLC round happens here, at
        // the coordinator; everyone else shares the broadcast `Arc`.
        let mut ddv = (*self.ddv).clone();
        let mut forced = false;
        for reason in &round_state.reasons {
            match reason {
                ClcReason::Timer => {}
                ClcReason::Forced(Piggyback::Sn(sn), cluster) => {
                    ddv.raise(*cluster, *sn);
                    forced = true;
                }
                ClcReason::Forced(Piggyback::Ddv(d), _) => {
                    ddv.merge_max(d);
                    forced = true;
                }
            }
        }
        let sn = self.sn.next();
        ddv.set(self.my_cluster(), sn);
        let epoch = self.epoch;
        self.broadcast_cluster(
            now,
            Msg::ClcCommit {
                round: round_state.round,
                sn,
                ddv: Arc::new(ddv),
                forced,
                epoch,
            },
            out,
        );
    }

    // ---- rollback ----------------------------------------------------------

    fn on_detect_faults(&mut self, failed_ranks: &[u32], out: &mut OutputBuf) {
        if !self
            .cfg
            .replication
            .recoverable(failed_ranks, self.cluster_size())
        {
            for &failed_rank in failed_ranks {
                out.push(Output::Unrecoverable { failed_rank });
            }
            return;
        }
        let restore_sn = self
            .cold
            .store
            .latest()
            .expect("initial CLC always exists")
            .meta
            .sn;
        self.initiate_cluster_rollback(restore_sn, out);
    }

    /// Roll the whole cluster back to `restore_sn` and alert the federation.
    fn initiate_cluster_rollback(&mut self, restore_sn: SeqNum, out: &mut OutputBuf) {
        let new_epoch = self.epoch + 1;
        let my_rank = self.id.rank;
        self.send_to_other_ranks(
            &Msg::RollbackOrder {
                restore_sn,
                epoch: new_epoch,
                new_coordinator: self.cold.coordinator_rank,
            },
            out,
        );
        let coord_rank = self.cold.coordinator_rank;
        self.apply_rollback(restore_sn, new_epoch, coord_rank, out);
        // Alert every other cluster (paper §3.4), sent by the node that
        // initiated recovery.
        let my_cluster = self.my_cluster();
        for c in 0..self.cfg.num_clusters() {
            if c != my_cluster {
                out.push(Output::Send {
                    to: self.coordinator_of(c),
                    msg: Msg::RollbackAlert {
                        origin: my_cluster,
                        sn: restore_sn,
                        origin_epoch: new_epoch,
                    },
                });
            }
        }
        let _ = my_rank;
    }

    fn apply_rollback(
        &mut self,
        restore_sn: SeqNum,
        epoch: u64,
        new_coordinator: u32,
        out: &mut OutputBuf,
    ) {
        if epoch <= self.epoch {
            return; // stale or duplicate order
        }
        self.epoch = epoch;
        self.cold.coordinator_rank = new_coordinator;
        self.failed = false;
        let entry = self
            .cold
            .store
            .get(restore_sn)
            .expect("rollback target must be stored");
        self.sn = restore_sn;
        self.ddv = entry.meta.ddv.clone();
        self.delivered = entry.payload.delivered.clone();
        let restored_app = entry.payload.app_state.clone();
        self.cold.app_state = restored_app.clone();
        let channel_replay = entry.payload.channel_state.clone();
        let discarded = self.cold.store.truncate_after(restore_sn);
        self.log.truncate_after_rollback(restore_sn);
        self.frozen = None;
        self.pending_inter.clear();
        self.cold.coord.current = None;
        self.cold.coord.queued.clear();
        self.cold.gc = None;
        self.dirty = false;
        out.push(Output::RolledBack {
            restore_sn,
            discarded_clcs: discarded,
        });
        out.push(Output::RestoreApp {
            state: restored_app,
        });
        // Re-deliver the channel state captured in the restored checkpoint:
        // the application state predates those deliveries.
        for (from, payload) in channel_replay {
            out.push(Output::DeliverApp { from, payload });
        }
        if self.is_coordinator() {
            out.push(Output::ResetClcTimer);
        }
    }

    fn on_alert(
        &mut self,
        now: SimTime,
        origin: usize,
        alert_sn: SeqNum,
        origin_epoch: u64,
        out: &mut OutputBuf,
    ) {
        debug_assert_ne!(origin, self.my_cluster(), "alert from own cluster");
        // Each restore of `origin` produces exactly one alert with a fresh
        // epoch: process each at most once.
        if origin_epoch <= self.cold.alert_seen[origin] {
            return;
        }
        self.cold.alert_seen[origin] = origin_epoch;
        self.min_epoch[origin] = self.min_epoch[origin].max(origin_epoch);

        let target = self
            .cold
            .store
            .rollback_target(origin, alert_sn)
            .map(|e| e.meta.sn);
        if let Some(target_sn) = target {
            let latest_sn = self.cold.store.latest().expect("nonempty").meta.sn;
            if target_sn < latest_sn || self.dirty {
                // Cascade: roll back and alert the others with our new SN.
                self.initiate_cluster_rollback(target_sn, out);
            }
            // Otherwise the live state already *is* the target checkpoint
            // (nothing material happened since the last restore): a
            // re-restore would change nothing, and re-alerting would only
            // echo — the no-progress cut that terminates cascades.
        }
        // Every node of the cluster scans its log against the alert
        // (paper §3.4). When we rolled back, the RollbackOrder precedes the
        // AlertLocal on every FIFO channel, so logs are truncated first.
        self.broadcast_cluster(
            now,
            Msg::AlertLocal {
                origin,
                sn: alert_sn,
                origin_epoch,
            },
            out,
        );
    }

    fn resend_logged(&mut self, origin: usize, alert_sn: SeqNum, out: &mut OutputBuf) {
        let to_resend: Vec<(LogId, usize, u32, AppPayload)> = self
            .log
            .to_resend(origin, alert_sn)
            .into_iter()
            .map(|e| (e.id, e.dest_cluster, e.dest_rank, e.payload))
            .collect();
        for (id, cluster, rank, payload) in to_resend {
            self.log.mark_resent(id);
            out.push(Output::Send {
                to: NodeId::new(cluster as u16, rank),
                msg: Msg::AppInter {
                    payload,
                    piggyback: self.current_piggyback(),
                    log_id: id,
                    resend: true,
                    sender_epoch: self.epoch,
                },
            });
        }
    }

    // ---- garbage collection --------------------------------------------------

    fn on_gc_timer(&mut self, out: &mut OutputBuf) {
        // Only the federation GC initiator (cluster 0's coordinator) runs
        // the centralized collection.
        if self.my_cluster() != 0 || !self.is_coordinator() || self.cold.gc.is_some() {
            return;
        }
        let mut lists = BTreeMap::new();
        lists.insert(self.my_cluster(), self.cold.store.ddv_list());
        self.cold.gc = Some(GcState { lists });
        let n = self.cfg.num_clusters();
        if n == 1 {
            self.gc_finish(SimTime::ZERO, out);
            return;
        }
        for c in 1..n {
            out.push(Output::Send {
                to: self.coordinator_of(c),
                msg: Msg::GcCollect,
            });
        }
    }

    fn on_gc_list(
        &mut self,
        now: SimTime,
        cluster: usize,
        list: Vec<(SeqNum, Arc<Ddv>)>,
        out: &mut OutputBuf,
    ) {
        let n = self.cfg.num_clusters();
        let complete = match self.cold.gc.as_mut() {
            Some(g) => {
                g.lists.insert(cluster, list);
                g.lists.len() == n
            }
            None => false,
        };
        if complete {
            self.gc_finish(now, out);
        }
    }

    fn gc_finish(&mut self, now: SimTime, out: &mut OutputBuf) {
        let mut g = self.cold.gc.take().expect("gc in progress");
        // Move the collected lists out — the stamps inside stay shared
        // with the stores they came from; nothing is deep-copied.
        let lists: Vec<Vec<(SeqNum, Arc<Ddv>)>> = (0..self.cfg.num_clusters())
            .map(|c| g.lists.remove(&c).expect("list collected"))
            .collect();
        let min_sns = gc::safe_minimum_sns_k(&lists, self.cfg.gc_fault_tolerance);
        for c in 1..self.cfg.num_clusters() {
            out.push(Output::Send {
                to: self.coordinator_of(c),
                msg: Msg::GcPrune {
                    min_sns: min_sns.clone(),
                },
            });
        }
        // Own cluster: relay + apply.
        self.send_to_other_ranks(
            &Msg::GcPrune {
                min_sns: min_sns.clone(),
            },
            out,
        );
        let _ = now;
        self.apply_gc_prune(&min_sns, out);
    }

    fn apply_gc_prune(&mut self, min_sns: &[SeqNum], out: &mut OutputBuf) {
        let before = self.cold.store.len();
        let min_sn = min_sns[self.my_cluster()];
        self.cold.store.prune_below(min_sn);
        let after = self.cold.store.len();
        if after < before {
            out.push(Output::StorePruned { min_sn });
        }
        for (c, &min_sn) in min_sns.iter().enumerate() {
            self.log.prune(c, min_sn);
        }
        if self.is_coordinator() {
            out.push(Output::GcReport { before, after });
        }
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    /// The simulator arena stores engines inline, so the inline size is
    /// what 100k-node sweeps keep cache-resident. The hot/cold split holds
    /// it to four cache lines (224 bytes at the time of writing, down from
    /// ~650 with `ColdState` and `FrozenState` inline). If this fires, the
    /// new field probably belongs in `ColdState` — or boxed, like the
    /// freeze window state.
    #[test]
    fn hot_engine_stays_within_four_cache_lines() {
        let hot = std::mem::size_of::<NodeEngine>();
        assert!(hot <= 256, "NodeEngine inline size grew to {hot} bytes");
        // The split only pays off while the cold side carries real weight.
        let cold = std::mem::size_of::<ColdState>();
        assert!(
            cold >= 128,
            "ColdState shrank to {cold} bytes — fold it back?"
        );
        // The freeze window (a whole staged checkpoint) must stay boxed:
        // it exists only between a ClcRequest and its commit.
        assert_eq!(std::mem::size_of::<Option<Box<FrozenState>>>(), 8);
    }
}
