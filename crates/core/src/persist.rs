//! Checkpoint persistence.
//!
//! The paper implements stable storage as in-memory neighbour replication
//! (one simultaneous fault per cluster). A deployment that must survive
//! whole-cluster power loss needs checkpoints on disk; this module
//! serializes a node's CLC store — protocol stamps, delivery records,
//! channel state and application snapshots — with the same hand-rolled
//! varint format as the wire codec (`codec`), and restores it byte-exactly.
//!
//! ## Format versions
//!
//! * **v1** wrote every checkpoint's delivery record in full. Old v1
//!   images still decode.
//! * **v2** (current) mirrors the in-memory copy-on-write
//!   [`DeliveredRecord`]: consecutive checkpoints in a store share their
//!   delivery-record prefix structurally, so each entry is written either
//!   as a *delta* against the previous entry (tag 1 — the common case,
//!   O(new deliveries) bytes) or in *full* (tag 0 — the first entry, or
//!   when the records do not share structure). Decoding rebuilds the same
//!   generation chain, so `encode(decode(bytes)) == bytes` for both
//!   representations, and entries within a record are always written in
//!   sorted key order, so images stay deterministic despite hash maps.

use crate::checkpoint::{DeliveredKey, DeliveredRecord, NodeCheckpoint};
use crate::codec::DecodeError;
use crate::msg::AppPayload;
use desim::SimTime;
use netsim::NodeId;
use std::io::{Read, Write};
use std::sync::Arc;
use storage::{ClcMeta, ClcStore, Ddv, SeqNum};

/// Magic bytes + format version at the head of a store image.
const MAGIC: &[u8; 4] = b"HC3I";
/// Legacy eager-copy store format (still decoded).
const STORE_VERSION_V1: u8 = 1;
/// Current copy-on-write store format (what `encode_store` writes).
const STORE_VERSION: u8 = 2;

/// Delivered-record encoding tags inside a v2 store entry.
const DELIVERED_FULL: u8 = 0;
const DELIVERED_DELTA: u8 = 1;

// Varint helpers (shared shape with `codec`, re-implemented locally to keep
// that module wire-only).
fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::VarintOverflow)
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u64(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, DecodeError> {
    let len = get_u64(buf, pos)? as usize;
    let b = buf.get(*pos..*pos + len).ok_or(DecodeError::Truncated)?;
    *pos += len;
    Ok(b.to_vec())
}

fn put_node(buf: &mut Vec<u8>, n: NodeId) {
    put_u64(buf, n.cluster.0 as u64);
    put_u64(buf, n.rank as u64);
}

fn get_node(buf: &[u8], pos: &mut usize) -> Result<NodeId, DecodeError> {
    let c = get_u64(buf, pos)? as u16;
    let r = get_u64(buf, pos)? as u32;
    Ok(NodeId::new(c, r))
}

fn put_ddv(buf: &mut Vec<u8>, ddv: &Ddv) {
    put_u64(buf, ddv.len() as u64);
    for e in ddv.iter() {
        put_u64(buf, e.0);
    }
}

fn get_ddv(buf: &[u8], pos: &mut usize) -> Result<Ddv, DecodeError> {
    let n = get_u64(buf, pos)? as usize;
    if n > 1 << 20 {
        return Err(DecodeError::VarintOverflow);
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(SeqNum(get_u64(buf, pos)?));
    }
    Ok(Ddv::from_entries(entries))
}

fn put_delivered_entries(buf: &mut Vec<u8>, entries: &[(DeliveredKey, SeqNum)]) {
    put_u64(buf, entries.len() as u64);
    for ((node, log_id), sn) in entries {
        put_node(buf, *node);
        put_u64(buf, *log_id);
        put_u64(buf, sn.0);
    }
}

fn get_delivered_entries(
    buf: &[u8],
    pos: &mut usize,
) -> Result<Vec<(DeliveredKey, SeqNum)>, DecodeError> {
    let n = get_u64(buf, pos)? as usize;
    if n > 1 << 28 {
        return Err(DecodeError::VarintOverflow);
    }
    let mut entries = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    for _ in 0..n {
        let node = get_node(buf, pos)?;
        let log_id = get_u64(buf, pos)?;
        let sn = SeqNum(get_u64(buf, pos)?);
        if !seen.insert((node, log_id)) {
            return Err(DecodeError::Invalid("duplicate delivery key"));
        }
        entries.push(((node, log_id), sn));
    }
    Ok(entries)
}

fn put_channel_and_app(buf: &mut Vec<u8>, ckpt: &NodeCheckpoint) {
    put_u64(buf, ckpt.channel_state.len() as u64);
    for (from, payload) in &ckpt.channel_state {
        put_node(buf, *from);
        put_u64(buf, payload.bytes);
        put_u64(buf, payload.tag);
    }
    match &ckpt.app_state {
        None => buf.push(0),
        Some(state) => {
            buf.push(1);
            put_bytes(buf, state);
        }
    }
}

/// Decoded channel-state and application-snapshot tail of a checkpoint.
type ChannelAndApp = (Vec<(NodeId, AppPayload)>, Option<Vec<u8>>);

fn get_channel_and_app(buf: &[u8], pos: &mut usize) -> Result<ChannelAndApp, DecodeError> {
    let m = get_u64(buf, pos)? as usize;
    if m > 1 << 28 {
        return Err(DecodeError::VarintOverflow);
    }
    let mut channel_state = Vec::with_capacity(m);
    for _ in 0..m {
        let from = get_node(buf, pos)?;
        let bytes = get_u64(buf, pos)?;
        let tag = get_u64(buf, pos)?;
        channel_state.push((from, AppPayload { bytes, tag }));
    }
    let has_app = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    let app_state = match has_app {
        0 => None,
        1 => Some(get_bytes(buf, pos)?),
        t => return Err(DecodeError::BadTag(t)),
    };
    Ok((channel_state, app_state))
}

/// Encode one node checkpoint in full (the v1 body layout: every delivery
/// written out, sorted for deterministic images).
pub fn encode_checkpoint(ckpt: &NodeCheckpoint) -> Vec<u8> {
    let mut buf = Vec::new();
    put_delivered_entries(&mut buf, &ckpt.delivered.sorted_entries());
    put_channel_and_app(&mut buf, ckpt);
    buf
}

/// Decode one full (v1-layout) node checkpoint.
pub fn decode_checkpoint(buf: &[u8], pos: &mut usize) -> Result<NodeCheckpoint, DecodeError> {
    let delivered = DeliveredRecord::from_entries(get_delivered_entries(buf, pos)?);
    let (channel_state, app_state) = get_channel_and_app(buf, pos)?;
    Ok(NodeCheckpoint {
        delivered,
        channel_state,
        app_state,
    })
}

/// Encode a checkpoint as a v2 store-entry body: the delivery record is a
/// structural delta against `prev` when the records share their base.
fn encode_checkpoint_v2(ckpt: &NodeCheckpoint, prev: Option<&DeliveredRecord>) -> Vec<u8> {
    let mut buf = Vec::new();
    match prev.and_then(|p| ckpt.delivered.delta_since(p)) {
        Some(mut delta) => {
            buf.push(DELIVERED_DELTA);
            delta.sort_unstable_by_key(|&(k, _)| k);
            put_delivered_entries(&mut buf, &delta);
        }
        None => {
            buf.push(DELIVERED_FULL);
            put_delivered_entries(&mut buf, &ckpt.delivered.sorted_entries());
        }
    }
    put_channel_and_app(&mut buf, ckpt);
    buf
}

/// Decode a v2 store-entry body, rebuilding the structural sharing with
/// the previous entry's record.
fn decode_checkpoint_v2(
    buf: &[u8],
    pos: &mut usize,
    prev: Option<&DeliveredRecord>,
) -> Result<NodeCheckpoint, DecodeError> {
    let tag = *buf.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    let delivered = match tag {
        DELIVERED_FULL => DeliveredRecord::new().extended_with(get_delivered_entries(buf, pos)?),
        DELIVERED_DELTA => {
            let prev = prev.ok_or(DecodeError::BadTag(tag))?;
            let entries = get_delivered_entries(buf, pos)?;
            // A delta shadowing keys the previous record already holds is
            // corrupt: the live engine only seals fresh deliveries.
            if entries.iter().any(|(k, _)| prev.get(k).is_some()) {
                return Err(DecodeError::Invalid("delta overlaps previous record"));
            }
            prev.extended_with(entries)
        }
        t => return Err(DecodeError::BadTag(t)),
    };
    let (channel_state, app_state) = get_channel_and_app(buf, pos)?;
    Ok(NodeCheckpoint {
        delivered,
        channel_state,
        app_state,
    })
}

/// The v2 checkpoint encoding as a [`storage::EntryCodec`]: what the
/// durable segment log ([`storage::DurableStore`]) writes per chain entry.
///
/// Each entry body is exactly the v2 store-entry body — a structural
/// delta against the previous chain entry's delivery record when they
/// share their base, a full record otherwise — so a durable log entry is
/// byte-identical to the corresponding span of [`encode_store`]'s image.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointCodec;

impl storage::EntryCodec for CheckpointCodec {
    type Payload = NodeCheckpoint;

    fn encode_payload(&self, payload: &NodeCheckpoint, prev: Option<&NodeCheckpoint>) -> Vec<u8> {
        encode_checkpoint_v2(payload, prev.map(|p| &p.delivered))
    }

    fn decode_payload(
        &self,
        buf: &[u8],
        prev: Option<&NodeCheckpoint>,
    ) -> Result<NodeCheckpoint, String> {
        let mut pos = 0usize;
        let ckpt = decode_checkpoint_v2(buf, &mut pos, prev.map(|p| &p.delivered))
            .map_err(|e| e.to_string())?;
        if pos != buf.len() {
            return Err(DecodeError::TrailingBytes(buf.len() - pos).to_string());
        }
        Ok(ckpt)
    }
}

/// Serialize a whole CLC store (all checkpoints, oldest first) in the
/// current (v2, copy-on-write) format.
pub fn encode_store(store: &ClcStore<NodeCheckpoint>) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.push(STORE_VERSION);
    put_u64(&mut buf, store.len() as u64);
    let mut prev: Option<&DeliveredRecord> = None;
    for entry in store.iter() {
        put_u64(&mut buf, entry.meta.sn.0);
        put_ddv(&mut buf, &entry.meta.ddv);
        put_u64(&mut buf, entry.meta.committed_at.nanos());
        buf.push(entry.meta.forced as u8);
        let body = encode_checkpoint_v2(&entry.payload, prev);
        put_bytes(&mut buf, &body);
        prev = Some(&entry.payload.delivered);
    }
    buf
}

/// Deserialize a CLC store image (v1 or v2).
pub fn decode_store(buf: &[u8]) -> Result<ClcStore<NodeCheckpoint>, DecodeError> {
    let mut pos = 0usize;
    let magic = buf.get(0..4).ok_or(DecodeError::Truncated)?;
    if magic != MAGIC {
        return Err(DecodeError::BadTag(*magic.first().unwrap_or(&0)));
    }
    pos += 4;
    let version = *buf.get(pos).ok_or(DecodeError::Truncated)?;
    pos += 1;
    if version != STORE_VERSION && version != STORE_VERSION_V1 {
        return Err(DecodeError::BadVersion(version));
    }
    let n = get_u64(buf, &mut pos)? as usize;
    if n > 1 << 24 {
        return Err(DecodeError::VarintOverflow);
    }
    let mut store = ClcStore::new();
    let mut prev: Option<DeliveredRecord> = None;
    for _ in 0..n {
        let sn = SeqNum(get_u64(buf, &mut pos)?);
        let ddv = get_ddv(buf, &mut pos)?;
        let committed_at = SimTime(get_u64(buf, &mut pos)?);
        let forced_byte = *buf.get(pos).ok_or(DecodeError::Truncated)?;
        pos += 1;
        let body = get_bytes(buf, &mut pos)?;
        let mut body_pos = 0usize;
        let payload = if version == STORE_VERSION_V1 {
            decode_checkpoint(&body, &mut body_pos)?
        } else {
            decode_checkpoint_v2(&body, &mut body_pos, prev.as_ref())?
        };
        if body_pos != body.len() {
            return Err(DecodeError::TrailingBytes(body.len() - body_pos));
        }
        // Semantic validation before `ClcStore::commit` (which *asserts*
        // these invariants): corrupt images must error, not panic.
        if let Some(last) = store.latest() {
            if sn <= last.meta.sn
                || ddv.len() != last.meta.ddv.len()
                || !last.meta.ddv.dominated_by(&ddv)
            {
                return Err(DecodeError::Invalid("non-monotone store entries"));
            }
        }
        prev = Some(payload.delivered.clone());
        store.commit(
            ClcMeta {
                sn,
                ddv: Arc::new(ddv),
                committed_at,
                forced: forced_byte != 0,
            },
            payload,
        );
    }
    if pos != buf.len() {
        return Err(DecodeError::TrailingBytes(buf.len() - pos));
    }
    Ok(store)
}

/// Write a store image to a file (atomically: temp file + rename).
pub fn save_store(store: &ClcStore<NodeCheckpoint>, path: &std::path::Path) -> std::io::Result<()> {
    let bytes = encode_store(store);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read a store image back from a file.
pub fn load_store(path: &std::path::Path) -> std::io::Result<ClcStore<NodeCheckpoint>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_store(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint(k: u64) -> NodeCheckpoint {
        let delivered = DeliveredRecord::from_entries([
            ((NodeId::new(0, 3), 7 + k), SeqNum(2)),
            ((NodeId::new(2, 0), 1), SeqNum(k + 1)),
        ]);
        NodeCheckpoint {
            delivered,
            channel_state: vec![(
                NodeId::new(0, 1),
                AppPayload {
                    bytes: 512,
                    tag: 40 + k,
                },
            )],
            app_state: k.is_multiple_of(2).then(|| vec![1, 2, 3, k as u8]),
        }
    }

    fn sample_store() -> ClcStore<NodeCheckpoint> {
        let mut store = ClcStore::new();
        for k in 1..=4u64 {
            let mut ddv = Ddv::zeros(3);
            ddv.set(1, SeqNum(k));
            ddv.raise(0, SeqNum(k / 2));
            store.commit(
                ClcMeta {
                    sn: SeqNum(k),
                    ddv: Arc::new(ddv),
                    committed_at: SimTime(k * 1_000_000),
                    forced: k.is_multiple_of(2),
                },
                sample_checkpoint(k),
            );
        }
        store
    }

    /// A store whose checkpoints share their delivery records the way a
    /// live engine's do: each entry structurally extends the previous.
    fn generational_store() -> ClcStore<NodeCheckpoint> {
        let mut store = ClcStore::new();
        let mut live = DeliveredRecord::new();
        for k in 1..=5u64 {
            live.insert((NodeId::new(1, (k % 3) as u32), 100 + k), SeqNum(k));
            let mut ddv = Ddv::zeros(2);
            ddv.set(0, SeqNum(k));
            store.commit(
                ClcMeta {
                    sn: SeqNum(k),
                    ddv: Arc::new(ddv),
                    committed_at: SimTime(k),
                    forced: false,
                },
                NodeCheckpoint {
                    delivered: live.seal(),
                    channel_state: vec![],
                    app_state: None,
                },
            );
        }
        store
    }

    fn stores_equal(a: &ClcStore<NodeCheckpoint>, b: &ClcStore<NodeCheckpoint>) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b.iter())
                .all(|(x, y)| x.meta == y.meta && x.payload == y.payload)
    }

    #[test]
    fn checkpoint_round_trips() {
        for k in 0..4 {
            let c = sample_checkpoint(k);
            let bytes = encode_checkpoint(&c);
            let mut pos = 0;
            let back = decode_checkpoint(&bytes, &mut pos).unwrap();
            assert_eq!(pos, bytes.len());
            assert_eq!(back.delivered, c.delivered);
            assert_eq!(back.channel_state, c.channel_state);
            assert_eq!(back.app_state, c.app_state);
        }
    }

    #[test]
    fn store_round_trips() {
        let store = sample_store();
        let bytes = encode_store(&store);
        let back = decode_store(&bytes).unwrap();
        assert!(stores_equal(&store, &back));
    }

    #[test]
    fn generational_store_round_trips_and_uses_deltas() {
        let store = generational_store();
        let bytes = encode_store(&store);
        let back = decode_store(&bytes).unwrap();
        assert!(stores_equal(&store, &back));
        // Image size is O(total deliveries), not O(n * deliveries): the
        // eager (all-full) encoding of the same content is strictly larger.
        let mut eager = Vec::new();
        eager.extend_from_slice(MAGIC);
        eager.push(STORE_VERSION);
        put_u64(&mut eager, store.len() as u64);
        for entry in store.iter() {
            put_u64(&mut eager, entry.meta.sn.0);
            put_ddv(&mut eager, &entry.meta.ddv);
            put_u64(&mut eager, entry.meta.committed_at.nanos());
            eager.push(entry.meta.forced as u8);
            let body = encode_checkpoint_v2(&entry.payload, None);
            put_bytes(&mut eager, &body);
        }
        assert!(
            bytes.len() < eager.len(),
            "delta image ({}) not smaller than eager image ({})",
            bytes.len(),
            eager.len()
        );
    }

    #[test]
    fn encoding_is_byte_stable_across_round_trips() {
        for store in [sample_store(), generational_store()] {
            let bytes = encode_store(&store);
            let reencoded = encode_store(&decode_store(&bytes).unwrap());
            assert_eq!(bytes, reencoded, "encode∘decode must be byte-stable");
        }
    }

    #[test]
    fn encoding_is_deterministic_despite_hashmap() {
        // The delivery record is hash-map backed; the image must still be
        // stable.
        let a = encode_store(&sample_store());
        let b = encode_store(&sample_store());
        assert_eq!(a, b);
    }

    /// Encode a store in the legacy v1 layout (every checkpoint in full,
    /// no version-2 delivered tag).
    fn encode_store_v1(store: &ClcStore<NodeCheckpoint>) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(STORE_VERSION_V1);
        put_u64(&mut buf, store.len() as u64);
        for entry in store.iter() {
            put_u64(&mut buf, entry.meta.sn.0);
            put_ddv(&mut buf, &entry.meta.ddv);
            put_u64(&mut buf, entry.meta.committed_at.nanos());
            buf.push(entry.meta.forced as u8);
            let body = encode_checkpoint(&entry.payload);
            put_bytes(&mut buf, &body);
        }
        buf
    }

    #[test]
    fn legacy_v1_images_still_decode() {
        for store in [sample_store(), generational_store()] {
            let v1 = encode_store_v1(&store);
            let back = decode_store(&v1).unwrap();
            assert!(stores_equal(&store, &back), "v1 image decodes to equal");
        }
    }

    #[test]
    fn corrupt_images_are_rejected_not_panicked() {
        let bytes = encode_store(&sample_store());
        for cut in 0..bytes.len() {
            assert!(decode_store(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_store(&bad).is_err(), "bad magic");
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_store(&bad),
            Err(DecodeError::BadVersion(99))
        ));
        let mut bad = bytes;
        bad.push(0);
        assert!(matches!(
            decode_store(&bad),
            Err(DecodeError::TrailingBytes(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let store = sample_store();
        let path =
            std::env::temp_dir().join(format!("hc3i-persist-test-{}.clc", std::process::id()));
        save_store(&store, &path).unwrap();
        let back = load_store(&path).unwrap();
        assert!(stores_equal(&store, &back));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let store: ClcStore<NodeCheckpoint> = ClcStore::new();
        let back = decode_store(&encode_store(&store)).unwrap();
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("hc3i-persist-does-not-exist.clc");
        assert!(load_store(&path).is_err());
    }
}
