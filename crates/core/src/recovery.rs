//! Recovery-line computation.
//!
//! The operational protocol computes the recovery line through cascading
//! rollback alerts (paper §3.4). This module provides the same computation
//! as a pure function over the clusters' stored `(SN, DDV)` lists. It is
//! used by:
//!
//! * the garbage collector, which "simulates a failure in each cluster and
//!   keeps the smallest SN to which the clusters of the federation might
//!   rollback" (paper §3.5);
//! * tests, which check the operational cascade converges to this line;
//! * the baselines, for rollback-depth comparisons.
//!
//! ## The rollback rule
//!
//! On an alert `(origin, s)` a cluster must discard state that depends on
//! `origin`'s execution *after* its restored CLC `s` — i.e. on messages
//! piggybacking an SN `>= s` (a message stamped `s` is sent after CLC `s`
//! commits). The key property (paper §3.2 mechanics): a message that
//! *raises* a DDV entry forces a CLC and is delivered only after that CLC
//! commits, so a CLC's **state** depends on `origin` only up to its
//! *predecessor's* DDV entry. The oldest CLC stamped `DDV[origin] >= s`
//! therefore has a clean state (its predecessor is `< s` by minimality)
//! and is the restore point — the paper's "first (the older) CLC which has
//! its DDV entry … greater than or equal to the received SN".

use std::sync::Arc;
use storage::{Ddv, SeqNum};

/// The stored checkpoints of one cluster: `(SN, DDV)` pairs, oldest first.
///
/// The stamps are `Arc`-shared with the stores they came from
/// ([`storage::ClcStore::ddv_list`]): the recovery-line and GC analyses
/// borrow the stored DDVs structurally instead of deep-copying one vector
/// per checkpoint per query.
pub type ClcList = Vec<(SeqNum, Arc<Ddv>)>;

/// The recovery line: for each cluster, the SN of the CLC it ends up
/// restoring (its current latest if it does not roll back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryLine {
    /// Restored SN per cluster.
    pub sns: Vec<SeqNum>,
    /// Which clusters restored a checkpoint — thereby losing their live
    /// post-checkpoint execution — including restores of their *latest*
    /// CLC (the paper's C1 in Figure 5 "has to rollback to its last CLC").
    pub rolled_back: Vec<bool>,
}

impl RecoveryLine {
    /// Number of clusters that rolled back.
    pub fn rollback_count(&self) -> usize {
        self.rolled_back.iter().filter(|&&b| b).count()
    }
}

/// Compute the recovery line after a failure in cluster `faulty`.
///
/// Models the alert cascade: the faulty cluster restores its newest CLC
/// and alerts everyone; a cluster whose newest surviving CLC is stamped
/// `DDV[origin] >= alert_sn` falls back to the *oldest* CLC with such a
/// stamp and emits its own alert; repeat to fixpoint. Positions only move
/// backwards, so the computation terminates.
///
/// # Panics
/// If any cluster has no stored CLC or `faulty` is out of range.
pub fn recovery_line(lists: &[ClcList], faulty: usize) -> RecoveryLine {
    recovery_line_multi(lists, &[faulty])
}

/// Compute the recovery line after **simultaneous** failures in every
/// cluster of `faulty_set` (the paper's §7 extension: "the protocol should
/// tolerate simultaneous faults in different clusters").
///
/// # Panics
/// If any cluster has no stored CLC, `faulty_set` is empty, or an index is
/// out of range.
pub fn recovery_line_multi(lists: &[ClcList], faulty_set: &[usize]) -> RecoveryLine {
    assert!(!faulty_set.is_empty(), "need at least one faulty cluster");
    for &faulty in faulty_set {
        assert!(faulty < lists.len(), "faulty cluster out of range");
    }
    for (c, l) in lists.iter().enumerate() {
        assert!(!l.is_empty(), "cluster {c} has no stored CLC");
    }
    // pos[j] = index into lists[j] of the checkpoint cluster j stands at.
    let mut pos: Vec<usize> = lists.iter().map(|l| l.len() - 1).collect();
    // Clusters that performed a restore (losing their live suffix).
    let mut reset = vec![false; lists.len()];

    // Every faulty cluster restores its newest stored CLC and alerts.
    let mut worklist: Vec<(usize, SeqNum)> = faulty_set
        .iter()
        .map(|&faulty| {
            reset[faulty] = true;
            (faulty, lists[faulty][pos[faulty]].0)
        })
        .collect();
    // Each (cluster, restored SN) alert is emitted at most once — the pure
    // analogue of the operational protocol's per-epoch alert dedup, and
    // what terminates echo cascades.
    let mut emitted: std::collections::HashSet<(usize, SeqNum)> =
        worklist.iter().copied().collect();

    while let Some((origin, alert_sn)) = worklist.pop() {
        for j in 0..lists.len() {
            if j == origin {
                continue;
            }
            if lists[j][pos[j]].1.get(origin) < alert_sn {
                continue; // no dependency on the lost suffix
            }
            // Oldest CLC (within the surviving prefix) stamped >= alert_sn.
            let first_offending = lists[j][..=pos[j]]
                .iter()
                .position(|(_, ddv)| ddv.get(origin) >= alert_sn)
                .expect("latest offends, so some entry does");
            // Even when the position does not move (the cluster restores
            // its current checkpoint), the restore discards the live
            // post-checkpoint segment, so the alert still propagates.
            pos[j] = first_offending;
            reset[j] = true;
            let alert = (j, lists[j][first_offending].0);
            if emitted.insert(alert) {
                worklist.push(alert);
            }
        }
    }

    RecoveryLine {
        sns: (0..lists.len()).map(|j| lists[j][pos[j]].0).collect(),
        rolled_back: reset,
    }
}

/// Check that per-cluster restored SNs form a *consistent cut*: no
/// cluster's restored **state** depends on the lost execution of a
/// cluster that rolled back. A CLC's state depends on cluster `i` only up
/// to the DDV entry of its *predecessor* (the entry-raising message is
/// delivered after the commit). A dependency on `i` at stamp `d` is a
/// ghost iff `i` rolled back (losing its execution after CLC `sns[i]`)
/// and `d >= sns[i]` (messages stamped `sns[i]` are sent after CLC
/// `sns[i]` commits). Clusters that did not roll back lose nothing.
pub fn is_consistent_cut(lists: &[ClcList], sns: &[SeqNum], rolled_back: &[bool]) -> bool {
    assert_eq!(lists.len(), sns.len());
    assert_eq!(lists.len(), rolled_back.len());
    for (j, list) in lists.iter().enumerate() {
        let Some(idx) = list.iter().position(|(sn, _)| *sn == sns[j]) else {
            return false; // restored SN not even stored
        };
        // The state at `idx` contains deliveries made before its commit,
        // bounded by the predecessor's stamp (initial CLC: no deliveries).
        if idx == 0 {
            continue;
        }
        let bound = &list[idx - 1].1;
        for (i, &sn_i) in sns.iter().enumerate() {
            if i == j || !rolled_back[i] {
                continue;
            }
            let dep = bound.get(i);
            if dep >= sn_i && dep > SeqNum::ZERO {
                return false; // state contains a delivery from i's lost suffix
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddv(entries: &[u64]) -> Arc<Ddv> {
        Arc::new(Ddv::from_entries(
            entries.iter().map(|&e| SeqNum(e)).collect(),
        ))
    }

    /// Three clusters, mirroring the paper's Figure 5 topology of
    /// dependencies (cluster indices 0,1,2 = paper's clusters 1,2,3).
    fn figure5_lists() -> Vec<ClcList> {
        let c0 = vec![
            (SeqNum(1), ddv(&[1, 0, 0])),
            (SeqNum(2), ddv(&[2, 0, 0])),
            (SeqNum(3), ddv(&[3, 0, 4])),
        ];
        let c1 = vec![
            (SeqNum(1), ddv(&[0, 1, 0])),
            (SeqNum(2), ddv(&[1, 2, 0])),
            (SeqNum(3), ddv(&[1, 3, 0])),
        ];
        let c2 = vec![
            (SeqNum(1), ddv(&[0, 0, 1])),
            (SeqNum(2), ddv(&[2, 0, 2])),
            (SeqNum(3), ddv(&[2, 3, 3])),
            (SeqNum(4), ddv(&[2, 3, 4])),
        ];
        vec![c0, c1, c2]
    }

    #[test]
    fn paper_figure5_fault_in_cluster2() {
        // The paper's scenario: fault in its cluster 2 (our index 1),
        // which restores its last CLC, SN 3, and sends Alert(3).
        // * Cluster 0 (paper C1): no DDV[1] entry >= 3 — does not roll.
        // * Cluster 2 (paper C3): oldest CLC with DDV[1] >= 3 is its CLC3
        //   ("has to rollback to the first CLC that has its associated DDV
        //   containing cluster 2 entry greater than or equal") -> SN 3,
        //   sends Alert(3).
        // * Cluster 0: oldest CLC with DDV[2] >= 3 is its CLC3 (DDV[2]=4)
        //   ("has to rollback to its last CLC which has 4 in cluster 3's
        //   entry") -> restores SN 3, alerts — nobody depends further.
        let lists = figure5_lists();
        let line = recovery_line(&lists, 1);
        assert_eq!(line.sns, vec![SeqNum(3), SeqNum(3), SeqNum(3)]);
        // All three clusters restore a checkpoint: C1 (our cluster 0)
        // "has to rollback to its last CLC" — a live-state reset.
        assert_eq!(line.rolled_back, vec![true, true, true]);
        assert!(is_consistent_cut(&lists, &line.sns, &line.rolled_back));
    }

    #[test]
    fn fault_at_pipeline_tail_hurts_nobody() {
        let lists = figure5_lists();
        // Cluster 2 (paper C3) fails: restores SN 4; cluster 0's CLC3 has
        // DDV[2]=4 >= 4 -> restores CLC3 (its first offending). Cluster 1
        // has no DDV[2] entries. Cluster 2's own alert cascade then stops.
        let line = recovery_line(&lists, 2);
        assert_eq!(line.sns, vec![SeqNum(3), SeqNum(3), SeqNum(4)]);
        assert!(!line.rolled_back[1]);
        assert!(is_consistent_cut(&lists, &line.sns, &line.rolled_back));
    }

    #[test]
    fn independent_clusters_never_roll_back() {
        let lists = vec![
            vec![(SeqNum(1), ddv(&[1, 0])), (SeqNum(2), ddv(&[2, 0]))],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[0, 2]))],
        ];
        let line = recovery_line(&lists, 0);
        assert_eq!(line.sns, vec![SeqNum(2), SeqNum(2)]);
        assert_eq!(line.rollback_count(), 1, "only the faulty cluster");
        assert!(is_consistent_cut(&lists, &line.sns, &line.rolled_back));
    }

    #[test]
    fn single_cluster_line_is_its_latest() {
        let lists = vec![vec![(SeqNum(1), ddv(&[1])), (SeqNum(5), ddv(&[5]))]];
        let line = recovery_line(&lists, 0);
        assert_eq!(line.sns, vec![SeqNum(5)]);
    }

    #[test]
    fn forced_clcs_stop_the_domino() {
        // Tight ping-pong history: every CLC records the other side's
        // latest. Under the oldest-offending rule the forced CLC itself is
        // the restore point, so one failure costs each cluster at most one
        // hop back — no domino.
        let mut c0 = vec![(SeqNum(1), ddv(&[1, 0]))];
        let mut c1 = vec![(SeqNum(1), ddv(&[0, 1]))];
        for k in 2..=10u64 {
            c0.push((SeqNum(k), ddv(&[k, k - 1])));
            c1.push((SeqNum(k), ddv(&[k, k])));
        }
        let lists = vec![c0, c1];
        let line = recovery_line(&lists, 0);
        // Cluster 0 restores SN 10. Cluster 1's oldest CLC with DDV[0] >=
        // 10 is its own SN 10 -> restores it, alerts with 10; cluster 0's
        // oldest with DDV[1] >= 10: none (max 9) -> stop.
        assert_eq!(line.sns, vec![SeqNum(10), SeqNum(10)]);
        assert!(is_consistent_cut(&lists, &line.sns, &line.rolled_back));
    }

    #[test]
    fn dependency_chain_cascades_one_hop_each() {
        // 0 -> 1 -> 2 pipeline with one dependency hop per stage.
        let lists = vec![
            vec![(SeqNum(1), ddv(&[1, 0, 0])), (SeqNum(2), ddv(&[2, 0, 0]))],
            vec![(SeqNum(1), ddv(&[0, 1, 0])), (SeqNum(2), ddv(&[2, 2, 0]))],
            vec![(SeqNum(1), ddv(&[0, 0, 1])), (SeqNum(2), ddv(&[0, 2, 2]))],
        ];
        // Fault in 0: restores SN 2 (losing the suffix where the SN-2
        // message was sent). Cluster 1's oldest CLC with DDV[0] >= 2 is
        // its CLC2 — restored, alert SN 2. Cluster 2's oldest with
        // DDV[1] >= 2 is its CLC2 — restored. Every cluster keeps SN 2:
        // the forced CLCs contain the recovery line.
        let line = recovery_line(&lists, 0);
        assert_eq!(line.sns, vec![SeqNum(2), SeqNum(2), SeqNum(2)]);
        assert!(is_consistent_cut(&lists, &line.sns, &line.rolled_back));
    }

    #[test]
    fn consistent_cut_checks_predecessor_stamps() {
        let lists = vec![
            vec![
                (SeqNum(1), ddv(&[1, 0])),
                (SeqNum(2), ddv(&[2, 3])),
                (SeqNum(3), ddv(&[3, 3])),
            ],
            vec![
                (SeqNum(1), ddv(&[0, 1])),
                (SeqNum(2), ddv(&[0, 2])),
                (SeqNum(3), ddv(&[0, 3])),
            ],
        ];
        // Cluster 0 at SN 3: its predecessor (SN 2) is stamped DDV[1]=3 —
        // its state contains deliveries from cluster 1's post-CLC-3
        // execution. If cluster 1 rolled back to 3, that is inconsistent…
        assert!(!is_consistent_cut(
            &lists,
            &[SeqNum(3), SeqNum(3)],
            &[true, true]
        ));
        // …but harmless when cluster 1 did NOT roll back (nothing lost).
        assert!(is_consistent_cut(
            &lists,
            &[SeqNum(3), SeqNum(3)],
            &[true, false]
        ));
        // Cluster 0 at SN 2 is fine even with both rolled back.
        assert!(is_consistent_cut(
            &lists,
            &[SeqNum(2), SeqNum(3)],
            &[true, true]
        ));
        // Unknown SN is inconsistent.
        assert!(!is_consistent_cut(
            &lists,
            &[SeqNum(9), SeqNum(3)],
            &[true, true]
        ));
    }

    #[test]
    fn alert_echo_terminates() {
        // Both clusters' newest CLCs reference each other at the newest
        // SNs — the echo case. The no-progress cut must still terminate
        // and produce a consistent line.
        let lists = vec![
            vec![(SeqNum(1), ddv(&[1, 0])), (SeqNum(2), ddv(&[2, 2]))],
            vec![(SeqNum(1), ddv(&[0, 1])), (SeqNum(2), ddv(&[2, 2]))],
        ];
        let line = recovery_line(&lists, 0);
        assert_eq!(line.sns, vec![SeqNum(2), SeqNum(2)]);
        assert!(is_consistent_cut(&lists, &line.sns, &line.rolled_back));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn faulty_out_of_range_panics() {
        recovery_line(&figure5_lists(), 7);
    }

    #[test]
    #[should_panic(expected = "no stored CLC")]
    fn empty_list_panics() {
        recovery_line(&[vec![]], 0);
    }
}
