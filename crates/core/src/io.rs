//! Engine inputs and outputs.
//!
//! The node engine is a pure state machine: it consumes one [`Input`] at a
//! time and emits the [`Output`] actions the hosting engine (discrete-
//! event simulator or threaded runtime) must perform into a caller-owned
//! [`OutputBuf`]. This is what lets the identical protocol code run under
//! both substrates — and, because the buffer is reusable, lets a host
//! drive millions of inputs without a heap allocation per event.

use crate::msg::{AppPayload, Msg};
use netsim::NodeId;
use std::sync::Arc;
use storage::SeqNum;

/// One stimulus for a node engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// A message arrived from `from`.
    Receive {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: Msg,
    },
    /// The application wants to send `payload` to `to`.
    AppSend {
        /// Destination node.
        to: NodeId,
        /// Payload.
        payload: AppPayload,
    },
    /// The cluster's periodic (unforced) CLC timer fired. Only meaningful at
    /// the cluster coordinator.
    ClcTimer,
    /// The federation GC timer fired. Only meaningful at the GC initiator.
    GcTimer,
    /// This node fails (fail-stop). It stops reacting to everything except a
    /// `RollbackOrder`, which revives it from stable storage.
    Fail,
    /// The failure detector reports `failed_rank` down. Delivered by the
    /// hosting engine to the surviving node that should coordinate recovery.
    DetectFault {
        /// The failed node's rank within this cluster.
        failed_rank: u32,
    },
    /// The failure detector reports several **simultaneous** in-cluster
    /// failures (paper §7 extension, meaningful with replication degree
    /// > 1). Recoverability is checked for the whole set at once.
    DetectFaults {
        /// The failed ranks within this cluster.
        failed_ranks: Vec<u32>,
    },
    /// The local application publishes its serialized state. The engine
    /// includes the most recent snapshot in every staged checkpoint and
    /// returns it via [`Output::RestoreApp`] after a rollback. (The paper's
    /// system model: the node "is able to save the processes states".)
    AppStateUpdate {
        /// Serialized application state.
        state: Vec<u8>,
    },
}

/// One action requested by a node engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// Put `msg` on the wire to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Msg,
    },
    /// Replicate this node's staged checkpoint fragment to its replica
    /// holders (all in the node's own cluster): one batched action per
    /// CLC freeze instead of one `Send` per holder. The hosting engine
    /// expands the batch into one [`Msg::FragmentReplica`] per holder *in
    /// holder order*, charging each the same wire bytes as an individual
    /// send — so network accounting and delivery ordering are identical
    /// to the unbatched fan-out, while the engine-side output is a single
    /// entry sharing the (engine-lifetime) holder list by reference.
    SendFragments {
        /// Replica-holder ranks within the sender's cluster.
        holders: Arc<[u32]>,
        /// The CLC round the fragment belongs to.
        round: u64,
        /// The sender's rollback epoch.
        epoch: u64,
    },
    /// Hand `payload` to the local application.
    DeliverApp {
        /// Original sender.
        from: NodeId,
        /// Payload.
        payload: AppPayload,
    },
    /// A CLC committed in this node's cluster (emitted by the coordinator
    /// only, once per CLC).
    Committed {
        /// The committed sequence number.
        sn: SeqNum,
        /// Whether an inter-cluster message forced it.
        forced: bool,
    },
    /// This node committed a CLC into its local store — emitted by
    /// **every** node of the cluster (unlike [`Output::Committed`], which
    /// only the coordinator emits for statistics). The hook a durability
    /// sink uses to append the freshly committed entry
    /// (`engine.store().get(sn)`) to its log.
    StoreCommitted {
        /// The committed sequence number.
        sn: SeqNum,
    },
    /// Garbage collection shrank this node's local store — emitted by
    /// every node whose store actually dropped entries (durability hook;
    /// the coordinator-only [`Output::GcReport`] carries the statistics).
    StorePruned {
        /// The safe-minimum bound the store was pruned below.
        min_sn: SeqNum,
    },
    /// This node restored the CLC numbered `restore_sn`.
    RolledBack {
        /// Restored sequence number.
        restore_sn: SeqNum,
        /// How many newer CLCs were discarded.
        discarded_clcs: usize,
    },
    /// (Re-)arm the cluster's unforced-CLC timer (coordinator only; the
    /// hosting engine applies the configured delay, cancelling any pending
    /// timer — the paper resets the timer at every commit).
    ResetClcTimer,
    /// Garbage collection ran on this node's cluster (coordinator only).
    GcReport {
        /// Stored CLCs before pruning.
        before: usize,
        /// Stored CLCs after pruning.
        after: usize,
    },
    /// The cluster cannot recover the failed node's fragment (more
    /// simultaneous faults than the replication degree tolerates).
    Unrecoverable {
        /// The rank whose fragment is lost.
        failed_rank: u32,
    },
    /// Consistency monitor: an intra-cluster message crossed a checkpoint
    /// boundary outside a freeze window (should never happen while the
    /// freeze-window assumption holds; counted, not fatal).
    LateCrossing {
        /// Sender of the crossing message.
        from: NodeId,
    },
    /// A rollback restored this application state (emitted right before
    /// the channel-state re-deliveries; `None` when the application never
    /// published a snapshot before the restored checkpoint).
    RestoreApp {
        /// The serialized state captured in the restored checkpoint.
        state: Option<Vec<u8>>,
    },
}

/// A reusable, caller-owned sink for the actions a [`NodeEngine`] emits.
///
/// Hosts keep one `OutputBuf` alive across events: `handle` appends into
/// it, the host [`drain`](OutputBuf::drain)s the actions, and the backing
/// storage is reused for the next event. On the simulator's hot path this
/// removes the per-event `Vec` allocation the engine used to return.
///
/// [`NodeEngine`]: crate::NodeEngine
#[derive(Debug, Default)]
pub struct OutputBuf {
    items: Vec<Output>,
}

impl OutputBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        OutputBuf { items: Vec::new() }
    }

    /// An empty buffer with room for `cap` outputs before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        OutputBuf {
            items: Vec::with_capacity(cap),
        }
    }

    /// Append one action.
    #[inline]
    pub fn push(&mut self, out: Output) {
        self.items.push(out);
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no action is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drop all buffered actions, keeping the backing storage.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// The buffered actions, in emission order.
    pub fn as_slice(&self) -> &[Output] {
        &self.items
    }

    /// Move every buffered action out, keeping the backing storage for
    /// reuse.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Output> {
        self.items.drain(..)
    }

    /// Consume the buffer, returning the buffered actions.
    pub fn into_vec(self) -> Vec<Output> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_buf_reuses_storage_across_drains() {
        let mut buf = OutputBuf::with_capacity(4);
        buf.push(Output::ResetClcTimer);
        buf.push(Output::ResetClcTimer);
        let cap = buf.items.capacity();
        assert_eq!(buf.drain().count(), 2);
        assert!(buf.is_empty());
        assert_eq!(buf.items.capacity(), cap, "drain keeps the allocation");
        buf.push(Output::ResetClcTimer);
        assert_eq!(buf.as_slice().len(), 1);
        assert_eq!(buf.into_vec().len(), 1);
    }
}
