//! Synchronous in-memory federation for protocol testing.
//!
//! [`InstantFederation`] wires a set of [`NodeEngine`]s through an instant,
//! reliable, FIFO network: every `Output::Send` is queued and dispatched in
//! order until quiescence. No timing model — this isolates the protocol
//! logic from the simulator, and is also handy for downstream crates'
//! tests and for the worked examples.

use crate::config::ProtocolConfig;
use crate::io::{Input, Output, OutputBuf};
use crate::msg::{AppPayload, Msg};
use crate::node::NodeEngine;
use desim::{SimDuration, SimTime};
use netsim::NodeId;
use std::collections::VecDeque;
use storage::SeqNum;

/// A recorded application delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Original sender.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The payload delivered.
    pub payload: AppPayload,
}

/// A federation of node engines joined by an instant FIFO network.
pub struct InstantFederation {
    cfg: ProtocolConfig,
    engines: Vec<Vec<NodeEngine>>,
    queue: VecDeque<(NodeId, NodeId, Msg)>,
    /// Reusable engine-output buffer (the sink `NodeEngine::handle` fills).
    buf: OutputBuf,
    now: SimTime,
    /// Every application delivery, in order.
    pub deliveries: Vec<Delivery>,
    /// Every committed CLC: `(cluster, sn, forced)`.
    pub commits: Vec<(usize, SeqNum, bool)>,
    /// Every cluster rollback observed at a coordinator:
    /// `(cluster, restored sn)`.
    pub rollbacks: Vec<(usize, SeqNum)>,
    /// GC reports: `(cluster, before, after)`.
    pub gc_reports: Vec<(usize, usize, usize)>,
    /// Unrecoverable-fault reports.
    pub unrecoverable: Vec<(usize, u32)>,
    /// Late-crossing monitor events.
    pub late_crossings: u64,
}

impl InstantFederation {
    /// Build a federation from `cfg`, all engines freshly initialized.
    pub fn new(cfg: ProtocolConfig) -> Self {
        let engines = (0..cfg.num_clusters())
            .map(|c| {
                (0..cfg.nodes_in(c))
                    .map(|r| NodeEngine::new(cfg.clone(), NodeId::new(c as u16, r)))
                    .collect()
            })
            .collect();
        InstantFederation {
            cfg,
            engines,
            queue: VecDeque::new(),
            buf: OutputBuf::new(),
            now: SimTime::ZERO,
            deliveries: vec![],
            commits: vec![],
            rollbacks: vec![],
            gc_reports: vec![],
            unrecoverable: vec![],
            late_crossings: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// Immutable access to one engine.
    pub fn engine(&self, id: NodeId) -> &NodeEngine {
        &self.engines[id.cluster.index()][id.rank as usize]
    }

    /// Feed `input` to `node`, then run the network to quiescence.
    pub fn input(&mut self, node: NodeId, input: Input) {
        self.inject(node, input);
        self.run_to_quiescence();
    }

    /// Feed `input` to `node` without draining the network; returns how
    /// many outputs the engine emitted. Used by tests that need to observe
    /// in-flight state mid-protocol.
    fn inject(&mut self, node: NodeId, input: Input) -> usize {
        self.now += SimDuration::from_nanos(1);
        let mut buf = std::mem::take(&mut self.buf);
        self.engines[node.cluster.index()][node.rank as usize].handle(self.now, input, &mut buf);
        let emitted = buf.len();
        self.absorb(node, &mut buf);
        self.buf = buf;
        emitted
    }

    /// Convenience: application send from `from` to `to`.
    pub fn app_send(&mut self, from: NodeId, to: NodeId, payload: AppPayload) {
        self.input(from, Input::AppSend { to, payload });
    }

    /// Convenience: fire the CLC timer of cluster `c`'s coordinator.
    pub fn fire_clc_timer(&mut self, c: usize) {
        self.input(self.cfg.initial_coordinator(c), Input::ClcTimer);
    }

    /// Convenience: fail a node and deliver detection to the recovery
    /// coordinator (the lowest-ranked surviving node).
    pub fn fail_node(&mut self, node: NodeId) {
        self.input(node, Input::Fail);
        let c = node.cluster.index();
        let detector = (0..self.cfg.nodes_in(c))
            .map(|r| NodeId::new(node.cluster.0, r))
            .find(|&n| !self.engine(n).is_failed())
            .expect("at least one survivor");
        self.input(
            detector,
            Input::DetectFault {
                failed_rank: node.rank,
            },
        );
    }

    /// Convenience: run a garbage collection now.
    pub fn run_gc(&mut self) {
        self.input(self.cfg.initial_coordinator(0), Input::GcTimer);
    }

    /// Total committed CLCs in cluster `c` recorded so far (excluding the
    /// initial CLC), split `(unforced, forced)`.
    pub fn clc_counts(&self, c: usize) -> (usize, usize) {
        let forced = self
            .commits
            .iter()
            .filter(|&&(cc, _, f)| cc == c && f)
            .count();
        let unforced = self
            .commits
            .iter()
            .filter(|&&(cc, _, f)| cc == c && !f)
            .count();
        (unforced, forced)
    }

    /// Payload tags delivered to `node`, in order.
    pub fn delivered_tags(&self, node: NodeId) -> Vec<u64> {
        self.deliveries
            .iter()
            .filter(|d| d.to == node)
            .map(|d| d.payload.tag)
            .collect()
    }

    fn absorb(&mut self, source: NodeId, outs: &mut OutputBuf) {
        for out in outs.drain() {
            match out {
                Output::Send { to, msg } => self.queue.push_back((source, to, msg)),
                Output::SendFragments {
                    holders,
                    round,
                    epoch,
                } => {
                    for &h in holders.iter() {
                        self.queue.push_back((
                            source,
                            NodeId::new(source.cluster.0, h),
                            Msg::FragmentReplica {
                                round,
                                owner: source.rank,
                                epoch,
                            },
                        ));
                    }
                }
                Output::DeliverApp { from, payload } => self.deliveries.push(Delivery {
                    from,
                    to: source,
                    payload,
                }),
                Output::Committed { sn, forced } => {
                    self.commits.push((source.cluster.index(), sn, forced))
                }
                Output::RolledBack { restore_sn, .. } => {
                    if source.rank == 0 {
                        self.rollbacks.push((source.cluster.index(), restore_sn));
                    }
                }
                Output::ResetClcTimer => {}
                // Durability hooks: no durable sink under the instant
                // federation.
                Output::StoreCommitted { .. } | Output::StorePruned { .. } => {}
                Output::GcReport { before, after } => {
                    self.gc_reports
                        .push((source.cluster.index(), before, after))
                }
                Output::Unrecoverable { failed_rank } => self
                    .unrecoverable
                    .push((source.cluster.index(), failed_rank)),
                Output::LateCrossing { .. } => self.late_crossings += 1,
                Output::RestoreApp { .. } => {}
            }
        }
    }

    fn run_to_quiescence(&mut self) {
        let mut budget = 1_000_000u64;
        let mut buf = std::mem::take(&mut self.buf);
        while let Some((from, to, msg)) = self.queue.pop_front() {
            budget = budget
                .checked_sub(1)
                .expect("instant federation did not quiesce");
            self.now += SimDuration::from_nanos(1);
            self.engines[to.cluster.index()][to.rank as usize].handle(
                self.now,
                Input::Receive { from, msg },
                &mut buf,
            );
            self.absorb(to, &mut buf);
        }
        self.buf = buf;
    }
}

#[cfg(test)]
impl InstantFederation {
    /// Test helper: dispatch exactly `k` queued messages.
    fn step_n(&mut self, k: usize) {
        let mut buf = std::mem::take(&mut self.buf);
        for _ in 0..k {
            let Some((from, to, msg)) = self.queue.pop_front() else {
                break;
            };
            self.now += SimDuration::from_nanos(1);
            self.engines[to.cluster.index()][to.rank as usize].handle(
                self.now,
                Input::Receive { from, msg },
                &mut buf,
            );
            self.absorb(to, &mut buf);
        }
        self.buf = buf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PiggybackMode;

    fn n(c: u16, r: u32) -> NodeId {
        NodeId::new(c, r)
    }

    fn pay(tag: u64) -> AppPayload {
        AppPayload { bytes: 1024, tag }
    }

    fn two_by_three() -> InstantFederation {
        InstantFederation::new(ProtocolConfig::new(vec![3, 3]))
    }

    // ---- coordinated checkpointing ----

    #[test]
    fn timer_clc_commits_cluster_wide() {
        let mut fed = two_by_three();
        fed.fire_clc_timer(0);
        for r in 0..3 {
            let e = fed.engine(n(0, r));
            assert_eq!(e.sn(), SeqNum(2), "node {r} committed");
            assert_eq!(e.ddv().get(0), SeqNum(2));
            assert_eq!(e.store().len(), 2, "initial + new CLC");
            assert!(!e.is_frozen());
        }
        // Cluster 1 untouched.
        assert_eq!(fed.engine(n(1, 0)).sn(), SeqNum(1));
        assert_eq!(fed.commits, vec![(0, SeqNum(2), false)]);
    }

    #[test]
    fn repeated_timers_increment_sn() {
        let mut fed = two_by_three();
        for k in 2..=5u64 {
            fed.fire_clc_timer(0);
            assert_eq!(fed.engine(n(0, 1)).sn(), SeqNum(k));
        }
        assert_eq!(fed.clc_counts(0), (4, 0));
    }

    #[test]
    fn single_node_cluster_commits_locally() {
        let mut fed = InstantFederation::new(ProtocolConfig::new(vec![1, 2]));
        fed.fire_clc_timer(0);
        assert_eq!(fed.engine(n(0, 0)).sn(), SeqNum(2));
    }

    // ---- application messaging ----

    #[test]
    fn intra_cluster_delivery() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 1), n(0, 2), pay(7));
        assert_eq!(fed.delivered_tags(n(0, 2)), vec![7]);
        assert_eq!(fed.late_crossings, 0);
        // Intra messages are never logged.
        assert!(fed.engine(n(0, 1)).log().is_empty());
    }

    #[test]
    fn first_inter_message_forces_clc() {
        let mut fed = two_by_three();
        // Sender SN is 1, receiver DDV[0] is 0: 1 > 0 forces a CLC
        // (paper §4: "this forces cluster 2 to take a CLC before
        // delivering m1").
        fed.app_send(n(0, 1), n(1, 2), pay(1));
        assert_eq!(fed.delivered_tags(n(1, 2)), vec![1]);
        assert_eq!(fed.clc_counts(1), (0, 1), "one forced CLC in cluster 1");
        let receiver = fed.engine(n(1, 2));
        assert_eq!(receiver.sn(), SeqNum(2));
        assert_eq!(receiver.ddv().get(0), SeqNum(1), "DDV tracks sender SN");
        // The sender's log got the post-commit ack (local SN + 1).
        let sender = fed.engine(n(0, 1));
        assert_eq!(sender.log().len(), 1);
        assert_eq!(sender.log().iter().next().unwrap().ack_sn, Some(SeqNum(2)));
    }

    #[test]
    fn second_message_same_sn_does_not_force() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 1), n(1, 2), pay(1));
        fed.app_send(n(0, 0), n(1, 1), pay(2)); // still sender SN 1
        assert_eq!(fed.clc_counts(1), (0, 1), "no second forced CLC");
        assert_eq!(fed.delivered_tags(n(1, 1)), vec![2]);
    }

    #[test]
    fn new_sender_clc_forces_again() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 1), n(1, 2), pay(1));
        fed.fire_clc_timer(0); // sender cluster SN -> 2 (its 3rd CLC? no: 2)
        fed.app_send(n(0, 1), n(1, 2), pay(2));
        assert_eq!(fed.clc_counts(1), (0, 2), "forced once per sender CLC");
        assert_eq!(fed.delivered_tags(n(1, 2)), vec![1, 2]);
    }

    #[test]
    fn concurrent_messages_coalesce_into_one_forced_clc() {
        // Both messages carry sender SN 1 and arrive before any commit:
        // the coordinator merges the raises into a single forced round.
        let mut fed = two_by_three();
        // Enqueue both sends before processing: inject without draining.
        fed.inject(
            n(0, 0),
            Input::AppSend {
                to: n(1, 1),
                payload: pay(1),
            },
        );
        fed.inject(
            n(0, 2),
            Input::AppSend {
                to: n(1, 2),
                payload: pay(2),
            },
        );
        fed.run_to_quiescence();
        assert_eq!(fed.clc_counts(1), (0, 1), "one coalesced forced CLC");
        assert_eq!(fed.deliveries.len(), 2);
    }

    #[test]
    fn full_ddv_mode_adds_transitivity() {
        let mut fed = InstantFederation::new(
            ProtocolConfig::new(vec![2, 2, 2]).with_piggyback(PiggybackMode::FullDdv),
        );
        // 0 -> 1: cluster 1 learns DDV[0]=1 (forced CLC #1 in cluster 1).
        fed.app_send(n(0, 0), n(1, 0), pay(1));
        // 1 -> 2: cluster 2 learns about cluster 1 AND cluster 0
        // transitively (forced CLC in cluster 2).
        fed.app_send(n(1, 0), n(2, 0), pay(2));
        assert_eq!(fed.engine(n(2, 0)).ddv().get(0), SeqNum(1));
        let forced_before = fed.clc_counts(2).1;
        // 0 -> 2 with SN 1: already covered transitively -> NO forced CLC.
        fed.app_send(n(0, 0), n(2, 0), pay(3));
        assert_eq!(
            fed.clc_counts(2).1,
            forced_before,
            "transitivity suppressed the force"
        );
        assert_eq!(fed.delivered_tags(n(2, 0)), vec![2, 3]);
    }

    #[test]
    fn sn_only_mode_lacks_transitivity() {
        let mut fed = InstantFederation::new(ProtocolConfig::new(vec![2, 2, 2]));
        fed.app_send(n(0, 0), n(1, 0), pay(1));
        fed.app_send(n(1, 0), n(2, 0), pay(2));
        assert_eq!(
            fed.engine(n(2, 0)).ddv().get(0),
            SeqNum(0),
            "SN-only carries no transitive info"
        );
        let forced_before = fed.clc_counts(2).1;
        fed.app_send(n(0, 0), n(2, 0), pay(3));
        assert_eq!(
            fed.clc_counts(2).1,
            forced_before + 1,
            "direct force needed"
        );
    }

    // ---- rollback ----

    #[test]
    fn fault_in_independent_cluster_rolls_back_only_itself() {
        let mut fed = two_by_three();
        fed.fire_clc_timer(0);
        fed.fire_clc_timer(1);
        fed.fail_node(n(0, 2));
        assert_eq!(fed.rollbacks, vec![(0, SeqNum(2))]);
        assert!(!fed.engine(n(0, 2)).is_failed(), "revived by rollback");
        assert_eq!(fed.engine(n(1, 0)).sn(), SeqNum(2), "cluster 1 untouched");
    }

    #[test]
    fn receiver_fault_triggers_log_replay_not_sender_rollback() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 1), n(1, 2), pay(9)); // forces CLC2 in cluster 1
        assert_eq!(fed.delivered_tags(n(1, 2)), vec![9]);
        // Receiver cluster fails and restores CLC2 — whose state predates
        // the delivery of tag 9. The sender must replay it.
        fed.fail_node(n(1, 1));
        assert_eq!(fed.rollbacks, vec![(1, SeqNum(2))]);
        // Sender cluster did not roll back…
        assert_eq!(fed.engine(n(0, 0)).sn(), SeqNum(1));
        // …and the message was re-delivered from the log exactly once more.
        assert_eq!(fed.delivered_tags(n(1, 2)), vec![9, 9]);
        assert_eq!(fed.late_crossings, 0);
    }

    #[test]
    fn sender_fault_cascades_to_dependent_receiver() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 1), n(1, 2), pay(5)); // cluster 1 forced CLC2, DDV[0]=1
                                                // Sender cluster fails with only its initial CLC stored: restores
                                                // SN 1 and loses the send. Cluster 1's CLC2 has DDV[0] = 1 >= 1 ->
                                                // cluster 1 restores CLC2 itself: the forced CLC committed before
                                                // the message was delivered, so its state is clean of the ghost.
        fed.fail_node(n(0, 0));
        assert!(fed.rollbacks.contains(&(0, SeqNum(1))));
        assert!(fed.rollbacks.contains(&(1, SeqNum(2))));
        let receiver = fed.engine(n(1, 2));
        assert_eq!(receiver.sn(), SeqNum(2));
        assert_eq!(
            receiver.ddv().get(0),
            SeqNum(1),
            "the stamp survives; the delivery does not"
        );
        // The restored checkpoint's delivery record is empty: the ghost
        // message is no longer marked delivered.
        assert_eq!(
            receiver.store().latest().unwrap().payload.delivered.len(),
            0
        );
        // The sender's log entry for the lost send was truncated.
        assert!(fed.engine(n(0, 1)).log().is_empty());
    }

    #[test]
    fn sender_checkpoint_then_fault_spares_receiver() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 1), n(1, 2), pay(5)); // forced CLC2 in cluster 1
        fed.fire_clc_timer(0); // sender commits CLC2 *after* the send
                               // Now the send predates the sender's restored CLC2? No: the send
                               // happened at sender SN 1, before CLC2. Restoring CLC2 keeps it.
        fed.fail_node(n(0, 0));
        assert_eq!(fed.rollbacks, vec![(0, SeqNum(2))]);
        assert_eq!(
            fed.engine(n(1, 2)).sn(),
            SeqNum(2),
            "receiver keeps its forced CLC: alert SN 2 > DDV[0]=1"
        );
        // Log entry survives the sender rollback (logged at SN 1 < 2).
        assert_eq!(fed.engine(n(0, 1)).log().len(), 1);
    }

    #[test]
    fn duplicate_suppression_on_replayed_messages() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 1), n(1, 2), pay(9));
        // Receiver commits another CLC *after* delivery; restoring it keeps
        // the delivery, so the replay (ack 2 >= alert 3? no — ack was 2,
        // alert 3 -> no resend at all).
        fed.fire_clc_timer(1);
        fed.fail_node(n(1, 1));
        assert_eq!(fed.rollbacks, vec![(1, SeqNum(3))]);
        assert_eq!(
            fed.delivered_tags(n(1, 2)),
            vec![9],
            "no replay needed: delivery survived in CLC3"
        );
    }

    #[test]
    fn unrecoverable_single_node_cluster() {
        let mut fed = InstantFederation::new(ProtocolConfig::new(vec![1, 2]));
        // A lone node has no replica holder: its fragment is lost.
        fed.input(n(0, 0), Input::Fail);
        // Detection must come from within the cluster; the lone node IS the
        // cluster, so deliver detection directly (it is failed, so use the
        // engine of cluster 1? No — recoverability is checked by the
        // detector's engine in the same cluster). Use the failed node's own
        // engine after revival-less detection: simplest is a fresh check.
        fed.input(
            n(0, 0),
            Input::Receive {
                from: n(0, 0),
                msg: Msg::RollbackOrder {
                    restore_sn: SeqNum(1),
                    epoch: 1,
                    new_coordinator: 0,
                },
            },
        );
        assert!(!fed.engine(n(0, 0)).is_failed(), "explicit order revives");
    }

    #[test]
    fn multi_fault_detection_reports_unrecoverable() {
        let mut fed = two_by_three();
        // Degree-1 replication: adjacent double fault loses a fragment.
        fed.input(n(0, 1), Input::Fail);
        fed.input(n(0, 2), Input::Fail);
        // Survivor checks recoverability of rank 1 while rank 2 (its
        // replica holder) is also down — the engine-level check only sees
        // single-fault recoverability, so emulate the detector asking about
        // the pair via replication policy:
        let policy = fed.config().replication;
        assert!(!policy.recoverable(&[1, 2], 3));
        // Single-rank detection still succeeds for a lone fault.
        fed.input(n(0, 0), Input::DetectFault { failed_rank: 1 });
        assert!(!fed.engine(n(0, 1)).is_failed());
    }

    // ---- garbage collection ----

    #[test]
    fn gc_prunes_old_clcs_everywhere() {
        let mut fed = two_by_three();
        for _ in 0..5 {
            fed.fire_clc_timer(0);
            fed.fire_clc_timer(1);
        }
        assert_eq!(fed.engine(n(0, 1)).store().len(), 6);
        fed.run_gc();
        // Independent clusters: only the latest CLC can ever be needed.
        for c in 0..2u16 {
            for r in 0..3 {
                assert_eq!(fed.engine(n(c, r)).store().len(), 1, "C{c} n{r}");
            }
        }
        assert_eq!(fed.gc_reports.len(), 2);
        assert_eq!(fed.gc_reports[0].1, 6, "before");
        assert_eq!(fed.gc_reports[0].2, 1, "after");
    }

    #[test]
    fn gc_keeps_dependency_needed_clcs() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 0), n(1, 0), pay(1)); // c1 forced CLC2 (DDV[0]=1)
        fed.fire_clc_timer(1); // c1 CLC3
        fed.run_gc();
        // Failure of cluster 0 restores SN 1 and loses the send; cluster 1
        // falls back to its forced CLC 2 (which recorded the dependency
        // before delivering). The initial CLC is prunable, CLC2 is not.
        let c1_store = fed.engine(n(1, 0)).store();
        assert_eq!(c1_store.len(), 2, "initial CLC pruned; CLC2 kept");
        // After cluster 0 checkpoints (send now protected), GC can prune.
        fed.fire_clc_timer(0);
        fed.run_gc();
        assert!(fed.engine(n(1, 0)).store().len() <= 2);
    }

    #[test]
    fn gc_prunes_acked_logs() {
        let mut fed = two_by_three();
        fed.app_send(n(0, 0), n(1, 0), pay(1)); // acked with SN 2
        fed.fire_clc_timer(0); // protect the send under CLC2
        fed.fire_clc_timer(1); // receiver at CLC3
        assert_eq!(fed.engine(n(0, 0)).log().len(), 1);
        fed.run_gc();
        // min for cluster 1 is 3 (no one depends on it); ack 2 < 3 ->
        // prunable.
        assert_eq!(fed.engine(n(0, 0)).log().len(), 0);
    }

    // ---- freeze-window behaviour ----

    #[test]
    fn gc_fault_tolerance_two_keeps_deeper_clcs() {
        // Same history, two GC settings: the k=2 collector must keep
        // every CLC that any *pair* of simultaneous failures could need,
        // so it can never prune more than the k=1 collector.
        let run = |k: usize| {
            let mut fed = InstantFederation::new(
                ProtocolConfig::new(vec![2, 2, 2]).with_gc_fault_tolerance(k),
            );
            // Interleaved cross traffic and checkpoints.
            fed.app_send(n(0, 0), n(1, 0), pay(1));
            fed.fire_clc_timer(0);
            fed.app_send(n(1, 0), n(2, 0), pay(2));
            fed.fire_clc_timer(1);
            fed.app_send(n(2, 0), n(0, 0), pay(3));
            fed.fire_clc_timer(2);
            fed.app_send(n(0, 1), n(2, 1), pay(4));
            fed.run_gc();
            (0..3u16)
                .map(|c| fed.engine(n(c, 0)).store().len())
                .collect::<Vec<_>>()
        };
        let k1 = run(1);
        let k2 = run(2);
        for (a, b) in k1.iter().zip(&k2) {
            assert!(b >= a, "k=2 pruned more than k=1: {k1:?} vs {k2:?}");
        }
    }

    #[test]
    fn multi_rank_detection_checks_joint_recoverability() {
        let mut fed = InstantFederation::new(ProtocolConfig::new(vec![4, 2]));
        fed.fire_clc_timer(0);
        fed.input(n(0, 1), Input::Fail);
        fed.input(n(0, 2), Input::Fail);
        // Adjacent pair at replication degree 1: rank 1's only replica
        // holder is rank 2.
        fed.input(
            n(0, 0),
            Input::DetectFaults {
                failed_ranks: vec![1, 2],
            },
        );
        assert_eq!(fed.unrecoverable.len(), 2, "both ranks reported lost");
        assert!(fed.engine(n(0, 1)).is_failed(), "no rollback happened");

        // Same pair at degree 2: jointly recoverable, cluster rolls back.
        let mut fed = InstantFederation::new(
            ProtocolConfig::new(vec![4, 2])
                .with_replication(storage::ReplicationPolicy::with_degree(2)),
        );
        fed.fire_clc_timer(0);
        fed.input(n(0, 1), Input::Fail);
        fed.input(n(0, 2), Input::Fail);
        fed.input(
            n(0, 0),
            Input::DetectFaults {
                failed_ranks: vec![1, 2],
            },
        );
        assert!(fed.unrecoverable.is_empty());
        assert!(!fed.engine(n(0, 1)).is_failed(), "revived");
        assert!(!fed.engine(n(0, 2)).is_failed(), "revived");
        assert_eq!(fed.rollbacks, vec![(0, SeqNum(2))]);
    }

    #[test]
    fn mutual_dependency_fault_terminates_without_domino() {
        // Both clusters' newest CLCs reference each other's newest SNs —
        // the alert-echo scenario. The cascade must terminate (the
        // quiescence budget enforces it), restore the forced CLCs rather
        // than unwinding to the start, and leave a consistent state.
        let mut fed = two_by_three();
        for round in 0..4u64 {
            fed.app_send(n(0, 0), n(1, 0), pay(round * 2 + 1));
            fed.app_send(n(1, 1), n(0, 1), pay(round * 2 + 2));
        }
        let sn_before_0 = fed.engine(n(0, 0)).sn();
        let sn_before_1 = fed.engine(n(1, 0)).sn();
        assert!(sn_before_0 >= SeqNum(4), "forced CLCs accumulated");

        fed.fail_node(n(0, 2));
        // No deep unwind: each cluster ends within one checkpoint of where
        // it was (the oldest-offending rule restores the *recording* CLC).
        let sn_after_0 = fed.engine(n(0, 0)).sn();
        let sn_after_1 = fed.engine(n(1, 0)).sn();
        assert!(
            sn_before_0.value() - sn_after_0.value() <= 1,
            "cluster 0 unwound {} -> {}",
            sn_before_0,
            sn_after_0
        );
        assert!(
            sn_before_1.value() - sn_after_1.value() <= 1,
            "cluster 1 unwound {} -> {}",
            sn_before_1,
            sn_after_1
        );
        assert_eq!(fed.late_crossings, 0);
        // Follow-up traffic still works after the cascade.
        fed.app_send(n(0, 0), n(1, 2), pay(99));
        assert!(fed.delivered_tags(n(1, 2)).contains(&99));
    }

    #[test]
    fn app_sends_issued_during_freeze_are_released_after_commit() {
        // Drive the 2PC manually so we can inject a send mid-freeze.
        let mut fed = two_by_three();
        fed.inject(n(0, 0), Input::ClcTimer);
        // The coordinator froze itself and broadcast requests; before
        // draining the queue, node 1 wants to send.
        assert!(fed.engine(n(0, 0)).is_frozen());
        // Node 1 is not frozen yet (request still queued) so this sends
        // immediately; freeze IT first instead: drain, then test on a
        // second round. Simplest deterministic check: coordinator's own
        // sends while frozen are queued.
        fed.inject(
            n(0, 1),
            Input::AppSend {
                to: n(0, 2),
                payload: pay(42),
            },
        );
        let emitted = fed.inject(
            n(0, 0),
            Input::AppSend {
                to: n(0, 2),
                payload: pay(43),
            },
        );
        assert_eq!(emitted, 0, "send frozen during 2PC");
        fed.run_to_quiescence();
        let tags = fed.delivered_tags(n(0, 2));
        assert!(tags.contains(&42) && tags.contains(&43), "tags {tags:?}");
        assert_eq!(fed.engine(n(0, 0)).sn(), SeqNum(2));
    }

    #[test]
    fn intra_messages_arriving_during_freeze_become_channel_state() {
        let mut fed = two_by_three();
        // Freeze the whole cluster: fire timer, but intercept before
        // delivering the commit by interleaving a message into the queue.
        fed.inject(n(0, 0), Input::ClcTimer);
        // Deliver the requests to nodes 1 and 2 manually.
        fed.step_n(2);
        assert!(fed.engine(n(0, 1)).is_frozen());
        // Node 1 already sent a message to node 2 logically "in flight":
        // inject an AppIntra delivery to the frozen node 2.
        let emitted = fed.inject(
            n(0, 2),
            Input::Receive {
                from: n(0, 1),
                msg: Msg::AppIntra {
                    payload: pay(77),
                    sent_at_sn: SeqNum(1),
                },
            },
        );
        assert_eq!(emitted, 0, "queued as channel state, not delivered");
        fed.run_to_quiescence();
        // Delivered at commit…
        assert_eq!(fed.delivered_tags(n(0, 2)), vec![77]);
        // …and recorded in the committed checkpoint.
        let store = fed.engine(n(0, 2)).store();
        let latest = store.latest().unwrap();
        assert_eq!(latest.payload.channel_state.len(), 1);
        assert_eq!(latest.payload.channel_state[0].1.tag, 77);
        assert_eq!(fed.late_crossings, 0);
    }
}
