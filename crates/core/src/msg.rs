//! Wire messages of the HC3I protocol.

use crate::config::ProtocolConfig;
use netsim::MessageClass;
use std::sync::Arc;
use storage::{Ddv, LogId, SeqNum};

/// An application payload as the protocol sees it: opaque content of a known
/// size, tagged by the workload layer for end-to-end tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppPayload {
    /// Payload size in bytes.
    pub bytes: u64,
    /// Workload-assigned tag (delivery tracking in tests and drivers).
    pub tag: u64,
}

/// Dependency information piggybacked on inter-cluster application
/// messages.
///
/// The DDV variant is `Arc`-shared: the sender's engine stamps one
/// immutable DDV snapshot per committed CLC and every message sent under
/// that stamp bumps a reference count instead of deep-cloning the vector,
/// so attaching dependency information no longer scales with the number of
/// clusters in the federation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piggyback {
    /// The sender cluster's SN (paper §3.2).
    Sn(SeqNum),
    /// The sender cluster's whole DDV (paper §7 transitive extension).
    Ddv(Arc<Ddv>),
}

impl Piggyback {
    /// The sender's own-cluster SN carried by this piggyback.
    pub fn sender_sn(&self, sender_cluster: usize) -> SeqNum {
        match self {
            Piggyback::Sn(sn) => *sn,
            Piggyback::Ddv(ddv) => ddv.get(sender_cluster),
        }
    }
}

/// Why a node asks its coordinator to start a CLC round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClcReason {
    /// The cluster's periodic checkpoint timer fired (unforced CLC).
    Timer,
    /// An inter-cluster message requires a forced CLC before delivery;
    /// carries the DDV raise(s) to apply at commit.
    Forced(Piggyback, usize),
}

/// Every message a node can put on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    // ---- intra-cluster: coordinated checkpointing (2PC) ----
    /// Node → coordinator: please start a CLC round.
    ClcInit {
        /// Why the round is needed.
        reason: ClcReason,
        /// Sender's rollback epoch (stale requests are dropped).
        epoch: u64,
    },
    /// Coordinator → cluster: freeze and stage your state.
    ClcRequest {
        /// Round identifier, unique within an epoch.
        round: u64,
        /// Coordinator's rollback epoch.
        epoch: u64,
    },
    /// Node → replica holder: here is my staged checkpoint fragment.
    FragmentReplica {
        /// Round this fragment belongs to.
        round: u64,
        /// Owner's rank (for the holder's bookkeeping).
        owner: u32,
        /// Rollback epoch.
        epoch: u64,
    },
    /// Replica holder → node: fragment safely stored.
    FragmentStored {
        /// Round this ack belongs to.
        round: u64,
        /// Holder's rank.
        holder: u32,
        /// Rollback epoch.
        epoch: u64,
    },
    /// Node → coordinator: staged and replicated, ready to commit.
    ClcAck {
        /// Round being acknowledged.
        round: u64,
        /// Acknowledging rank.
        rank: u32,
        /// Rollback epoch.
        epoch: u64,
    },
    /// Coordinator → cluster: commit the staged checkpoint.
    ClcCommit {
        /// Round being committed.
        round: u64,
        /// The sequence number this CLC commits as.
        sn: SeqNum,
        /// The DDV stamped on this CLC (identical cluster-wide, so it is
        /// `Arc`-shared: broadcasting the commit to an `n`-node cluster
        /// clones a pointer, not `n` vectors).
        ddv: Arc<Ddv>,
        /// Whether an inter-cluster message forced this CLC.
        forced: bool,
        /// Rollback epoch.
        epoch: u64,
    },

    // ---- application traffic ----
    /// Intra-cluster application message.
    AppIntra {
        /// The payload.
        payload: AppPayload,
        /// Sender's cluster SN at send time (consistency monitoring).
        sent_at_sn: SeqNum,
    },
    /// Inter-cluster application message with piggybacked dependency info.
    AppInter {
        /// The payload.
        payload: AppPayload,
        /// Piggybacked SN or DDV.
        piggyback: Piggyback,
        /// The sender's log entry id (ack routing + receiver-side dedup).
        log_id: LogId,
        /// True when this is a replay from the sender's log.
        resend: bool,
        /// The sender cluster's rollback epoch (incarnation). Receivers
        /// drop messages from incarnations the federation knows to be
        /// dead: in-flight sends of a rolled-back execution are ghosts.
        sender_epoch: u64,
    },
    /// Receiver → sender: inter-cluster message delivered at this SN.
    InterAck {
        /// The sender's log entry being acknowledged.
        log_id: LogId,
        /// Receiver cluster's SN at delivery.
        receiver_sn: SeqNum,
    },

    // ---- rollback ----
    /// Recovery coordinator → cluster: restore the CLC numbered
    /// `restore_sn` and enter `epoch`.
    RollbackOrder {
        /// SN of the CLC to restore.
        restore_sn: SeqNum,
        /// The new (strictly larger) rollback epoch.
        epoch: u64,
        /// Rank acting as coordinator from now on.
        new_coordinator: u32,
    },
    /// Cluster coordinator → other clusters: we rolled back to `sn`.
    RollbackAlert {
        /// The cluster that rolled back.
        origin: usize,
        /// Its restored SN.
        sn: SeqNum,
        /// The origin cluster's new rollback epoch. Used to process each
        /// alert exactly once and to reject the dead incarnation's
        /// in-flight messages.
        origin_epoch: u64,
    },
    /// Coordinator → cluster: scan your logs against this alert (and the
    /// paper's intra-cluster alert re-broadcast).
    AlertLocal {
        /// The cluster that rolled back.
        origin: usize,
        /// Its restored SN.
        sn: SeqNum,
        /// The origin cluster's new rollback epoch.
        origin_epoch: u64,
    },

    // ---- garbage collection ----
    /// GC initiator → cluster coordinator: send your CLC DDV list.
    GcCollect,
    /// Cluster coordinator → GC initiator: stored `(SN, DDV)` pairs.
    GcDdvList {
        /// Reporting cluster.
        cluster: usize,
        /// Its stored checkpoints' stamps, oldest first. `Arc`-shared
        /// with the reporting store in-process (assembling the list clones
        /// pointers); the wire codec still serializes the stamps by value,
        /// so [`Msg::wire_bytes`] and the on-wire format are unchanged.
        list: Vec<(SeqNum, Arc<Ddv>)>,
    },
    /// GC initiator → everyone (via coordinators): safe minimum SNs.
    GcPrune {
        /// Per-cluster smallest SN any failure could force a rollback to.
        min_sns: Vec<SeqNum>,
    },

    // ---- host-level reliable transport (lossy networks) ----
    /// Reliability envelope around an inter-cluster message on a lossy
    /// network: the sending host assigns `seq` per directed node pair,
    /// retransmits with exponential backoff until acknowledged, and the
    /// receiving host dedups by `seq` before handing `inner` to the
    /// engine. Engines never see this variant (see [`crate::xport`]).
    Reliable {
        /// Per-directed-node-pair transport sequence number.
        seq: u64,
        /// The protocol message being carried.
        inner: Box<Msg>,
    },
    /// Receiving host → sending host: [`Msg::Reliable`] copy `seq`
    /// arrived. Sent unreliably — a lost ack is covered by the sender's
    /// retransmission plus the receiver's dedup.
    XportAck {
        /// The transport sequence being acknowledged.
        seq: u64,
    },
}

impl Msg {
    /// Accounting class of this message.
    pub fn class(&self) -> MessageClass {
        match self {
            Msg::AppIntra { .. } | Msg::AppInter { .. } => MessageClass::App,
            Msg::InterAck { .. } | Msg::XportAck { .. } => MessageClass::Ack,
            Msg::Reliable { inner, .. } => inner.class(),
            _ => MessageClass::Protocol,
        }
    }

    /// Bytes this message occupies on the wire under `cfg`'s size model.
    pub fn wire_bytes(&self, cfg: &ProtocolConfig) -> u64 {
        let s = &cfg.sizes;
        match self {
            Msg::AppIntra { payload, .. } => payload.bytes,
            Msg::AppInter {
                payload, piggyback, ..
            } => {
                payload.bytes
                    + match piggyback {
                        Piggyback::Sn(_) => 8,
                        Piggyback::Ddv(_) => cfg.ddv_bytes(),
                    }
            }
            Msg::InterAck { .. } => s.ack,
            Msg::FragmentReplica { .. } => s.fragment,
            Msg::ClcCommit { .. } => s.control + cfg.ddv_bytes(),
            Msg::GcDdvList { list, .. } => s.control + list.len() as u64 * (8 + cfg.ddv_bytes()),
            Msg::GcPrune { min_sns } => s.control + 8 * min_sns.len() as u64,
            Msg::Reliable { inner, .. } => inner.wire_bytes(cfg) + 8,
            Msg::XportAck { .. } => s.ack,
            _ => s.control,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::new(vec![2, 2, 2])
    }

    #[test]
    fn classes_are_correct() {
        let p = AppPayload { bytes: 10, tag: 0 };
        assert_eq!(
            Msg::AppIntra {
                payload: p,
                sent_at_sn: SeqNum(1)
            }
            .class(),
            MessageClass::App
        );
        assert_eq!(
            Msg::InterAck {
                log_id: LogId(0),
                receiver_sn: SeqNum(1)
            }
            .class(),
            MessageClass::Ack
        );
        assert_eq!(
            Msg::ClcRequest { round: 1, epoch: 0 }.class(),
            MessageClass::Protocol
        );
        assert_eq!(Msg::GcCollect.class(), MessageClass::Protocol);
    }

    #[test]
    fn piggyback_sender_sn() {
        assert_eq!(Piggyback::Sn(SeqNum(4)).sender_sn(2), SeqNum(4));
        let ddv = Ddv::from_entries(vec![SeqNum(1), SeqNum(2), SeqNum(3)]);
        assert_eq!(Piggyback::Ddv(Arc::new(ddv)).sender_sn(2), SeqNum(3));
    }

    #[test]
    fn wire_bytes_scale_with_content() {
        let cfg = cfg();
        let p = AppPayload {
            bytes: 1000,
            tag: 0,
        };
        let sn_msg = Msg::AppInter {
            payload: p,
            piggyback: Piggyback::Sn(SeqNum(1)),
            log_id: LogId(0),
            resend: false,
            sender_epoch: 0,
        };
        let ddv_msg = Msg::AppInter {
            payload: p,
            piggyback: Piggyback::Ddv(Arc::new(Ddv::zeros(3))),
            log_id: LogId(0),
            resend: false,
            sender_epoch: 0,
        };
        assert_eq!(sn_msg.wire_bytes(&cfg), 1008);
        assert_eq!(ddv_msg.wire_bytes(&cfg), 1024, "3 clusters x 8 bytes");
        assert!(
            Msg::FragmentReplica {
                round: 0,
                owner: 0,
                epoch: 0
            }
            .wire_bytes(&cfg)
                > 1 << 20,
            "fragments are the big transfers"
        );
        let list = vec![(SeqNum(1), Arc::new(Ddv::zeros(3))); 4];
        assert_eq!(
            Msg::GcDdvList { cluster: 0, list }.wire_bytes(&cfg),
            64 + 4 * (8 + 24)
        );
    }
}
