//! Model-based property test: the cancellable event queue behaves exactly
//! like a reference implementation built on `BTreeMap`.

use desim::{EventQueue, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    /// Push an event at the given (small) time.
    Push(u64),
    /// Pop the earliest event.
    Pop,
    /// Batch-drain up to n events of the head instant via `pop_if_at`.
    PopBatch(usize),
    /// `pop_if_at` at a time that may not be the head instant (usually a
    /// miss — must take nothing).
    PopAt(u64),
    /// Cancel the k-th key handed out so far (if any).
    Cancel(usize),
    /// Peek the earliest pending time.
    Peek,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..50).prop_map(Op::Push),
        3 => Just(Op::Pop),
        2 => (1usize..6).prop_map(Op::PopBatch),
        1 => (0u64..50).prop_map(Op::PopAt),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::Cancel(i.index(64))),
        1 => Just(Op::Peek),
    ]
}

/// Reference model: BTreeMap keyed by (time, seq) with a cancelled set.
#[derive(Default)]
struct Model {
    live: BTreeMap<(u64, u64), u64>, // (time, seq) -> value
    next_seq: u64,
}

impl Model {
    fn push(&mut self, t: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert((t, seq), seq);
        seq
    }
    fn pop(&mut self) -> Option<(u64, u64)> {
        let (&key, &v) = self.live.iter().next()?;
        self.live.remove(&key);
        Some((key.0, v))
    }
    fn cancel(&mut self, seq: u64) -> bool {
        let key = self
            .live
            .iter()
            .find(|(&(_, s), _)| s == seq)
            .map(|(&k, _)| k);
        match key {
            Some(k) => {
                self.live.remove(&k);
                true
            }
            None => false,
        }
    }
    fn peek(&self) -> Option<u64> {
        self.live.keys().next().map(|&(t, _)| t)
    }
    /// Pop the earliest event only if it fires exactly at `t`.
    fn pop_if_at(&mut self, t: u64) -> Option<u64> {
        if self.peek() != Some(t) {
            return None;
        }
        self.pop().map(|(_, v)| v)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut model = Model::default();
        let mut keys = Vec::new();
        let mut popped_seqs = std::collections::HashSet::new();

        for op in ops {
            match op {
                Op::Push(t) => {
                    let key = queue.push(SimTime(t), model.next_seq);
                    let seq = model.push(t);
                    prop_assert_eq!(key.raw(), seq);
                    keys.push(key);
                }
                Op::Pop => {
                    let got = queue.pop();
                    let want = model.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some((t, v)), Some((mt, mv))) => {
                            prop_assert_eq!(t, SimTime(mt));
                            prop_assert_eq!(v, mv);
                            popped_seqs.insert(v);
                        }
                        (g, w) => prop_assert!(false, "queue {g:?} vs model {w:?}"),
                    }
                }
                Op::PopBatch(n) => {
                    if let Some(at) = queue.peek_time() {
                        prop_assert_eq!(Some(at.nanos()), model.peek());
                        for _ in 0..n {
                            let got = queue.pop_if_at(at);
                            let want = model.pop_if_at(at.nanos());
                            prop_assert_eq!(got, want);
                            if got.is_none() {
                                break;
                            }
                        }
                    }
                }
                Op::PopAt(t) => {
                    let got = queue.pop_if_at(SimTime(t));
                    let want = model.pop_if_at(t);
                    prop_assert_eq!(got, want, "pop_if_at({t})");
                }
                Op::Cancel(i) => {
                    if keys.is_empty() {
                        continue;
                    }
                    let key = keys[i % keys.len()];
                    let got = queue.cancel(key);
                    let want = model.cancel(key.raw());
                    prop_assert_eq!(got, want, "cancel({})", key.raw());
                }
                Op::Peek => {
                    prop_assert_eq!(queue.peek_time(), model.peek().map(SimTime));
                }
            }
            prop_assert_eq!(queue.len(), model.live.len());
        }

        // Drain both and compare the tails.
        loop {
            match (queue.pop(), model.pop()) {
                (None, None) => break,
                (Some((t, v)), Some((mt, mv))) => {
                    prop_assert_eq!(t, SimTime(mt));
                    prop_assert_eq!(v, mv);
                }
                (g, w) => prop_assert!(false, "tail mismatch {g:?} vs {w:?}"),
            }
        }
    }
}
