//! Deterministic random-number streams.
//!
//! Every stochastic component of a simulation (per-node computation times,
//! communication pattern draws, fault schedule, …) gets its own named
//! stream, seeded by hashing the stream name into the root seed with
//! SplitMix64. Adding a new consumer therefore never perturbs the draws an
//! existing consumer sees — runs stay comparable across experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step — the standard seed-sequencing mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a byte string into a 64-bit value (FNV-1a), for stream naming.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Factory for independent, reproducible RNG streams.
#[derive(Debug, Clone)]
pub struct RngStreams {
    root_seed: u64,
}

impl RngStreams {
    /// Create a factory from a root seed.
    pub fn new(root_seed: u64) -> Self {
        RngStreams { root_seed }
    }

    /// The root seed this factory was built from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Derive a stream from a name and an index (e.g. `("compute", node)`).
    pub fn stream(&self, name: &str, index: u64) -> StdRng {
        let mut state = self
            .root_seed
            .wrapping_add(fnv1a(name.as_bytes()))
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        StdRng::from_seed(seed)
    }
}

/// Draw from an exponential distribution with the given mean, by inverse
/// transform. Returns 0 for a non-positive mean.
pub fn exponential(rng: &mut impl Rng, mean_secs: f64) -> f64 {
    if mean_secs <= 0.0 {
        return 0.0;
    }
    // Sample u in (0, 1]; -ln(u) is Exp(1).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() * mean_secs
}

/// Draw from a Pareto (power-law) distribution with minimum `scale` and
/// tail exponent `alpha`, by inverse transform. Heavy-tailed for
/// `alpha <= 2`; the mean is `scale * alpha / (alpha - 1)` for
/// `alpha > 1`. Returns 0 for non-positive parameters.
pub fn pareto(rng: &mut impl Rng, scale: f64, alpha: f64) -> f64 {
    if scale <= 0.0 || alpha <= 0.0 {
        return 0.0;
    }
    // Sample u in (0, 1]; scale / u^(1/alpha) is Pareto(scale, alpha).
    let u: f64 = 1.0 - rng.gen::<f64>();
    scale / u.powf(1.0 / alpha)
}

/// Draw uniformly from `[lo, hi)`; degenerate ranges return `lo`.
pub fn uniform(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let f = RngStreams::new(42);
        let a: Vec<u64> = {
            let mut r = f.stream("compute", 3);
            (0..10).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream("compute", 3);
            (0..10).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_are_independent() {
        let f = RngStreams::new(42);
        let mut a = f.stream("compute", 0);
        let mut b = f.stream("compute", 1);
        let mut c = f.stream("comm", 0);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        let vc: u64 = c.gen();
        assert_ne!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn different_root_seeds_differ() {
        let mut a = RngStreams::new(1).stream("x", 0);
        let mut b = RngStreams::new(2).stream("x", 0);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = RngStreams::new(7).stream("exp", 0);
        let n = 200_000;
        let mean = 3.5;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, mean)).sum();
        let estimate = sum / n as f64;
        assert!(
            (estimate - mean).abs() < 0.05,
            "sample mean {estimate} too far from {mean}"
        );
    }

    #[test]
    fn exponential_degenerate_mean() {
        let mut rng = RngStreams::new(7).stream("exp", 0);
        assert_eq!(exponential(&mut rng, 0.0), 0.0);
        assert_eq!(exponential(&mut rng, -1.0), 0.0);
    }

    #[test]
    fn exponential_is_nonnegative_and_finite() {
        let mut rng = RngStreams::new(9).stream("exp", 1);
        for _ in 0..10_000 {
            let x = exponential(&mut rng, 1.0);
            assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut rng = RngStreams::new(13).stream("par", 0);
        for _ in 0..10_000 {
            let x = pareto(&mut rng, 2.0, 1.5);
            assert!(x >= 2.0 && x.is_finite());
        }
        assert_eq!(pareto(&mut rng, 0.0, 1.5), 0.0);
        assert_eq!(pareto(&mut rng, 2.0, 0.0), 0.0);
    }

    #[test]
    fn pareto_mean_converges_for_light_tail() {
        // alpha = 3 has a finite, well-behaved mean: scale * 3 / 2.
        let mut rng = RngStreams::new(17).stream("par", 1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| pareto(&mut rng, 1.0, 3.0)).sum();
        let estimate = sum / n as f64;
        assert!(
            (estimate - 1.5).abs() < 0.05,
            "sample mean {estimate} too far from 1.5"
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = RngStreams::new(11).stream("uni", 0);
        for _ in 0..1_000 {
            let x = uniform(&mut rng, 2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(uniform(&mut rng, 3.0, 3.0), 3.0);
        assert_eq!(uniform(&mut rng, 5.0, 2.0), 5.0);
    }
}
