//! Simulated time.
//!
//! The simulator clock is a `u64` count of nanoseconds since the start of the
//! simulation. Ten hours — the paper's application length — is 3.6e13 ns,
//! comfortably inside `u64`. All arithmetic is checked in debug builds via
//! the standard operators; saturating helpers are provided where the
//! protocol logic legitimately clamps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" timer delay.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Convert to fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Effectively infinite duration (used for "timer set to infinite").
    pub const INFINITE: SimDuration = SimDuration(u64::MAX);

    /// Build from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Build from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Build from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Build from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Build from whole minutes.
    #[inline]
    pub const fn from_minutes(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }
    /// Build from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }
    /// Build from fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::INFINITE
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Convert to fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is the `INFINITE` sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Saturating duration addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiply by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf")
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(10), SimDuration(10_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration(1_000_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration(1_000_000_000));
        assert_eq!(SimDuration::from_minutes(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(10), SimDuration::from_minutes(600));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(t.nanos(), 5_000_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(5));
        assert_eq!(
            SimTime::ZERO.saturating_since(t),
            SimDuration::ZERO,
            "saturating_since clamps negative spans"
        );
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1_500_000_000));
        assert!(SimDuration::from_secs_f64(1e30).is_infinite());
    }

    #[test]
    fn infinite_sentinel() {
        assert!(SimDuration::INFINITE.is_infinite());
        assert!(!SimDuration::from_hours(1_000_000).is_infinite());
        let t = SimTime(u64::MAX - 1).saturating_add(SimDuration::from_secs(5));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn ten_hours_fits() {
        let end = SimTime::ZERO + SimDuration::from_hours(10);
        assert_eq!(end.as_secs_f64(), 36_000.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime(1_500_000_000)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::INFINITE), "inf");
    }
}
