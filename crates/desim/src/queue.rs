//! The pending-event set.
//!
//! A binary min-heap of `(time, seq)` keys. `seq` is a monotonically
//! increasing tie-breaker so that events scheduled for the same instant fire
//! in scheduling order — this is what makes whole-federation runs
//! bit-for-bit reproducible under a fixed seed.
//!
//! Cancellation (needed for resettable protocol timers: "the timer is reset
//! when a forced CLC is established") is lazy: cancelled keys stay in the
//! heap and are skipped on pop.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

impl EventKey {
    /// The raw sequence number (diagnostics only).
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Future event list: a cancellable, deterministic priority queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Keys currently pending (pushed, not yet popped or cancelled). The
    /// heap may hold stale entries for cancelled keys; `pop` skips them.
    live: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`; returns a cancellation key.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.live.insert(seq);
        EventKey(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped and not already cancelled).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.live.remove(&key.0)
    }

    /// Remove and return the earliest live event with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.live.remove(&entry.seq) {
                return Some((entry.at, entry.event));
            }
            // Stale entry for a cancelled key: drop and continue.
        }
        None
    }

    /// Firing time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.live.contains(&entry.seq) {
                return Some(entry.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live event is pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let _a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        let _c = q.push(t(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_fails_second_time() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_pop_fails() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_key_fails() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn len_tracks_live_entries() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_of_popped_key_after_later_pushes_fails() {
        // Regression: found by the model-based property test. Cancelling a
        // key that was already popped must fail even while other events are
        // live, and must not corrupt the live count.
        let mut q = EventQueue::new();
        let a = q.push(t(0), 1);
        q.push(t(0), 2);
        assert_eq!(q.pop(), Some((t(0), 1)));
        q.push(t(0), 3);
        q.push(t(0), 4);
        assert!(!q.cancel(a), "key was already consumed");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((t(0), 2)));
        assert_eq!(q.pop(), Some((t(0), 3)));
        assert_eq!(q.pop(), Some((t(0), 4)));
        assert!(q.is_empty());
    }
}
