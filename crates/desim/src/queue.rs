//! The pending-event set.
//!
//! A **calendar queue** (timing wheel with an overflow year) over a
//! **generation-stamped slab** of event payloads. Events are bucketed by
//! firing time — bucket widths are a power of two so the bucket of an
//! instant is one shift — and each bucket is an unsorted vector that is
//! heapified only when the cursor reaches it. `seq` is a monotonically
//! increasing tie-breaker so that events scheduled for the same instant
//! fire in scheduling order — this is what makes whole-federation runs
//! bit-for-bit reproducible under a fixed seed, and the calendar preserves
//! the exact `(time, seq)` order the original binary heap produced (the
//! heap survives as a differential-test oracle behind `#[cfg(test)]`, see
//! `heap_oracle`).
//!
//! Events more than one wheel revolution ahead go to a small far-future
//! binary heap (`overflow`) and are pulled into the wheel as the cursor
//! approaches them, so sparse long-range timers never widen the dense
//! near-term buckets. The wheel resizes itself — bucket count tracks the
//! live population and bucket width is re-derived from the live
//! population's time span at each resize — so both the 65 µs delivery
//! regime and the minutes-scale timer regime stay cheap per operation.
//!
//! Cancellation (needed for resettable protocol timers: "the timer is reset
//! when a forced CLC is established") is O(1) and hash-free: every slab
//! slot carries a generation counter that is bumped whenever the slot is
//! vacated, so a stale calendar entry (or a stale [`EventKey`]) is detected
//! by a single generation comparison. Cancelled payloads are dropped
//! immediately; only the 24-byte calendar entry stays behind until the
//! cursor sweeps past it. Vacated slots are recycled through a free list,
//! so a steady-state simulation reaches zero allocations per schedule/fire
//! cycle.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Smallest bucket width: 2^6 = 64 ns. Also guarantees `at >> shift`
/// leaves headroom so `cursor + nbuckets` can never overflow even for
/// events at `SimTime::MAX` (infinite-timer sentinels).
const MIN_WIDTH_SHIFT: u32 = 6;
/// Widest bucket: 2^42 ns ≈ 73 min.
const MAX_WIDTH_SHIFT: u32 = 42;
/// Bucket-count bounds (both powers of two).
const MIN_BUCKETS: usize = 64;
const MAX_BUCKETS: usize = 1 << 20;

/// Opaque handle identifying a scheduled event, usable to cancel it.
///
/// The handle carries the event's slab slot and the slot's generation at
/// scheduling time; a key whose generation no longer matches the slot
/// (because the event fired, was cancelled, or the slot was recycled) is
/// simply rejected by [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    seq: u64,
    slot: u32,
    generation: u32,
}

impl EventKey {
    /// The raw scheduling sequence number (diagnostics only).
    pub fn raw(self) -> u64 {
        self.seq
    }
}

/// One slab slot: the payload of a live event plus the generation stamp
/// that invalidates stale calendar entries and keys.
struct Slot<E> {
    generation: u32,
    event: Option<E>,
}

/// One calendar entry: the `(time, seq)` dispatch key plus the slab
/// coordinates of the payload. 24 bytes, `Copy`, no payload — moving one
/// between buckets never touches the event itself.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Firing time in nanoseconds.
    at: u64,
    /// Scheduling-order tie-breaker.
    seq: u64,
    slot: u32,
    generation: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// Min-ordering heap key by `(at, seq)` (reversed for the max-heap
/// `BinaryHeap`); used for both the far-future overflow heap and the
/// served-bucket working set.
struct OverflowKey(Entry);

impl PartialEq for OverflowKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for OverflowKey {}
impl PartialOrd for OverflowKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OverflowKey {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

/// Two-level occupancy bitmap over the wheel: bit `i` of `l0` is set when
/// bucket `i` is non-empty, and bit `w` of `l1` is set when word `w` of
/// `l0` is non-zero. Finding the next occupied bucket from the cursor is a
/// masked word scan — never a bucket-by-bucket walk — so sparse stretches
/// between instants cost O(words skipped / 64), not O(buckets skipped).
struct Occupancy {
    l0: Vec<u64>,
    l1: Vec<u64>,
}

impl Occupancy {
    fn new(nbuckets: usize) -> Self {
        let w0 = nbuckets.div_ceil(64);
        Occupancy {
            l0: vec![0; w0],
            l1: vec![0; w0.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.l0[i >> 6] |= 1 << (i & 63);
        self.l1[i >> 12] |= 1 << ((i >> 6) & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        let w = i >> 6;
        self.l0[w] &= !(1 << (i & 63));
        if self.l0[w] == 0 {
            self.l1[i >> 12] &= !(1 << (w & 63));
        }
    }

    /// First set bit ≥ `i`, or `None`.
    fn next_set_ge(&self, i: usize) -> Option<usize> {
        let w = i >> 6;
        if w >= self.l0.len() {
            return None;
        }
        let m = self.l0[w] & (!0u64 << (i & 63));
        if m != 0 {
            return Some((w << 6) + m.trailing_zeros() as usize);
        }
        // Climb to l1 and scan for the next non-zero l0 word.
        let from = w + 1;
        let mut w1 = from >> 6;
        while w1 < self.l1.len() {
            let mask = if w1 == from >> 6 {
                !0u64 << (from & 63)
            } else {
                !0u64
            };
            let m1 = self.l1[w1] & mask;
            if m1 != 0 {
                let w0 = (w1 << 6) + m1.trailing_zeros() as usize;
                let bits = self.l0[w0];
                debug_assert!(bits != 0);
                return Some((w0 << 6) + bits.trailing_zeros() as usize);
            }
            w1 += 1;
        }
        None
    }

    /// First set bit at or after `i` in ring order (wrapping to 0).
    #[inline]
    fn next_set_ring(&self, i: usize) -> Option<usize> {
        self.next_set_ge(i).or_else(|| self.next_set_ge(0))
    }

    fn clear_all(&mut self) {
        self.l0.fill(0);
        self.l1.fill(0);
    }
}

/// Future event list: a cancellable, deterministic priority queue.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    /// Vacated slot indices available for reuse.
    free: Vec<u32>,
    next_seq: u64,
    /// Live (scheduled, not yet fired or cancelled) events.
    live: usize,
    /// The wheel: `buckets.len()` is a power of two; bucket `i` holds
    /// entries whose absolute bucket index ≡ `i` (mod `buckets.len()`).
    /// Invariant: every resident entry's absolute bucket index lies within
    /// one revolution of the cursor (`[cursor, cursor + nbuckets)`), so a
    /// bucket only ever holds entries of a single absolute index.
    buckets: Vec<Vec<Entry>>,
    occupancy: Occupancy,
    bucket_mask: u64,
    /// Bucket width is `1 << width_shift` nanoseconds.
    width_shift: u32,
    /// Absolute bucket index currently being served.
    cursor: u64,
    /// Physical entries (live or stale) currently in `buckets`.
    in_buckets: usize,
    /// Events ≥ one revolution ahead of the cursor.
    overflow: BinaryHeap<OverflowKey>,
    /// Entries pulled from the overflow heap since the last rebuild; heavy
    /// traffic means the bucket width no longer matches the workload.
    overflow_pulls: usize,
    /// Bucket `cursor`'s pending entries, as a small min-heap on
    /// `(at, seq)`. A heap (not a sorted vector) so that a push landing on
    /// the served bucket costs O(log bucket) with no memmove — the queue
    /// behaves like a heap *per bucket*, never one over the whole set.
    current: BinaryHeap<OverflowKey>,
    /// True once bucket `cursor` has been drained into `current` — a push
    /// landing on the served bucket must then insert into `current`.
    current_drained: bool,
    /// Resize thresholds, precomputed at each rebuild so the per-push and
    /// per-pop checks are one comparison: grow when `live` exceeds
    /// `grow_above` (2× the bucket count), shrink when it falls below
    /// `shrink_below` (bucket count / 8, zero at the minimum size).
    grow_above: usize,
    shrink_below: usize,
    /// The earliest live entry, as last computed by [`Self::settle`] — a
    /// memo, not state: `None` merely means "recompute". The executive
    /// peeks the head two or three times per dispatched event (next-instant
    /// probe, batch pop, end-of-batch probe); the memo turns the repeats
    /// into one load. Invalidated when the head is consumed or cancelled,
    /// or by a push scheduled before it (later pushes cannot displace it:
    /// `seq` grows monotonically, so they lose any tie).
    settled: Option<Entry>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            occupancy: Occupancy::new(MIN_BUCKETS),
            bucket_mask: (MIN_BUCKETS - 1) as u64,
            width_shift: 16, // 65.5 µs — re-derived at the first resize
            cursor: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            overflow_pulls: 0,
            current: BinaryHeap::new(),
            current_drained: false,
            grow_above: MIN_BUCKETS * 2,
            shrink_below: 0,
            settled: None,
        }
    }

    #[inline]
    fn is_live(&self, e: &Entry) -> bool {
        let s = &self.slots[e.slot as usize];
        s.generation == e.generation && s.event.is_some()
    }

    /// Schedule `event` at absolute time `at`; returns a cancellation key.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].event = Some(event);
                s
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    event: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.live += 1;
        if self.settled.is_some_and(|se| at.nanos() < se.at) {
            self.settled = None;
        }
        self.insert_entry(Entry {
            at: at.nanos(),
            seq,
            slot,
            generation,
        });
        if self.live > self.grow_above {
            self.rebuild(self.live * 2);
        }
        EventKey {
            seq,
            slot,
            generation,
        }
    }

    /// Route an entry to the served set, the wheel, or the overflow heap.
    fn insert_entry(&mut self, e: Entry) {
        let ab = e.at >> self.width_shift;
        if ab < self.cursor {
            // Scheduled before the serving point (legal on the raw queue —
            // only `Ctx` forbids past times): rewind the cursor.
            self.rewind_to(ab);
        }
        if ab == self.cursor && self.current_drained {
            // The served bucket was already drained: join its working heap.
            self.current.push(OverflowKey(e));
            return;
        }
        self.place(e);
    }

    /// Put an entry (known to be at or after the cursor) into its wheel
    /// bucket, or into the overflow heap if ≥ one revolution ahead.
    fn place(&mut self, e: Entry) {
        let ab = e.at >> self.width_shift;
        debug_assert!(ab >= self.cursor);
        if ab >= self.cursor + self.buckets.len() as u64 {
            self.overflow.push(OverflowKey(e));
        } else {
            let idx = (ab & self.bucket_mask) as usize;
            self.buckets[idx].push(e);
            self.occupancy.set(idx);
            self.in_buckets += 1;
        }
    }

    /// Move the cursor backwards to absolute bucket `ab`, re-placing every
    /// resident entry so the one-revolution invariant holds under the new
    /// cursor. Rare: only the raw queue (not `Ctx`) permits past pushes.
    fn rewind_to(&mut self, ab: u64) {
        let n = self.buckets.len() as u64;
        let d = self.cursor - ab;
        if d >= n {
            // The window moved back a whole revolution or more: nothing in
            // the wheel fits it, so re-place everything from scratch.
            let mut all: Vec<Entry> = Vec::with_capacity(self.in_buckets + self.current.len());
            for i in 0..self.buckets.len() {
                let mut b = std::mem::take(&mut self.buckets[i]);
                all.append(&mut b);
                self.buckets[i] = b;
            }
            all.extend(self.current.drain().map(|k| k.0));
            self.occupancy.clear_all();
            self.in_buckets = 0;
            self.current_drained = false;
            self.cursor = ab;
            for e in all {
                if self.is_live(&e) {
                    self.place(e);
                }
            }
            return;
        }
        // Common case (the cursor overshot to a far timer and an earlier
        // event arrived): surviving entries keep both their physical bucket
        // and the one-revolution invariant under the new window
        // `[ab, ab + n)`. Only entries in the physical buckets being
        // rewound over — absolute indices `[ab + n, cursor + n)`, usually
        // none — fall outside it; evict them to the overflow heap.
        let lo = ab & self.bucket_mask;
        let hi = self.cursor & self.bucket_mask;
        let ranges: [(usize, usize); 2] = if lo <= hi {
            [(lo as usize, hi as usize), (0, 0)]
        } else {
            [(lo as usize, self.buckets.len()), (0, hi as usize)]
        };
        for (mut i, end) in ranges {
            while let Some(idx) = self.occupancy.next_set_ge(i) {
                if idx >= end {
                    break;
                }
                let mut b = std::mem::take(&mut self.buckets[idx]);
                self.in_buckets -= b.len();
                for e in b.drain(..) {
                    if self.is_live(&e) {
                        self.overflow.push(OverflowKey(e));
                    }
                }
                self.buckets[idx] = b;
                self.occupancy.clear(idx);
                i = idx + 1;
            }
        }
        // `current` holds bucket `cursor`'s remains (absolute index still
        // inside the new window): put them back in their bucket.
        if !self.current.is_empty() {
            let idx = (self.cursor & self.bucket_mask) as usize;
            self.in_buckets += self.current.len();
            self.buckets[idx].extend(self.current.drain().map(|k| k.0));
            self.occupancy.set(idx);
        }
        self.current_drained = false;
        self.cursor = ab;
    }

    /// Vacate `slot`, invalidating any outstanding calendar entry or key
    /// for its current occupant.
    fn vacate(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.event = None;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped and not already cancelled).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.slots.get(key.slot as usize) {
            Some(s) if s.generation == key.generation && s.event.is_some() => {
                self.vacate(key.slot);
                self.settled = None;
                true
            }
            _ => false,
        }
    }

    /// Take the payload of a live entry out of the slab.
    #[inline]
    fn consume(&mut self, e: Entry) -> E {
        let s = &mut self.slots[e.slot as usize];
        let event = s.event.take().expect("settled entry is live");
        s.generation = s.generation.wrapping_add(1);
        self.free.push(e.slot);
        self.live -= 1;
        event
    }

    /// Remove and return the earliest live event with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.settle()?;
        self.current.pop();
        let event = self.consume(e);
        self.settled = None;
        if self.live < self.shrink_below {
            self.rebuild(self.live * 2);
        }
        Some((SimTime(e.at), event))
    }

    /// Remove and return the earliest live event only if it fires exactly
    /// at `at` — the executive's same-instant batch drain.
    pub fn pop_if_at(&mut self, at: SimTime) -> Option<E> {
        let e = self.settle()?;
        if e.at != at.nanos() {
            return None;
        }
        self.current.pop();
        let event = self.consume(e);
        self.settled = None;
        if self.live < self.shrink_below {
            self.rebuild(self.live * 2);
        }
        Some(event)
    }

    /// Firing time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle().map(|e| SimTime(e.at))
    }

    /// Advance lazily until `current`'s head is the earliest live entry,
    /// returning it (without consuming) — or `None` if the queue is empty.
    fn settle(&mut self) -> Option<Entry> {
        if let Some(e) = self.settled {
            debug_assert!(self.is_live(&e));
            return Some(e);
        }
        loop {
            while let Some(k) = self.current.peek() {
                let e = k.0;
                if self.is_live(&e) {
                    self.settled = Some(e);
                    return Some(e);
                }
                self.current.pop(); // cancelled while served: drop lazily
            }
            if self.current_drained {
                self.cursor += 1;
                self.current_drained = false;
            }
            if self.live == 0 {
                // Only stale entries can remain; purge so they don't get
                // rescanned forever.
                if self.in_buckets > 0 {
                    for b in &mut self.buckets {
                        b.clear();
                    }
                    self.occupancy.clear_all();
                    self.in_buckets = 0;
                }
                self.overflow.clear();
                return None;
            }
            if !self.advance_to_next() {
                debug_assert!(false, "live > 0 but no live entry found");
                return None;
            }
        }
    }

    /// Find the next non-empty instant: jump the cursor to the next
    /// occupied bucket (via the occupancy bitmap, or the overflow heap when
    /// the wheel is empty) and drain it into `current`. Returns `false`
    /// only if nothing live exists anywhere.
    fn advance_to_next(&mut self) -> bool {
        loop {
            // Heavy overflow traffic means the bucket width no longer
            // matches the workload; checked here (pulls only happen on
            // advances) so push/pop stay a single-threshold compare.
            if self.overflow_pulls > self.buckets.len() * 4 {
                self.rebuild(self.live * 2);
            }
            if self.in_buckets == 0 {
                // Everything pending is far future: jump straight to it.
                self.drop_stale_overflow_head();
                match self.overflow.peek() {
                    Some(k) => self.cursor = k.0.at >> self.width_shift,
                    None => return false,
                }
                self.pull_overflow();
                debug_assert!(self.in_buckets > 0);
            } else {
                // The one-revolution invariant means ring order from the
                // cursor is absolute-index order, and every overflow entry
                // is at least a revolution out — the nearest occupied
                // bucket IS the earliest pending instant.
                let phys = (self.cursor & self.bucket_mask) as usize;
                let nxt = self
                    .occupancy
                    .next_set_ring(phys)
                    .expect("in_buckets > 0 but occupancy empty");
                let dist = (nxt as u64).wrapping_sub(phys as u64) & self.bucket_mask;
                self.cursor += dist;
                // The window end moved with the cursor: admit overflow
                // entries that now fall inside it (they are all strictly
                // after the bucket the cursor just reached).
                self.pull_overflow();
            }
            self.drain_cursor_bucket();
            if !self.current.is_empty() {
                return true;
            }
            // The bucket held only stale (cancelled) entries; it is now
            // physically empty, so this can only repeat `cancelled` times.
            self.current_drained = false;
            self.cursor += 1;
        }
    }

    /// Pull far-future events that now fall within one revolution of the
    /// cursor into their wheel buckets.
    fn pull_overflow(&mut self) {
        let end = self.cursor + self.buckets.len() as u64;
        while let Some(k) = self.overflow.peek() {
            if k.0.at >> self.width_shift >= end {
                break;
            }
            let e = self.overflow.pop().expect("peeked").0;
            if self.is_live(&e) {
                self.overflow_pulls += 1;
                self.place(e);
            }
        }
    }

    fn drop_stale_overflow_head(&mut self) {
        while let Some(k) = self.overflow.peek() {
            if self.is_live(&k.0) {
                break;
            }
            self.overflow.pop();
        }
    }

    /// Drain bucket `cursor` into the `current` working heap, dropping
    /// stale entries. The one-revolution invariant guarantees every entry
    /// in the bucket belongs to absolute index `cursor`, so the whole
    /// bucket moves; heapify is O(bucket).
    fn drain_cursor_bucket(&mut self) {
        let idx = (self.cursor & self.bucket_mask) as usize;
        let mut b = std::mem::take(&mut self.buckets[idx]);
        self.in_buckets -= b.len();
        // Reuse `current`'s allocation across buckets.
        let mut v = std::mem::take(&mut self.current).into_vec();
        v.clear();
        for e in b.drain(..) {
            debug_assert_eq!(e.at >> self.width_shift, self.cursor);
            if self.is_live(&e) {
                v.push(OverflowKey(e));
            }
        }
        self.buckets[idx] = b; // keep the capacity
        self.occupancy.clear(idx);
        self.current = BinaryHeap::from(v);
        self.current_drained = true;
    }

    /// Resize the wheel to ≈ `target_n` buckets and re-derive the bucket
    /// width from the live population's median inter-event gap. All live
    /// entries are re-placed; stale entries are dropped. Deterministic:
    /// depends only on queue contents, never on wall clock or randomness.
    fn rebuild(&mut self, target_n: usize) {
        let n = target_n
            .clamp(MIN_BUCKETS, MAX_BUCKETS)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut all: Vec<Entry> = Vec::with_capacity(self.live);
        for i in 0..self.buckets.len() {
            let mut b = std::mem::take(&mut self.buckets[i]);
            for e in b.drain(..) {
                if self.is_live(&e) {
                    all.push(e);
                }
            }
            self.buckets[i] = b;
        }
        let cur = std::mem::take(&mut self.current);
        for k in cur {
            if self.is_live(&k.0) {
                all.push(k.0);
            }
        }
        while let Some(k) = self.overflow.pop() {
            if self.is_live(&k.0) {
                all.push(k.0);
            }
        }
        let old_shift = self.width_shift;
        self.in_buckets = 0;
        self.current_drained = false;
        self.overflow_pulls = 0;
        self.grow_above = n * 2;
        self.shrink_below = if n > MIN_BUCKETS { n / 8 } else { 0 };
        all.sort_unstable_by_key(|e| e.key());
        self.width_shift = choose_width_shift(&all, n, self.width_shift);
        if self.buckets.len() != n {
            self.buckets = (0..n).map(|_| Vec::new()).collect();
            self.bucket_mask = (n - 1) as u64;
        }
        self.occupancy = Occupancy::new(n);
        self.cursor = match all.first() {
            Some(e) => e.at >> self.width_shift,
            // Empty: keep the cursor's time position under the new width.
            None => (self.cursor << old_shift) >> self.width_shift,
        };
        for e in all {
            self.place(e);
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live event is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// Pick a bucket width (as a shift) from the sorted live population: size
/// the window (`nbuckets × width`) to twice the span up to the 90th
/// percentile firing time, so the bulk of the pending set lands in wheel
/// buckets while far outliers (end-of-run markers, "infinite" timers)
/// stay in the overflow heap. Deterministic: depends only on the queue's
/// contents.
fn choose_width_shift(sorted: &[Entry], nbuckets: usize, current: u32) -> u32 {
    if sorted.len() < 2 {
        return current;
    }
    let min = sorted[0].at;
    let p90 = sorted[sorted.len() - 1 - sorted.len() / 10].at;
    let span = p90 - min;
    if span == 0 {
        return MIN_WIDTH_SHIFT;
    }
    let width = (span / (nbuckets as u64 / 2).max(1)).max(1);
    // Round the width up to the next power of two.
    let shift = 64 - (width - 1).leading_zeros();
    shift.clamp(MIN_WIDTH_SHIFT, MAX_WIDTH_SHIFT)
}

/// The original binary-heap implementation, retained as a differential
/// oracle: the calendar queue must reproduce its pop order — including
/// `(time, seq)` tie-breaks — exactly, under any interleaving of pushes,
/// cancels and pops. See the `calendar_matches_heap_oracle` property test.
#[cfg(test)]
pub(crate) mod heap_oracle {
    use super::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// Oracle cancellation handle (mirrors [`super::EventKey`]).
    #[derive(Debug, Clone, Copy)]
    pub struct OracleKey {
        slot: u32,
        generation: u32,
    }

    struct Slot<E> {
        generation: u32,
        event: Option<E>,
    }

    struct HeapKey {
        at: SimTime,
        seq: u64,
        slot: u32,
        generation: u32,
    }

    impl PartialEq for HeapKey {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for HeapKey {}
    impl PartialOrd for HeapKey {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapKey {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse: BinaryHeap is a max-heap, we want earliest-first.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The pre-calendar future event list, verbatim.
    pub struct HeapEventQueue<E> {
        heap: BinaryHeap<HeapKey>,
        slots: Vec<Slot<E>>,
        free: Vec<u32>,
        next_seq: u64,
        live: usize,
    }

    impl<E> HeapEventQueue<E> {
        pub fn new() -> Self {
            HeapEventQueue {
                heap: BinaryHeap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                next_seq: 0,
                live: 0,
            }
        }

        pub fn push(&mut self, at: SimTime, event: E) -> OracleKey {
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slots[s as usize].event = Some(event);
                    s
                }
                None => {
                    self.slots.push(Slot {
                        generation: 0,
                        event: Some(event),
                    });
                    (self.slots.len() - 1) as u32
                }
            };
            let generation = self.slots[slot as usize].generation;
            self.heap.push(HeapKey {
                at,
                seq,
                slot,
                generation,
            });
            self.live += 1;
            OracleKey { slot, generation }
        }

        pub fn cancel(&mut self, key: OracleKey) -> bool {
            match self.slots.get_mut(key.slot as usize) {
                Some(s) if s.generation == key.generation && s.event.is_some() => {
                    s.event = None;
                    s.generation = s.generation.wrapping_add(1);
                    self.free.push(key.slot);
                    self.live -= 1;
                    true
                }
                _ => false,
            }
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(k) = self.heap.pop() {
                let s = &mut self.slots[k.slot as usize];
                if s.generation == k.generation {
                    if let Some(event) = s.event.take() {
                        s.generation = s.generation.wrapping_add(1);
                        self.free.push(k.slot);
                        self.live -= 1;
                        return Some((k.at, event));
                    }
                }
            }
            None
        }

        pub fn pop_if_at(&mut self, at: SimTime) -> Option<E> {
            if self.peek_time() != Some(at) {
                return None;
            }
            self.pop().map(|(_, e)| e)
        }

        pub fn peek_time(&mut self) -> Option<SimTime> {
            while let Some(k) = self.heap.peek() {
                let s = &self.slots[k.slot as usize];
                if s.generation == k.generation && s.event.is_some() {
                    return Some(k.at);
                }
                self.heap.pop();
            }
            None
        }

        pub fn len(&self) -> usize {
            self.live
        }
    }
}

#[cfg(test)]
mod tests {
    use super::heap_oracle::HeapEventQueue;
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let _a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        let _c = q.push(t(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_fails_second_time() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_pop_fails() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_key_fails() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventKey {
            seq: 42,
            slot: 42,
            generation: 0
        }));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn len_tracks_live_entries() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_of_popped_key_after_later_pushes_fails() {
        // Regression: found by the model-based property test. Cancelling a
        // key that was already popped must fail even while other events are
        // live, and must not corrupt the live count.
        let mut q = EventQueue::new();
        let a = q.push(t(0), 1);
        q.push(t(0), 2);
        assert_eq!(q.pop(), Some((t(0), 1)));
        q.push(t(0), 3);
        q.push(t(0), 4);
        assert!(!q.cancel(a), "key was already consumed");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((t(0), 2)));
        assert_eq!(q.pop(), Some((t(0), 3)));
        assert_eq!(q.pop(), Some((t(0), 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn stale_key_for_recycled_slot_fails() {
        // A cancelled event's slot is recycled by a later push; the old
        // key's generation no longer matches and must not cancel the new
        // occupant.
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a), "slot 0 vacated");
        let _b = q.push(t(2), "b"); // reuses slot 0 at generation 1
        assert!(!q.cancel(a), "stale generation rejected");
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        // Steady-state schedule/fire cycles reuse the same slot instead of
        // growing the slab.
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            let k = q.push(t(i), i);
            if i % 2 == 0 {
                assert_eq!(q.pop(), Some((t(i), i)));
            } else {
                assert!(q.cancel(k));
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.slots.len(), 1, "one slot recycled 1000 times");
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        // Events beyond one revolution go to the overflow heap and come
        // back in order, including an "infinite timer" at SimTime::MAX.
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, "inf");
        q.push(t(1), "near");
        q.push(SimTime::ZERO + SimDuration::from_hours(10), "far");
        assert_eq!(q.pop(), Some((t(1), "near")));
        assert_eq!(
            q.pop(),
            Some((SimTime::ZERO + SimDuration::from_hours(10), "far"))
        );
        assert_eq!(q.pop(), Some((SimTime::MAX, "inf")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_earlier_than_served_bucket_rewinds() {
        // The raw queue (unlike Ctx) permits pushing a time earlier than
        // the last pop; the cursor must rewind rather than lose the event.
        let mut q = EventQueue::new();
        q.push(t(50), "late");
        assert_eq!(q.peek_time(), Some(t(50)));
        q.push(t(1), "early");
        assert_eq!(q.pop(), Some((t(1), "early")));
        assert_eq!(q.pop(), Some((t(50), "late")));
    }

    #[test]
    fn pop_if_at_only_takes_matching_instant() {
        let mut q = EventQueue::new();
        q.push(t(1), "a");
        q.push(t(1), "b");
        q.push(t(2), "c");
        assert_eq!(q.pop_if_at(t(1)), Some("a"));
        assert_eq!(q.pop_if_at(t(1)), Some("b"));
        assert_eq!(q.pop_if_at(t(1)), None, "next event is at t(2)");
        assert_eq!(q.pop_if_at(t(2)), Some("c"));
        assert_eq!(q.pop_if_at(t(2)), None, "empty");
    }

    #[test]
    fn same_instant_push_during_drain_joins_in_seq_order() {
        // Pushes landing on the already-drained served bucket must merge
        // into the pending run in (time, seq) order.
        let mut q = EventQueue::new();
        q.push(t(1), 0u32);
        q.push(t(1), 1);
        assert_eq!(q.pop_if_at(t(1)), Some(0));
        q.push(t(1), 2); // same instant, mid-drain
        assert_eq!(q.pop_if_at(t(1)), Some(1));
        assert_eq!(q.pop_if_at(t(1)), Some(2));
        assert_eq!(q.pop_if_at(t(1)), None);
    }

    #[test]
    fn resize_preserves_order_across_width_change() {
        // Push enough to trigger a grow (live > 2 × buckets) with a mix of
        // dense and sparse times, then check the full drain order.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0..400u64 {
            // Dense microsecond cluster + sparse minute-scale tail.
            let at = if i % 4 == 0 {
                SimTime(i * 60_000_000_000)
            } else {
                SimTime(i * 1_000 + 5)
            };
            q.push(at, i);
            expect.push((at, i));
        }
        expect.sort_by_key(|&(at, i)| (at, i));
        for (at, i) in expect {
            assert_eq!(q.pop(), Some((at, i)), "entry {i}");
        }
        assert_eq!(q.pop(), None);
    }

    /// One lockstep operation of the differential test.
    #[derive(Debug, Clone)]
    enum Op {
        /// Push at a dense near time (bucket-collision regime).
        PushDense(u16),
        /// Push at a sparse far time (overflow regime).
        PushSparse(u16),
        /// Push at exactly the last popped time (tie/rewind regime).
        PushAtLastPop,
        Pop,
        /// Drain up to `n` events of the head instant via `pop_if_at`.
        PopBatch(u8),
        /// Cancel the i-th issued key (mod issued).
        Cancel(u16),
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => any::<u16>().prop_map(Op::PushDense),
            1 => any::<u16>().prop_map(Op::PushSparse),
            1 => Just(Op::PushAtLastPop),
            3 => Just(Op::Pop),
            2 => any::<u8>().prop_map(Op::PopBatch),
            2 => any::<u16>().prop_map(Op::Cancel),
            1 => Just(Op::Peek),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// The calendar queue is indistinguishable from the retained
        /// binary-heap oracle under random interleavings of pushes (dense,
        /// sparse, and tie-heavy), cancels, single pops and same-instant
        /// batch drains — identical pop order including (time, seq)
        /// tie-breaks, identical cancel outcomes, identical live counts.
        #[test]
        fn calendar_matches_heap_oracle(ops in proptest::collection::vec(op_strategy(), 1..400)) {
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut keys: Vec<(EventKey, super::heap_oracle::OracleKey)> = Vec::new();
            let mut payload = 0u64;
            let mut last_pop = SimTime::ZERO;
            let push = |at: SimTime,
                            cal: &mut EventQueue<u64>,
                            heap: &mut HeapEventQueue<u64>,
                            keys: &mut Vec<(EventKey, super::heap_oracle::OracleKey)>,
                            payload: &mut u64| {
                let ck = cal.push(at, *payload);
                let hk = heap.push(at, *payload);
                keys.push((ck, hk));
                *payload += 1;
            };
            for op in ops {
                match op {
                    Op::PushDense(r) => {
                        // Cluster around the last pop so ties and near-in
                        // bucket collisions are common.
                        let at = SimTime(last_pop.nanos() + (r as u64 % 2_048));
                        push(at, &mut cal, &mut heap, &mut keys, &mut payload);
                    }
                    Op::PushSparse(r) => {
                        let at = SimTime(last_pop.nanos() + (r as u64) * 1_000_000_000);
                        push(at, &mut cal, &mut heap, &mut keys, &mut payload);
                    }
                    Op::PushAtLastPop => {
                        push(last_pop, &mut cal, &mut heap, &mut keys, &mut payload);
                    }
                    Op::Pop => {
                        let c = cal.pop();
                        let h = heap.pop();
                        prop_assert_eq!(&c, &h);
                        if let Some((at, _)) = c {
                            last_pop = at;
                        }
                    }
                    Op::PopBatch(n) => {
                        if let Some(at) = cal.peek_time() {
                            prop_assert_eq!(Some(at), heap.peek_time());
                            for _ in 0..(n % 8) + 1 {
                                let c = cal.pop_if_at(at);
                                let h = heap.pop_if_at(at);
                                prop_assert_eq!(c, h);
                                if c.is_none() {
                                    break;
                                }
                                last_pop = at;
                            }
                        }
                    }
                    Op::Cancel(i) => {
                        if !keys.is_empty() {
                            let (ck, hk) = keys[i as usize % keys.len()];
                            prop_assert_eq!(cal.cancel(ck), heap.cancel(hk));
                        }
                    }
                    Op::Peek => {
                        prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    }
                }
                prop_assert_eq!(cal.len(), heap.len());
            }
            // Final drain must agree to the last event.
            loop {
                let c = cal.pop();
                let h = heap.pop();
                prop_assert_eq!(&c, &h);
                if c.is_none() {
                    break;
                }
            }
        }
    }
}
