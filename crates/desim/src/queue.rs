//! The pending-event set.
//!
//! A binary min-heap of `(time, seq)` keys over a **generation-stamped
//! slab** of event payloads. `seq` is a monotonically increasing
//! tie-breaker so that events scheduled for the same instant fire in
//! scheduling order — this is what makes whole-federation runs bit-for-bit
//! reproducible under a fixed seed.
//!
//! Cancellation (needed for resettable protocol timers: "the timer is reset
//! when a forced CLC is established") is O(1) and hash-free: every slab
//! slot carries a generation counter that is bumped whenever the slot is
//! vacated, so a stale heap entry (or a stale [`EventKey`]) is detected by
//! a single generation comparison. Cancelled payloads are dropped
//! immediately; only the 24-byte heap key stays behind until popped.
//! Vacated slots are recycled through a free list, so a steady-state
//! simulation reaches zero allocations per schedule/fire cycle.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle identifying a scheduled event, usable to cancel it.
///
/// The handle carries the event's slab slot and the slot's generation at
/// scheduling time; a key whose generation no longer matches the slot
/// (because the event fired, was cancelled, or the slot was recycled) is
/// simply rejected by [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    seq: u64,
    slot: u32,
    generation: u32,
}

impl EventKey {
    /// The raw scheduling sequence number (diagnostics only).
    pub fn raw(self) -> u64 {
        self.seq
    }
}

/// One slab slot: the payload of a live event plus the generation stamp
/// that invalidates stale heap entries and keys.
struct Slot<E> {
    generation: u32,
    event: Option<E>,
}

/// Heap key ordering events earliest-first, ties broken by scheduling
/// order. The payload itself lives in the slab.
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Future event list: a cancellable, deterministic priority queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapKey>,
    slots: Vec<Slot<E>>,
    /// Vacated slot indices available for reuse.
    free: Vec<u32>,
    next_seq: u64,
    /// Live (scheduled, not yet fired or cancelled) events.
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedule `event` at absolute time `at`; returns a cancellation key.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].event = Some(event);
                s
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    event: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(HeapKey {
            at,
            seq,
            slot,
            generation,
        });
        self.live += 1;
        EventKey {
            seq,
            slot,
            generation,
        }
    }

    /// Vacate `slot`, invalidating any outstanding heap entry or key for
    /// its current occupant.
    fn vacate(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.event = None;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped and not already cancelled).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.slots.get(key.slot as usize) {
            Some(s) if s.generation == key.generation && s.event.is_some() => {
                self.vacate(key.slot);
                true
            }
            _ => false,
        }
    }

    /// Remove and return the earliest live event with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(k) = self.heap.pop() {
            let s = &mut self.slots[k.slot as usize];
            if s.generation == k.generation {
                if let Some(event) = s.event.take() {
                    s.generation = s.generation.wrapping_add(1);
                    self.free.push(k.slot);
                    self.live -= 1;
                    return Some((k.at, event));
                }
            }
            // Stale entry for a vacated slot: drop and continue.
        }
        None
    }

    /// Firing time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(k) = self.heap.peek() {
            let s = &self.slots[k.slot as usize];
            if s.generation == k.generation && s.event.is_some() {
                return Some(k.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live event is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let _a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        let _c = q.push(t(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_fails_second_time() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_pop_fails() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_key_fails() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventKey {
            seq: 42,
            slot: 42,
            generation: 0
        }));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn len_tracks_live_entries() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_of_popped_key_after_later_pushes_fails() {
        // Regression: found by the model-based property test. Cancelling a
        // key that was already popped must fail even while other events are
        // live, and must not corrupt the live count.
        let mut q = EventQueue::new();
        let a = q.push(t(0), 1);
        q.push(t(0), 2);
        assert_eq!(q.pop(), Some((t(0), 1)));
        q.push(t(0), 3);
        q.push(t(0), 4);
        assert!(!q.cancel(a), "key was already consumed");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((t(0), 2)));
        assert_eq!(q.pop(), Some((t(0), 3)));
        assert_eq!(q.pop(), Some((t(0), 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn stale_key_for_recycled_slot_fails() {
        // A cancelled event's slot is recycled by a later push; the old
        // key's generation no longer matches and must not cancel the new
        // occupant.
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a), "slot 0 vacated");
        let _b = q.push(t(2), "b"); // reuses slot 0 at generation 1
        assert!(!q.cancel(a), "stale generation rejected");
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        // Steady-state schedule/fire cycles reuse the same slot instead of
        // growing the slab.
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            let k = q.push(t(i), i);
            if i % 2 == 0 {
                assert_eq!(q.pop(), Some((t(i), i)));
            } else {
                assert!(q.cancel(k));
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.slots.len(), 1, "one slot recycled 1000 times");
    }
}
