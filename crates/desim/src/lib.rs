//! # desim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate replacing the C++SIM library the paper used
//! for its evaluation (§5.1). It provides:
//!
//! * a simulated clock and cancellable future-event list ([`EventQueue`]) —
//!   a `(time, seq)`-ordered calendar queue (timing wheel with a far-future
//!   overflow heap) over a generation-stamped slab, giving O(1) scheduling,
//!   O(1) hash-free cancellation and allocation-free steady-state cycles,
//! * an instant-batching event-scheduling executive ([`Simulation`] /
//!   [`World`] / [`InstantBatch`]),
//! * named, independent, reproducible RNG streams ([`RngStreams`]),
//! * statistics collectors ([`StatsRegistry`], [`Counter`], [`Tally`],
//!   [`TimeSeries`], [`Histogram`]),
//! * configurable tracing mirroring the paper's compile-time trace levels
//!   ([`Tracer`]).
//!
//! Unlike C++SIM's process threads, the executive is strictly sequential and
//! deterministic: events at equal timestamps fire in scheduling order, so a
//! federation run is a pure function of its configuration and seed.
//!
//! ```
//! use desim::{Simulation, World, Ctx, SimTime, SimDuration};
//!
//! struct Clock { ticks: u32 }
//! impl World for Clock {
//!     type Event = ();
//!     fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
//!         self.ticks += 1;
//!         if self.ticks < 3 {
//!             ctx.schedule_in(SimDuration::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Clock { ticks: 0 });
//! sim.schedule_at(SimTime::ZERO, ());
//! sim.run();
//! assert_eq!(sim.world().ticks, 3);
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(2));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Ctx, InboxKey, InstantBatch, RunOutcome, Simulation, World};
pub use queue::{EventKey, EventQueue};
pub use rng::{exponential, pareto, uniform, RngStreams};
pub use stats::{Counter, Histogram, StatsRegistry, Tally, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceLevel, TraceRecord, Tracer};
