//! The simulation executive.
//!
//! A `Simulation` owns the clock, the pending-event set and a user-supplied
//! *world* (the model). The world handles one event at a time and schedules
//! follow-up events through the [`Ctx`] handle it receives. The design is
//! the event-scheduling flavour of discrete-event simulation — the same
//! world view C++SIM's process threads expose, but deterministic and with no
//! thread-scheduling nondeterminism.

use crate::queue::{EventKey, EventQueue};
use crate::time::SimTime;

/// The model being simulated: a state machine fed one event at a time.
pub trait World {
    /// The world's event alphabet.
    type Event;

    /// Handle `event` occurring at `ctx.now()`. Schedule follow-ups via `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);
}

/// Scheduling handle passed to [`World::handle`].
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// model bug and panics (it would silently reorder causality otherwise).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedule `event` after `delay` from now, saturating at the end of time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) -> EventKey {
        let at = self.now.saturating_add(delay);
        self.queue.push(at, event)
    }

    /// Cancel a previously scheduled event (e.g. to reset a timer).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Ask the executive to stop after the current event completes.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Number of pending events (diagnostics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained.
    Exhausted,
    /// The world requested a stop.
    Stopped,
    /// The time horizon passed; remaining events are still pending.
    HorizonReached,
    /// The configured event budget was consumed.
    BudgetExhausted,
}

/// The simulation executive: clock + event set + world.
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    /// Pre-sorted external workload, merged lazily into the dispatch order
    /// (see [`Simulation::feed_sorted`]). Kept outside the heap so a bulk
    /// workload does not inflate every heap operation for the whole run.
    feed: std::collections::VecDeque<(SimTime, W::Event)>,
    now: SimTime,
    stop_requested: bool,
    events_processed: u64,
}

impl<W: World> Simulation<W> {
    /// Wrap `world` with an empty schedule at t = 0.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            feed: std::collections::VecDeque::new(),
            now: SimTime::ZERO,
            stop_requested: false,
            events_processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (between runs; e.g. to extract stats).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an initial event from outside the world.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventKey {
        assert!(at >= self.now, "initial event scheduled in the past");
        self.queue.push(at, event)
    }

    /// Install a bulk external workload: `events` must be sorted by time
    /// (ties fire in vector order) and is merged lazily into the dispatch
    /// order. At equal timestamps a fed event fires **before** anything in
    /// the pending-event heap — exactly the order that scheduling the whole
    /// workload up-front (before any other initial event) used to produce,
    /// so runs are bit-identical to the eager schedule.
    ///
    /// The point is cost, not semantics: a 15k-send workload used to sit in
    /// the heap for the entire run, deepening every push/pop by ~`log₂ 15k`
    /// levels; as a sorted side feed, the heap holds only in-flight events.
    ///
    /// # Panics
    /// If a feed is already installed, or `events` is unsorted or starts in
    /// the past.
    pub fn feed_sorted(&mut self, events: Vec<(SimTime, W::Event)>) {
        assert!(self.feed.is_empty(), "workload feed already installed");
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "workload feed must be sorted by time"
        );
        if let Some(&(first, _)) = events.first() {
            assert!(first >= self.now, "workload feed starts in the past");
        }
        self.feed = events.into();
    }

    /// Time of the next event to dispatch (feed wins ties), if any.
    fn next_time(&mut self) -> Option<SimTime> {
        match (self.feed.front().map(|&(at, _)| at), self.queue.peek_time()) {
            (Some(f), Some(q)) => Some(f.min(q)),
            (Some(f), None) => Some(f),
            (None, q) => q,
        }
    }

    /// Dispatch a single event. Returns `false` if none is pending.
    pub fn step(&mut self) -> bool {
        let take_feed = match (self.feed.front(), self.queue.peek_time()) {
            (Some(&(ft, _)), Some(qt)) => ft <= qt,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let (at, event) = if take_feed {
            self.feed.pop_front().expect("checked above")
        } else {
            match self.queue.pop() {
                Some(e) => e,
                None => return false,
            }
        };
        debug_assert!(at >= self.now, "event queue returned a past event");
        self.now = at;
        self.events_processed += 1;
        let mut ctx = Ctx {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: &mut self.stop_requested,
        };
        self.world.handle(&mut ctx, event);
        true
    }

    /// Run until the event set drains or the world calls [`Ctx::stop`].
    pub fn run(&mut self) -> RunOutcome {
        self.run_with_budget(u64::MAX)
    }

    /// Run, but dispatch at most `budget` events (guards runaway models).
    pub fn run_with_budget(&mut self, budget: u64) -> RunOutcome {
        let mut remaining = budget;
        while !self.stop_requested {
            if remaining == 0 {
                return RunOutcome::BudgetExhausted;
            }
            if !self.step() {
                return RunOutcome::Exhausted;
            }
            remaining -= 1;
        }
        RunOutcome::Stopped
    }

    /// Run until simulated time strictly exceeds `horizon` (events at exactly
    /// `horizon` are dispatched). The clock is left at the last dispatched
    /// event's time.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        while !self.stop_requested {
            match self.next_time() {
                None => return RunOutcome::Exhausted,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.step();
                }
            }
        }
        RunOutcome::Stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A world that plays ping-pong `limit` times.
    struct PingPong {
        count: u32,
        limit: u32,
        log: Vec<(u64, &'static str)>,
    }

    #[derive(Debug)]
    enum Ev {
        Ping,
        Pong,
    }

    impl World for PingPong {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, event: Ev) {
            match event {
                Ev::Ping => {
                    self.log.push((ctx.now().nanos(), "ping"));
                    ctx.schedule_in(SimDuration::from_secs(1), Ev::Pong);
                }
                Ev::Pong => {
                    self.log.push((ctx.now().nanos(), "pong"));
                    self.count += 1;
                    if self.count < self.limit {
                        ctx.schedule_in(SimDuration::from_secs(1), Ev::Ping);
                    } else {
                        ctx.stop();
                    }
                }
            }
        }
    }

    fn pingpong(limit: u32) -> Simulation<PingPong> {
        let mut sim = Simulation::new(PingPong {
            count: 0,
            limit,
            log: vec![],
        });
        sim.schedule_at(SimTime::ZERO, Ev::Ping);
        sim
    }

    #[test]
    fn runs_to_stop() {
        let mut sim = pingpong(3);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.world().count, 3);
        assert_eq!(sim.events_processed(), 6);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn exhausts_when_no_events() {
        struct Inert;
        impl World for Inert {
            type Event = ();
            fn handle(&mut self, _: &mut Ctx<'_, ()>, _: ()) {}
        }
        let mut sim = Simulation::new(Inert);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
    }

    #[test]
    fn horizon_stops_dispatch() {
        let mut sim = pingpong(100);
        let outcome = sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at t=0..=10s fired: ping@0, pong@1 ... 11 events.
        assert_eq!(sim.events_processed(), 11);
        assert!(sim.now() <= SimTime::ZERO + SimDuration::from_secs(10));
    }

    #[test]
    fn budget_limits_events() {
        let mut sim = pingpong(1_000);
        assert_eq!(sim.run_with_budget(7), RunOutcome::BudgetExhausted);
        assert_eq!(sim.events_processed(), 7);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                if ev == 1 {
                    ctx.schedule_at(SimTime::ZERO, 2);
                }
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), 1);
        sim.run();
    }

    #[test]
    fn deterministic_replay() {
        let run = |limit| {
            let mut sim = pingpong(limit);
            sim.run();
            sim.into_world().log
        };
        assert_eq!(run(50), run(50));
    }
}
