//! The simulation executive.
//!
//! A `Simulation` owns the clock, the pending-event set and a user-supplied
//! *world* (the model). The world handles events and schedules follow-up
//! events through the [`Ctx`] handle it receives. The design is the
//! event-scheduling flavour of discrete-event simulation — the same world
//! view C++SIM's process threads expose, but deterministic and with no
//! thread-scheduling nondeterminism.
//!
//! Dispatch is **instant-batched**: when the executive reaches a simulated
//! instant it drains *every* event firing at that instant through one
//! [`World::handle_batch`] call, instead of re-entering the executive once
//! per event. The default `handle_batch` simply loops [`World::handle`], so
//! worlds keep their one-event-at-a-time shape; worlds with per-entry setup
//! cost (sink swaps, stats flushes) override it to hoist that cost to
//! per-instant. Order within the batch is the global `(time, seq)` dispatch
//! order — events a handler schedules *at the same instant* get larger
//! `seq`s and join the tail of the same batch, exactly as the one-per-step
//! executive would have dispatched them, so runs are bit-identical.

use crate::queue::{EventKey, EventQueue};
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Canonical ordering key for [inbox](Ctx::schedule_inbox) events: an
/// opaque `(sent, route, copy)` triple supplied by the world.
///
/// Inbox events at one instant dispatch in ascending key order — *not* in
/// scheduling order like queue events. A world that derives the key purely
/// from message content (origin timestamp, directed route, per-route
/// sequence number) gets a dispatch order that is invariant under how the
/// federation is partitioned across simulator shards: the same messages
/// ingested from different shards, in any arrival order, replay
/// identically. This is the determinism contract the parallel executive
/// builds on.
pub type InboxKey = (SimTime, u64, u64);

/// The model being simulated: a state machine fed events by the executive.
pub trait World {
    /// The world's event alphabet.
    type Event;

    /// Handle `event` occurring at `ctx.now()`. Schedule follow-ups via `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);

    /// Handle one simulated instant's whole batch of events. Pull events
    /// with [`InstantBatch::next`] until it returns `None`; the batch ends
    /// when the instant has no further events, the executive's event budget
    /// for this instant is spent, or the world called [`Ctx::stop`].
    ///
    /// The default implementation dispatches each event through
    /// [`World::handle`]; override it to amortise per-event overhead
    /// (e.g. output-sink swaps) across the instant. Implementations must
    /// drive the batch through `next` — events left unpulled simply remain
    /// pending, which after a stop is exactly right.
    fn handle_batch(&mut self, ctx: &mut Ctx<'_, Self::Event>, batch: &mut InstantBatch) {
        while let Some(event) = batch.next(ctx) {
            self.handle(ctx, event);
        }
    }
}

/// Scheduling handle passed to [`World::handle`].
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    feed: &'a mut std::collections::VecDeque<(SimTime, E)>,
    inbox: &'a mut BTreeMap<(SimTime, InboxKey), E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// model bug and panics (it would silently reorder causality otherwise).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedule `event` after `delay` from now, saturating at the end of time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) -> EventKey {
        let at = self.now.saturating_add(delay);
        self.queue.push(at, event)
    }

    /// Cancel a previously scheduled event (e.g. to reset a timer).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Schedule `event` through the canonically-ordered inbox (see
    /// [`InboxKey`]). Inbox events at one instant dispatch *after* the
    /// instant's queue events, in ascending key order regardless of
    /// insertion order. Strictly-future only: an inbox event needs a full
    /// instant boundary to sort against its peers.
    ///
    /// # Panics
    /// If `at` is not in the strict future, or the key is already taken.
    pub fn schedule_inbox(&mut self, at: SimTime, key: InboxKey, event: E) {
        assert!(
            at > self.now,
            "inbox event must be strictly future: now={} at={}",
            self.now,
            at
        );
        let clash = self.inbox.insert((at, key), event);
        assert!(clash.is_none(), "inbox key collision at {at}: {key:?}");
    }

    /// Ask the executive to stop after the current event completes.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// True once [`Ctx::stop`] has been called.
    #[inline]
    pub fn is_stopped(&self) -> bool {
        *self.stop_requested
    }

    /// Number of pending events (diagnostics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// One simulated instant's worth of events, pulled lazily from the
/// executive by [`World::handle_batch`].
///
/// `next` yields the instant's events in global `(time, seq)` dispatch
/// order: external feed events first (the feed wins ties, as with the
/// one-per-step executive), then queued events — including any the world
/// schedules *at this instant* while the batch is being drained. Events are
/// only removed from the pending set as they are yielded, so a mid-batch
/// [`Ctx::cancel`] of a not-yet-yielded event works exactly as it did
/// pre-batching, and a mid-batch stop leaves the rest pending.
pub struct InstantBatch {
    at: SimTime,
    budget: u64,
    taken: u64,
}

impl InstantBatch {
    /// The instant this batch fires at.
    #[inline]
    pub fn at(&self) -> SimTime {
        self.at
    }

    /// Events yielded so far.
    #[inline]
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Pull the next event of this instant, or `None` when the instant is
    /// drained, the budget is spent, or a stop was requested.
    ///
    /// Within the instant the order is: feed events first (the feed wins
    /// ties), then queued events in scheduling order (including events
    /// scheduled *at* this instant mid-batch), then inbox events in
    /// canonical key order. Inbox insertion is strictly future, so the
    /// inbox tail of an instant is complete before it starts draining.
    pub fn next<E>(&mut self, ctx: &mut Ctx<'_, E>) -> Option<E> {
        if self.taken >= self.budget || *ctx.stop_requested {
            return None;
        }
        let event = match ctx.feed.front() {
            Some(&(ft, _)) if ft == self.at => ctx.feed.pop_front().expect("peeked").1,
            _ => match ctx.queue.pop_if_at(self.at) {
                Some(e) => e,
                None => match ctx.inbox.first_key_value() {
                    Some((&(at, _), _)) if at == self.at => {
                        ctx.inbox.pop_first().expect("peeked").1
                    }
                    _ => return None,
                },
            },
        };
        self.taken += 1;
        Some(event)
    }
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained.
    Exhausted,
    /// The world requested a stop.
    Stopped,
    /// The time horizon passed; remaining events are still pending.
    HorizonReached,
    /// The configured event budget was consumed.
    BudgetExhausted,
}

/// The simulation executive: clock + event set + world.
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    /// Pre-sorted external workload, merged lazily into the dispatch order
    /// (see [`Simulation::feed_sorted`]). Kept outside the calendar so a
    /// bulk workload does not inflate the in-flight set for the whole run.
    feed: std::collections::VecDeque<(SimTime, W::Event)>,
    /// Canonically-ordered side channel (see [`InboxKey`]): events here
    /// dispatch after the queue at their instant, in key order.
    inbox: BTreeMap<(SimTime, InboxKey), W::Event>,
    now: SimTime,
    stop_requested: bool,
    events_processed: u64,
}

impl<W: World> Simulation<W> {
    /// Wrap `world` with an empty schedule at t = 0.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            feed: std::collections::VecDeque::new(),
            inbox: BTreeMap::new(),
            now: SimTime::ZERO,
            stop_requested: false,
            events_processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (between runs; e.g. to extract stats).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an initial event from outside the world.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventKey {
        assert!(at >= self.now, "initial event scheduled in the past");
        self.queue.push(at, event)
    }

    /// Install a bulk external workload: `events` must be sorted by time
    /// (ties fire in vector order) and is merged lazily into the dispatch
    /// order. At equal timestamps a fed event fires **before** anything in
    /// the pending-event set — exactly the order that scheduling the whole
    /// workload up-front (before any other initial event) used to produce,
    /// so runs are bit-identical to the eager schedule.
    ///
    /// The point is cost, not semantics: a 15k-send workload used to sit in
    /// the pending set for the entire run, taxing every queue operation;
    /// as a sorted side feed, the queue holds only in-flight events.
    ///
    /// # Panics
    /// If a feed is already installed, or `events` is unsorted or starts in
    /// the past.
    pub fn feed_sorted(&mut self, events: Vec<(SimTime, W::Event)>) {
        assert!(self.feed.is_empty(), "workload feed already installed");
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "workload feed must be sorted by time"
        );
        if let Some(&(first, _)) = events.first() {
            assert!(first >= self.now, "workload feed starts in the past");
        }
        self.feed = events.into();
    }

    /// Time of the next event to dispatch (feed wins ties), if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        let fq = match (self.feed.front().map(|&(at, _)| at), self.queue.peek_time()) {
            (Some(f), Some(q)) => Some(f.min(q)),
            (Some(f), None) => Some(f),
            (None, q) => q,
        };
        let inbox = self.inbox.first_key_value().map(|(&(at, _), _)| at);
        match (fq, inbox) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Ingest one externally-routed inbox event (a cross-shard message
    /// exchanged by the parallel executive). Same ordering contract as
    /// [`Ctx::schedule_inbox`].
    ///
    /// # Panics
    /// If `at` is not in the strict future, or the key is already taken.
    pub fn ingest(&mut self, at: SimTime, key: InboxKey, event: W::Event) {
        assert!(
            at > self.now,
            "ingested event must be strictly future: now={} at={at}",
            self.now
        );
        let clash = self.inbox.insert((at, key), event);
        assert!(clash.is_none(), "inbox key collision at {at}: {key:?}");
    }

    /// True once the world has requested a stop (the latch is permanent:
    /// a stopped simulation dispatches nothing further).
    pub fn is_stopped(&self) -> bool {
        self.stop_requested
    }

    /// Advance to the next pending instant and dispatch up to `max_events`
    /// of its events through one [`World::handle_batch`] call. Returns the
    /// number of events dispatched (0 when nothing is pending).
    pub fn step_instant(&mut self, max_events: u64) -> u64 {
        let Some(at) = self.next_time() else {
            return 0;
        };
        debug_assert!(at >= self.now, "event queue returned a past event");
        self.now = at;
        let mut ctx = Ctx {
            now: at,
            queue: &mut self.queue,
            feed: &mut self.feed,
            inbox: &mut self.inbox,
            stop_requested: &mut self.stop_requested,
        };
        let mut batch = InstantBatch {
            at,
            budget: max_events,
            taken: 0,
        };
        self.world.handle_batch(&mut ctx, &mut batch);
        self.events_processed += batch.taken;
        batch.taken
    }

    /// Dispatch a single event. Returns `false` if none is pending.
    pub fn step(&mut self) -> bool {
        self.step_instant(1) > 0
    }

    /// Run until the event set drains or the world calls [`Ctx::stop`].
    pub fn run(&mut self) -> RunOutcome {
        self.run_with_budget(u64::MAX)
    }

    /// Run, but dispatch at most `budget` events (guards runaway models).
    pub fn run_with_budget(&mut self, budget: u64) -> RunOutcome {
        let mut remaining = budget;
        while !self.stop_requested {
            if remaining == 0 {
                return RunOutcome::BudgetExhausted;
            }
            let taken = self.step_instant(remaining);
            if taken == 0 {
                return RunOutcome::Exhausted;
            }
            remaining -= taken;
        }
        RunOutcome::Stopped
    }

    /// Run until simulated time strictly exceeds `horizon` (events at exactly
    /// `horizon` are dispatched). The clock is left at the last dispatched
    /// event's time.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        while !self.stop_requested {
            match self.next_time() {
                None => return RunOutcome::Exhausted,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.step_instant(u64::MAX);
                }
            }
        }
        RunOutcome::Stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A world that plays ping-pong `limit` times.
    struct PingPong {
        count: u32,
        limit: u32,
        log: Vec<(u64, &'static str)>,
    }

    #[derive(Debug)]
    enum Ev {
        Ping,
        Pong,
    }

    impl World for PingPong {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, event: Ev) {
            match event {
                Ev::Ping => {
                    self.log.push((ctx.now().nanos(), "ping"));
                    ctx.schedule_in(SimDuration::from_secs(1), Ev::Pong);
                }
                Ev::Pong => {
                    self.log.push((ctx.now().nanos(), "pong"));
                    self.count += 1;
                    if self.count < self.limit {
                        ctx.schedule_in(SimDuration::from_secs(1), Ev::Ping);
                    } else {
                        ctx.stop();
                    }
                }
            }
        }
    }

    fn pingpong(limit: u32) -> Simulation<PingPong> {
        let mut sim = Simulation::new(PingPong {
            count: 0,
            limit,
            log: vec![],
        });
        sim.schedule_at(SimTime::ZERO, Ev::Ping);
        sim
    }

    #[test]
    fn runs_to_stop() {
        let mut sim = pingpong(3);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.world().count, 3);
        assert_eq!(sim.events_processed(), 6);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn exhausts_when_no_events() {
        struct Inert;
        impl World for Inert {
            type Event = ();
            fn handle(&mut self, _: &mut Ctx<'_, ()>, _: ()) {}
        }
        let mut sim = Simulation::new(Inert);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
    }

    #[test]
    fn horizon_stops_dispatch() {
        let mut sim = pingpong(100);
        let outcome = sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at t=0..=10s fired: ping@0, pong@1 ... 11 events.
        assert_eq!(sim.events_processed(), 11);
        assert!(sim.now() <= SimTime::ZERO + SimDuration::from_secs(10));
    }

    #[test]
    fn budget_limits_events() {
        let mut sim = pingpong(1_000);
        assert_eq!(sim.run_with_budget(7), RunOutcome::BudgetExhausted);
        assert_eq!(sim.events_processed(), 7);
    }

    #[test]
    fn budget_splits_an_instant_batch() {
        // 10 events at the same instant, budget 4: the batch is cut mid-
        // instant and the remaining 6 events stay pending for a later run.
        struct Tally {
            seen: Vec<u32>,
        }
        impl World for Tally {
            type Event = u32;
            fn handle(&mut self, _: &mut Ctx<'_, u32>, ev: u32) {
                self.seen.push(ev);
            }
        }
        let mut sim = Simulation::new(Tally { seen: vec![] });
        for i in 0..10 {
            sim.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), i);
        }
        assert_eq!(sim.run_with_budget(4), RunOutcome::BudgetExhausted);
        assert_eq!(sim.events_processed(), 4);
        assert_eq!(sim.world().seen, vec![0, 1, 2, 3]);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.world().seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stop_mid_batch_leaves_rest_pending() {
        // An instant with 5 events where the second handler stops: the
        // remaining 3 were never popped and stay pending.
        struct Stopper {
            handled: u32,
        }
        impl World for Stopper {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                self.handled += 1;
                if ev == 1 {
                    ctx.stop();
                }
            }
        }
        let mut sim = Simulation::new(Stopper { handled: 0 });
        for i in 0..5 {
            sim.schedule_at(SimTime::ZERO, i);
        }
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.world().handled, 2);
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn cancel_within_batch_skips_later_event() {
        // Handler of the first event cancels the third (same instant):
        // the third must not fire, exactly as with one-per-step dispatch.
        struct Canceller {
            key: Option<EventKey>,
            fired: Vec<u32>,
        }
        impl World for Canceller {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                self.fired.push(ev);
                if ev == 0 {
                    assert!(ctx.cancel(self.key.take().expect("key set")));
                }
            }
        }
        let mut sim = Simulation::new(Canceller {
            key: None,
            fired: vec![],
        });
        sim.schedule_at(SimTime::ZERO, 0);
        sim.schedule_at(SimTime::ZERO, 1);
        let k = sim.schedule_at(SimTime::ZERO, 2);
        sim.world_mut().key = Some(k);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.world().fired, vec![0, 1]);
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn same_instant_schedules_join_the_batch_tail() {
        // A handler scheduling at the current instant: the new event fires
        // within the same batch, after everything already pending there.
        struct Chain {
            fired: Vec<u32>,
        }
        impl World for Chain {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                self.fired.push(ev);
                if ev == 0 {
                    ctx.schedule_at(ctx.now(), 99);
                }
            }
        }
        let mut sim = Simulation::new(Chain { fired: vec![] });
        sim.schedule_at(SimTime::ZERO, 0);
        sim.schedule_at(SimTime::ZERO, 1);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.world().fired, vec![0, 1, 99], "99 after pending 1");
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn batched_world_sees_whole_instant() {
        // An overriding world observes batch boundaries: one handle_batch
        // call per instant, covering every event at that instant.
        struct Batches {
            sizes: Vec<u64>,
        }
        impl World for Batches {
            type Event = u32;
            fn handle(&mut self, _: &mut Ctx<'_, u32>, _: u32) {}
            fn handle_batch(&mut self, ctx: &mut Ctx<'_, u32>, batch: &mut InstantBatch) {
                while let Some(ev) = batch.next(ctx) {
                    self.handle(ctx, ev);
                }
                self.sizes.push(batch.taken());
            }
        }
        let mut sim = Simulation::new(Batches { sizes: vec![] });
        let t1 = SimTime::ZERO + SimDuration::from_secs(1);
        let t2 = SimTime::ZERO + SimDuration::from_secs(2);
        for i in 0..3 {
            sim.schedule_at(t1, i);
        }
        sim.schedule_at(t2, 3);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.world().sizes, vec![3, 1]);
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                if ev == 1 {
                    ctx.schedule_at(SimTime::ZERO, 2);
                }
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), 1);
        sim.run();
    }

    #[test]
    fn deterministic_replay() {
        let run = |limit| {
            let mut sim = pingpong(limit);
            sim.run();
            sim.into_world().log
        };
        assert_eq!(run(50), run(50));
    }

    #[test]
    fn feed_ties_fire_before_queue_events_within_a_batch() {
        // Feed events at t and queued events at t share one batch; the
        // feed's must come first (the pre-batching tie rule).
        struct Order {
            fired: Vec<u32>,
        }
        impl World for Order {
            type Event = u32;
            fn handle(&mut self, _: &mut Ctx<'_, u32>, ev: u32) {
                self.fired.push(ev);
            }
        }
        let t1 = SimTime::ZERO + SimDuration::from_secs(1);
        let mut sim = Simulation::new(Order { fired: vec![] });
        sim.schedule_at(t1, 10);
        sim.schedule_at(t1, 11);
        sim.feed_sorted(vec![(t1, 0), (t1, 1)]);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.world().fired, vec![0, 1, 10, 11]);
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn inbox_fires_after_queue_in_key_order() {
        // Queue and inbox events at one instant: the queue's fire first
        // (in scheduling order), then the inbox's in key order — NOT in
        // insertion order.
        struct Order {
            fired: Vec<u32>,
        }
        impl World for Order {
            type Event = u32;
            fn handle(&mut self, _: &mut Ctx<'_, u32>, ev: u32) {
                self.fired.push(ev);
            }
        }
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let mut sim = Simulation::new(Order { fired: vec![] });
        sim.schedule_at(t, 10);
        // Inserted out of key order; keys sort 100 < 101 < 102.
        sim.ingest(t, (SimTime(5), 0, 1), 102);
        sim.ingest(t, (SimTime(3), 0, 0), 100);
        sim.ingest(t, (SimTime(3), 7, 0), 101);
        sim.schedule_at(t, 11);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.world().fired, vec![10, 11, 100, 101, 102]);
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn inbox_alone_advances_the_clock() {
        // next_time must see the inbox even when feed and queue are empty.
        struct Sink {
            fired: Vec<u32>,
        }
        impl World for Sink {
            type Event = u32;
            fn handle(&mut self, _: &mut Ctx<'_, u32>, ev: u32) {
                self.fired.push(ev);
            }
        }
        let mut sim = Simulation::new(Sink { fired: vec![] });
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        sim.ingest(t, (SimTime::ZERO, 1, 0), 7);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.world().fired, vec![7]);
        assert_eq!(sim.now(), t);
    }

    #[test]
    fn inbox_events_can_schedule_followups() {
        // An inbox handler schedules a queue event at a later instant; it
        // dispatches normally.
        struct Chain {
            fired: Vec<u32>,
        }
        impl World for Chain {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                self.fired.push(ev);
                if ev == 1 {
                    ctx.schedule_in(SimDuration::from_secs(1), 2);
                    ctx.schedule_inbox(ctx.now() + SimDuration::from_secs(1), (ctx.now(), 0, 0), 3);
                }
            }
        }
        let mut sim = Simulation::new(Chain { fired: vec![] });
        sim.ingest(
            SimTime::ZERO + SimDuration::from_secs(1),
            (SimTime::ZERO, 0, 0),
            1,
        );
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        // At t=2 the queued 2 fires before the inboxed 3.
        assert_eq!(sim.world().fired, vec![1, 2, 3]);
    }

    #[test]
    fn stop_skips_remaining_inbox_events() {
        // A queue event stopping the run leaves same-instant inbox events
        // unpulled — the rule that makes the horizon `End` latch identical
        // between sequential and sharded runs.
        struct Stopper {
            fired: Vec<u32>,
        }
        impl World for Stopper {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                self.fired.push(ev);
                if ev == 0 {
                    ctx.stop();
                }
            }
        }
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let mut sim = Simulation::new(Stopper { fired: vec![] });
        sim.schedule_at(t, 0);
        sim.ingest(t, (SimTime::ZERO, 0, 0), 9);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.world().fired, vec![0]);
    }

    #[test]
    #[should_panic(expected = "strictly future")]
    fn ingesting_at_the_current_instant_panics() {
        struct Inert;
        impl World for Inert {
            type Event = u32;
            fn handle(&mut self, _: &mut Ctx<'_, u32>, _: u32) {}
        }
        let mut sim = Simulation::new(Inert);
        sim.ingest(SimTime::ZERO, (SimTime::ZERO, 0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "inbox key collision")]
    fn duplicate_inbox_keys_panic() {
        struct Inert;
        impl World for Inert {
            type Event = u32;
            fn handle(&mut self, _: &mut Ctx<'_, u32>, _: u32) {}
        }
        let mut sim = Simulation::new(Inert);
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        sim.ingest(t, (SimTime::ZERO, 0, 0), 1);
        sim.ingest(t, (SimTime::ZERO, 0, 0), 2);
    }

    #[test]
    fn feed_interleaves_at_bucket_boundaries() {
        // Feed and queue events alternating across calendar bucket
        // boundaries (and colliding exactly on them) dispatch in global
        // (time, seq) order with feed winning ties.
        struct Log {
            fired: Vec<(u64, u32)>,
        }
        impl World for Log {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                self.fired.push((ctx.now().nanos(), ev));
            }
        }
        let mut sim = Simulation::new(Log { fired: vec![] });
        // The fresh queue's bucket width is 2^16 ns; place events on and
        // around multiples of it, far beyond one revolution, and at ties.
        let w = 1u64 << 16;
        let mut expect = Vec::new();
        let mut feed = Vec::new();
        for i in 0..200u64 {
            let at = SimTime(i * w / 2 + (i % 3));
            if i % 2 == 0 {
                sim.schedule_at(at, i as u32);
            } else {
                feed.push((at, i as u32));
            }
            expect.push((at.nanos(), i as u32));
        }
        // Far-future (overflow-resident) events, plus ties against feed.
        for i in 0..8u64 {
            let at = SimTime(w * 4096 * (i + 1));
            sim.schedule_at(at, 1_000 + i as u32);
            feed.push((at, 2_000 + i as u32));
            // Feed wins the tie despite the queue push happening first.
            expect.push((at.nanos(), 2_000 + i as u32));
            expect.push((at.nanos(), 1_000 + i as u32));
        }
        sim.feed_sorted(feed);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        expect.sort_by_key(|&(at, ev)| (at, (1_000..2_000).contains(&ev) as u32, ev));
        assert_eq!(sim.world().fired, expect);
    }
}
