//! Statistics collection.
//!
//! The simulator's observable output is statistical (the paper reports CLC
//! counts, message counts, stored-checkpoint counts before/after GC). This
//! module provides the collectors those reports are built from:
//!
//! * [`Counter`] — monotonically increasing event count;
//! * [`Tally`] — running mean/variance/min/max (Welford);
//! * [`TimeSeries`] — `(time, value)` samples, e.g. stored CLCs over time;
//! * [`Histogram`] — fixed-width bins with under/overflow;
//! * [`StatsRegistry`] — a string-keyed bag of all of the above so drivers
//!   can dump every metric uniformly at end of run.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }
    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }
    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Running summary statistics over a stream of samples (Welford's method).
#[derive(Debug, Clone, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Unbiased sample variance (0 if fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }
    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A `(time, value)` sample sequence.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries { samples: vec![] }
    }
    /// Append a sample; times must be non-decreasing.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            assert!(at >= last, "time series sampled out of order");
        }
        self.samples.push((at, value));
    }
    /// All samples in order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }
    /// Last sample value, if any.
    pub fn last(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }
    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with underflow/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    tally: Tally,
}

impl Histogram {
    /// `nbins` equal bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// If `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            width: (hi - lo) / nbins as f64,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            tally: Tally::new(),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.tally.record(x);
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }
    /// Number of in-range bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }
    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
    /// Summary statistics of all recorded samples (including out-of-range).
    pub fn tally(&self) -> &Tally {
        &self.tally
    }
}

/// A string-keyed registry of every collector, for uniform end-of-run dumps.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    counters: BTreeMap<String, Counter>,
    tallies: BTreeMap<String, Tally>,
    series: BTreeMap<String, TimeSeries>,
}

impl StatsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create a counter.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }
    /// Get-or-create a tally.
    pub fn tally(&mut self, name: &str) -> &mut Tally {
        self.tallies.entry(name.to_string()).or_default()
    }
    /// Get-or-create a time series.
    pub fn series(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_string()).or_default()
    }

    /// Read a counter's value (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }
    /// Read a tally (if present).
    pub fn tally_ref(&self, name: &str) -> Option<&Tally> {
        self.tallies.get(name)
    }
    /// Read a series (if present).
    pub fn series_ref(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }
}

impl fmt::Display for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, c) in &self.counters {
            writeln!(f, "counter {name} = {}", c.get())?;
        }
        for (name, t) in &self.tallies {
            writeln!(
                f,
                "tally   {name}: n={} mean={:.4} sd={:.4}",
                t.count(),
                t.mean(),
                t.stddev()
            )?;
        }
        for (name, s) in &self.series {
            writeln!(f, "series  {name}: {} samples", s.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn tally_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut t = Tally::new();
        for &x in &xs {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
    }

    #[test]
    fn empty_tally_is_safe() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn series_records_in_order() {
        let mut s = TimeSeries::new();
        s.record(SimTime::ZERO, 1.0);
        s.record(SimTime::ZERO + SimDuration::from_secs(1), 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn series_rejects_time_regression() {
        let mut s = TimeSeries::new();
        s.record(SimTime::ZERO + SimDuration::from_secs(1), 1.0);
        s.record(SimTime::ZERO, 2.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin(0), 2); // 0.0, 1.9
        assert_eq!(h.bin(1), 1); // 2.0
        assert_eq!(h.bin(4), 1); // 9.9
        assert_eq!(h.tally().count(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn registry_round_trips() {
        let mut r = StatsRegistry::new();
        r.counter("clc.forced").add(3);
        r.tally("rollback.depth").record(2.0);
        r.series("clcs.stored").record(SimTime::ZERO, 1.0);
        assert_eq!(r.counter_value("clc.forced"), 3);
        assert_eq!(r.counter_value("missing"), 0);
        assert_eq!(r.tally_ref("rollback.depth").unwrap().count(), 1);
        assert_eq!(r.series_ref("clcs.stored").unwrap().len(), 1);
        let dump = r.to_string();
        assert!(dump.contains("clc.forced"));
        assert!(dump.contains("rollback.depth"));
    }
}
