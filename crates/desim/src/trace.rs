//! Execution tracing.
//!
//! The paper's simulator "can be compiled with different trace levels. With
//! the higher trace level, we can observe each node time-stamped action".
//! We reproduce that as a runtime-configurable tracer: models emit
//! `(time, subsystem, message)` records; the sink either drops them, counts
//! them, or stores/prints them, depending on the configured level.

use crate::time::SimTime;

/// How much detail the tracer keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Keep nothing (statistics only) — the paper's "lowest output".
    #[default]
    Off,
    /// Keep protocol-level actions (checkpoints, rollbacks, GC).
    Protocol,
    /// Keep everything, including every message send/receive and timer fire.
    Full,
}

/// A single time-stamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the action happened.
    pub at: SimTime,
    /// Subsystem tag, e.g. `"clc"`, `"net"`, `"rollback"`.
    pub subsystem: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// Collects trace records according to the configured level.
#[derive(Debug, Default)]
pub struct Tracer {
    level: TraceLevel,
    records: Vec<TraceRecord>,
    dropped: u64,
    echo: bool,
}

impl Tracer {
    /// A tracer keeping records at `level`.
    pub fn new(level: TraceLevel) -> Self {
        Tracer {
            level,
            records: vec![],
            dropped: 0,
            echo: false,
        }
    }

    /// Also print each kept record to stderr as it is recorded.
    pub fn with_echo(mut self) -> Self {
        self.echo = true;
        self
    }

    /// The configured level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether records needing `level` are currently kept. Hot paths guard
    /// on this to skip even *constructing* the record closure and its
    /// captured arguments (a gated call also skips the dropped-record
    /// counter, which only tallies records that reached the tracer).
    #[inline]
    pub fn enabled(&self, level: TraceLevel) -> bool {
        self.level >= level
    }

    /// Record a protocol-level action (kept at `Protocol` and `Full`).
    pub fn protocol(
        &mut self,
        at: SimTime,
        subsystem: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        self.emit(TraceLevel::Protocol, at, subsystem, detail);
    }

    /// Record a fine-grained action (kept only at `Full`).
    pub fn full(&mut self, at: SimTime, subsystem: &'static str, detail: impl FnOnce() -> String) {
        self.emit(TraceLevel::Full, at, subsystem, detail);
    }

    fn emit(
        &mut self,
        needs: TraceLevel,
        at: SimTime,
        subsystem: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if self.level < needs {
            self.dropped += 1;
            return;
        }
        let rec = TraceRecord {
            at,
            subsystem,
            detail: detail(),
        };
        if self.echo {
            eprintln!("[{}] {}: {}", rec.at, rec.subsystem, rec.detail);
        }
        self.records.push(rec);
    }

    /// All kept records, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Merge per-shard tracers into one, ordered by record time; ties keep
    /// the order of `parts`, then each part's own emission order. Dropped
    /// counters are summed; echo is off (each part already echoed live).
    pub fn merged(level: TraceLevel, parts: Vec<Tracer>) -> Tracer {
        let mut dropped = 0;
        let mut tagged: Vec<(usize, usize, TraceRecord)> = Vec::new();
        for (p, t) in parts.into_iter().enumerate() {
            dropped += t.dropped;
            for (i, r) in t.records.into_iter().enumerate() {
                tagged.push((p, i, r));
            }
        }
        tagged.sort_by_key(|&(p, i, ref r)| (r.at, p, i));
        Tracer {
            level,
            records: tagged.into_iter().map(|(_, _, r)| r).collect(),
            dropped,
            echo: false,
        }
    }

    /// Records for one subsystem.
    pub fn by_subsystem<'a>(&'a self, subsystem: &str) -> impl Iterator<Item = &'a TraceRecord> {
        let owned = subsystem.to_string();
        self.records
            .iter()
            .filter(move |r| r.subsystem == owned.as_str())
    }

    /// How many records were suppressed by the level filter.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_drops_everything() {
        let mut t = Tracer::new(TraceLevel::Off);
        t.protocol(SimTime::ZERO, "clc", || "commit".into());
        t.full(SimTime::ZERO, "net", || "send".into());
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn protocol_keeps_protocol_only() {
        let mut t = Tracer::new(TraceLevel::Protocol);
        t.protocol(SimTime::ZERO, "clc", || "commit".into());
        t.full(SimTime::ZERO, "net", || "send".into());
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].subsystem, "clc");
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn full_keeps_everything_in_order() {
        let mut t = Tracer::new(TraceLevel::Full);
        t.protocol(SimTime::ZERO, "clc", || "a".into());
        t.full(SimTime::ZERO, "net", || "b".into());
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].detail, "a");
        assert_eq!(t.records()[1].detail, "b");
    }

    #[test]
    fn by_subsystem_filters() {
        let mut t = Tracer::new(TraceLevel::Full);
        t.full(SimTime::ZERO, "net", || "1".into());
        t.full(SimTime::ZERO, "clc", || "2".into());
        t.full(SimTime::ZERO, "net", || "3".into());
        let net: Vec<_> = t.by_subsystem("net").map(|r| r.detail.clone()).collect();
        assert_eq!(net, vec!["1", "3"]);
    }

    #[test]
    fn closures_not_evaluated_when_dropped() {
        let mut t = Tracer::new(TraceLevel::Off);
        let mut evaluated = false;
        t.full(SimTime::ZERO, "net", || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated, "detail closure must be lazy");
    }
}
