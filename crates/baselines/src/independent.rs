//! Baseline: fully independent checkpointing.
//!
//! Each cluster checkpoints on its own timer with **no** coordination and
//! **no** communication-induced forcing. Checkpointing is cheap, but the
//! recovery line must be computed at rollback time from the full
//! dependency history, and cascading invalidation can unwind arbitrarily
//! far — the domino effect the paper cites as the reason an independent
//! mechanism "does not fit" (§2.2).

use crate::common::{BaselineInput, BaselineReport, RollbackSummary};
use desim::SimTime;
use netsim::ClusterId;

/// Evaluate independent checkpointing on the input.
pub fn evaluate(input: &BaselineInput) -> BaselineReport {
    let topo = &input.topology;
    let n = topo.num_clusters();

    let ckpt_times: Vec<Vec<SimTime>> = (0..n).map(|c| input.checkpoint_times(c)).collect();
    let total_ckpts: u64 = ckpt_times.iter().map(|t| t.len() as u64).sum();

    // Inter-cluster messages with approximate receive times (send + link
    // latency; serialization is negligible for the analysis).
    struct Dep {
        from: usize,
        to: usize,
        sent: SimTime,
        received: SimTime,
    }
    let deps: Vec<Dep> = input
        .sends
        .iter()
        .filter(|s| s.from.cluster != s.to.cluster)
        .map(|s| {
            let link = topo.inter_link(s.from.cluster, s.to.cluster);
            Dep {
                from: s.from.cluster.index(),
                to: s.to.cluster.index(),
                sent: s.at,
                received: s.at + link.latency + link.transmit_time(s.bytes),
            }
        })
        .collect();

    let last_ckpt = |c: usize, t: SimTime| -> SimTime {
        ckpt_times[c]
            .iter()
            .copied()
            .take_while(|&ck| ck <= t)
            .last()
            .unwrap_or(SimTime::ZERO)
    };

    let rollbacks = input
        .faults
        .iter()
        .map(|&(at, faulty)| {
            // bound[c]: the cluster's state survives up to this instant.
            let mut bound = vec![at; n];
            bound[faulty] = last_ckpt(faulty, at);
            // Fixpoint: a message sent after the sender's bound but
            // received before the receiver's bound is a ghost; the
            // receiver must fall back to a checkpoint preceding the
            // receive.
            loop {
                let mut changed = false;
                for d in &deps {
                    if d.sent > bound[d.from] && d.received <= bound[d.to] {
                        // Strictly before the receive instant.
                        let fallback = ckpt_times[d.to]
                            .iter()
                            .copied()
                            .take_while(|&ck| ck < d.received)
                            .last()
                            .unwrap_or(SimTime::ZERO);
                        if fallback < bound[d.to] {
                            bound[d.to] = fallback;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            let clusters_rolled_back = (0..n).filter(|&c| bound[c] < at).count();
            let lost: f64 = (0..n)
                .map(|c| {
                    at.saturating_since(bound[c]).as_secs_f64()
                        * topo.nodes_in(ClusterId(c as u16)) as f64
                })
                .sum();
            RollbackSummary {
                at,
                clusters_rolled_back,
                lost_node_seconds: lost,
            }
        })
        .collect();

    // Costs: an uncoordinated cluster checkpoint still replicates every
    // node's fragment, but exchanges no request/ack/commit rounds and never
    // freezes the application.
    let storage: u64 = (0..n)
        .map(|c| {
            ckpt_times[c].len() as u64
                * topo.nodes_in(ClusterId(c as u16)) as u64
                * input.fragment_bytes
        })
        .sum();

    BaselineReport {
        protocol: "independent",
        checkpoints: total_ckpts,
        protocol_messages: (0..n)
            .map(|c| ckpt_times[c].len() as u64 * topo.nodes_in(ClusterId(c as u16)) as u64)
            .sum(),
        storage_bytes: storage,
        frozen_time: desim::SimDuration::ZERO,
        peak_log_bytes: 0,
        rollbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use netsim::{NodeId, Topology};
    use workload::SendEvent;

    fn minutes(m: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_minutes(m)
    }

    fn ping_pong_input() -> BaselineInput {
        // Dense bidirectional chatter (one message per direction per
        // minute) against *staggered* checkpoint periods (30 vs 37
        // minutes): the classic domino setup — no set of local checkpoints
        // forms a consistent cut except the initial state.
        let mut sends = vec![];
        for k in 0..520u64 {
            sends.push(SendEvent {
                at: SimTime::ZERO + SimDuration::from_secs(60 * k + 20),
                from: NodeId::new(0, 0),
                to: NodeId::new(1, 0),
                bytes: 1024,
            });
            sends.push(SendEvent {
                at: SimTime::ZERO + SimDuration::from_secs(60 * k + 40),
                from: NodeId::new(1, 0),
                to: NodeId::new(0, 0),
                bytes: 1024,
            });
        }
        sends.sort_by_key(|s| s.at);
        BaselineInput {
            topology: Topology::paper_reference(2),
            sends,
            duration: SimDuration::from_hours(9),
            ckpt_periods: vec![SimDuration::from_minutes(30), SimDuration::from_minutes(37)],
            fragment_bytes: 1 << 20,
            faults: vec![],
        }
    }

    #[test]
    fn no_faults_no_rollbacks() {
        let r = evaluate(&ping_pong_input());
        assert!(r.rollbacks.is_empty());
        assert_eq!(r.frozen_time, SimDuration::ZERO, "never blocks the app");
        assert!(r.checkpoints >= 30, "both clusters checkpoint freely");
    }

    #[test]
    fn ping_pong_traffic_dominoes_to_start() {
        let mut input = ping_pong_input();
        input.faults = vec![(minutes(301), 0)];
        let r = evaluate(&input);
        assert_eq!(r.rollbacks[0].clusters_rolled_back, 2);
        // Cross deps every ~5 minutes against 30-minute checkpoints:
        // every fallback re-exposes an older ghost — full domino.
        let lost = r.rollbacks[0].lost_node_seconds;
        let full = 301.0 * 60.0 * 200.0;
        assert!(
            lost > full * 0.9,
            "expected near-total loss, got {lost} of {full}"
        );
    }

    #[test]
    fn one_way_sparse_traffic_contains_rollback() {
        // Only 0 -> 1 messages, sparse: a fault in cluster 1 hurts nobody
        // else, and loses at most one period.
        let sends = vec![SendEvent {
            at: minutes(10),
            from: NodeId::new(0, 0),
            to: NodeId::new(1, 0),
            bytes: 1024,
        }];
        let input = BaselineInput {
            sends,
            faults: vec![(minutes(100), 1)],
            ..ping_pong_input()
        };
        let r = evaluate(&input);
        assert_eq!(r.rollbacks[0].clusters_rolled_back, 1);
        let lost = r.rollbacks[0].lost_node_seconds;
        // Cluster 1 fell back to its 74-minute checkpoint: 26 min x 100.
        assert!((lost - 26.0 * 60.0 * 100.0).abs() < 1.0, "lost {lost}");
    }

    #[test]
    fn sender_fault_invalidates_receiver_after_receipt() {
        // Message 0 -> 1 at minute 40 (received ~instantly); cluster 1
        // checkpoints at 60; cluster 0 faults at 50 and restores its
        // 30-minute checkpoint, unsending the message. Cluster 1 at bound
        // 50 has received it (40 <= 50) -> falls to its checkpoint before
        // 40, i.e. 30.
        let sends = vec![SendEvent {
            at: minutes(40),
            from: NodeId::new(0, 0),
            to: NodeId::new(1, 0),
            bytes: 1024,
        }];
        let input = BaselineInput {
            sends,
            faults: vec![(minutes(50), 0)],
            ..ping_pong_input()
        };
        let r = evaluate(&input);
        assert_eq!(r.rollbacks[0].clusters_rolled_back, 2);
        // Cluster 0 fell to its 30-min checkpoint (20 min lost); cluster 1
        // fell to its 37-min checkpoint, losing 13 min. 100 nodes each.
        let lost = r.rollbacks[0].lost_node_seconds;
        assert!(
            (lost - (20.0 + 13.0) * 60.0 * 100.0).abs() < 1.0,
            "lost {lost}"
        );
    }
}
