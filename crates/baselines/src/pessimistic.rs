//! Baseline: pessimistic message logging (MPICH-V-like).
//!
//! "All the communications are logged and can be replayed. This avoids all
//! dependencies so that a faulty node will rollback, but not the others.
//! But this means that strong assumptions upon determinism have to be made"
//! (paper §6). We model that family: *every* application message — intra-
//! and inter-cluster — is written to stable storage before delivery; on a
//! fault only the failed node restores its last checkpoint and replays its
//! inbox. Requires the piecewise-deterministic (PWD) assumption the HC3I
//! paper explicitly refuses to make.

use crate::common::{BaselineInput, BaselineReport, RollbackSummary};

/// Evaluate pessimistic logging on the input.
pub fn evaluate(input: &BaselineInput) -> BaselineReport {
    // Log volume over time: every message's payload is logged at send time;
    // a cluster's log entries can be discarded once the *receiving* node
    // checkpoints past them — conservatively keep entries for one full
    // checkpoint period. Peak = max bytes in any window of the longest
    // finite period (or the entire run when no timer is armed).
    let window = input
        .ckpt_periods
        .iter()
        .copied()
        .filter(|p| !p.is_infinite())
        .max();

    let mut peak: u64 = 0;
    match window {
        None => {
            peak = input.sends.iter().map(|s| s.bytes).sum();
        }
        Some(w) => {
            // Two-pointer sweep over the time-sorted schedule.
            let mut lo = 0usize;
            let mut in_window: u64 = 0;
            for hi in 0..input.sends.len() {
                in_window += input.sends[hi].bytes;
                let cutoff = input.sends[hi].at;
                while input.sends[lo].at + w < cutoff {
                    in_window -= input.sends[lo].bytes;
                    lo += 1;
                }
                peak = peak.max(in_window);
            }
        }
    }

    let total_logged_bytes: u64 = input.sends.iter().map(|s| s.bytes).sum();
    let total_msgs = input.sends.len() as u64;

    // Checkpoints: per node, on the cluster's timer. Message logging adds
    // one stable-storage write (here: one protocol message) per app
    // message.
    let topo = &input.topology;
    let n = topo.num_clusters();
    let node_ckpts: u64 = (0..n)
        .map(|c| {
            input.checkpoint_times(c).len() as u64
                * topo.nodes_in(netsim::ClusterId(c as u16)) as u64
        })
        .sum();

    // Rollbacks: one node only; it loses its own time since its cluster's
    // last checkpoint (replay reconstructs the rest).
    let rollbacks = input
        .faults
        .iter()
        .map(|&(at, cluster)| {
            let last = input.last_checkpoint_before(cluster, at);
            RollbackSummary {
                at,
                clusters_rolled_back: 0, // no *cluster* rolls back
                lost_node_seconds: at.saturating_since(last).as_secs_f64(),
            }
        })
        .collect();

    BaselineReport {
        protocol: "pessimistic-log",
        checkpoints: node_ckpts,
        protocol_messages: total_msgs, // one logging write per message
        storage_bytes: node_ckpts * input.fragment_bytes + total_logged_bytes,
        frozen_time: desim::SimDuration::ZERO,
        peak_log_bytes: peak,
        rollbacks,
    }
}

/// The PWD assumption this baseline rests on, for documentation surfaces.
pub const ASSUMPTION: &str =
    "piecewise-deterministic execution: all non-deterministic events can be \
     logged and replayed identically";

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{SimDuration, SimTime};
    use netsim::{NodeId, Topology};
    use workload::SendEvent;

    fn minutes(m: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_minutes(m)
    }

    fn input() -> BaselineInput {
        let sends = (0..100u64)
            .map(|k| SendEvent {
                at: minutes(k),
                from: NodeId::new((k % 2) as u16, 0),
                to: NodeId::new(((k + 1) % 2) as u16, 1),
                bytes: 1000,
            })
            .collect();
        BaselineInput {
            topology: Topology::paper_reference(2),
            sends,
            duration: SimDuration::from_minutes(100),
            ckpt_periods: vec![SimDuration::from_minutes(30); 2],
            fragment_bytes: 1 << 20,
            faults: vec![(minutes(50), 0)],
        }
    }

    #[test]
    fn every_message_is_logged() {
        let r = evaluate(&input());
        assert_eq!(r.protocol_messages, 100);
        assert!(r.storage_bytes >= 100 * 1000);
    }

    #[test]
    fn peak_log_tracks_window() {
        let r = evaluate(&input());
        // 30-minute window, one 1000-byte message per minute: ~31 KB peak.
        assert!(
            r.peak_log_bytes >= 30_000 && r.peak_log_bytes <= 32_000,
            "peak {}",
            r.peak_log_bytes
        );
    }

    #[test]
    fn no_timer_means_log_everything() {
        let mut i = input();
        i.ckpt_periods = vec![SimDuration::INFINITE; 2];
        let r = evaluate(&i);
        assert_eq!(r.peak_log_bytes, 100 * 1000);
    }

    #[test]
    fn only_failed_node_loses_work() {
        let r = evaluate(&input());
        assert_eq!(r.rollbacks.len(), 1);
        assert_eq!(r.rollbacks[0].clusters_rolled_back, 0);
        // 50 - 30 = 20 minutes of one node's work.
        assert!((r.rollbacks[0].lost_node_seconds - 20.0 * 60.0).abs() < 1.0);
    }

    #[test]
    fn assumption_is_documented() {
        assert!(ASSUMPTION.contains("deterministic"));
    }
}
