//! Shared input/output types for the baseline protocols.
//!
//! The baselines model checkpointing at *cluster* granularity over the same
//! workload schedule and topology the full HC3I simulation uses, producing
//! directly comparable cost metrics. (HC3I itself is simulated at full
//! per-node fidelity by `simdriver`; the baselines answer "what would a
//! different protocol family have cost on this workload".)

use desim::{SimDuration, SimTime};
use netsim::Topology;
use workload::SendEvent;

/// Input shared by every baseline.
#[derive(Debug, Clone)]
pub struct BaselineInput {
    /// Federation topology (node counts and link classes).
    pub topology: Topology,
    /// The application send schedule, time-sorted.
    pub sends: Vec<SendEvent>,
    /// Total application duration.
    pub duration: SimDuration,
    /// Checkpoint period per cluster (global-coordinated uses the minimum).
    pub ckpt_periods: Vec<SimDuration>,
    /// Per-node checkpoint fragment size.
    pub fragment_bytes: u64,
    /// Scripted fault times: `(time, cluster)`.
    pub faults: Vec<(SimTime, usize)>,
}

impl BaselineInput {
    /// Effective checkpoint instants for cluster `c`: `period, 2·period, …`
    /// up to the horizon (plus the initial checkpoint at t = 0).
    pub fn checkpoint_times(&self, c: usize) -> Vec<SimTime> {
        let mut times = vec![SimTime::ZERO];
        let period = self.ckpt_periods[c];
        if period.is_infinite() || period.nanos() == 0 {
            return times;
        }
        let mut t = SimTime::ZERO + period;
        let horizon = SimTime::ZERO + self.duration;
        while t < horizon {
            times.push(t);
            t += period;
        }
        times
    }

    /// Latest checkpoint of cluster `c` at or before `t`.
    pub fn last_checkpoint_before(&self, c: usize, t: SimTime) -> SimTime {
        self.checkpoint_times(c)
            .into_iter()
            .take_while(|&ck| ck <= t)
            .last()
            .unwrap_or(SimTime::ZERO)
    }
}

/// One rollback event's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackSummary {
    /// When the fault hit.
    pub at: SimTime,
    /// How many clusters had to roll back.
    pub clusters_rolled_back: usize,
    /// Total lost computation, in node-seconds (per-cluster lost wall time
    /// × node count, summed).
    pub lost_node_seconds: f64,
}

/// Cost metrics comparable across protocols.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineReport {
    /// Which protocol produced this report.
    pub protocol: &'static str,
    /// Checkpoints taken (cluster-level or global, per the protocol).
    pub checkpoints: u64,
    /// Control messages spent on checkpointing coordination.
    pub protocol_messages: u64,
    /// Bytes of stable-storage traffic (fragments, logs).
    pub storage_bytes: u64,
    /// Total wall time the application was frozen by coordination.
    pub frozen_time: SimDuration,
    /// Peak bytes of message logs held.
    pub peak_log_bytes: u64,
    /// One summary per injected fault.
    pub rollbacks: Vec<RollbackSummary>,
}

impl BaselineReport {
    /// Mean clusters rolled back per fault (NaN-free: 0 when no faults).
    pub fn mean_rollback_scope(&self) -> f64 {
        if self.rollbacks.is_empty() {
            return 0.0;
        }
        self.rollbacks
            .iter()
            .map(|r| r.clusters_rolled_back as f64)
            .sum::<f64>()
            / self.rollbacks.len() as f64
    }

    /// Total lost node-seconds across all faults.
    pub fn total_lost_node_seconds(&self) -> f64 {
        self.rollbacks.iter().map(|r| r.lost_node_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    fn input() -> BaselineInput {
        BaselineInput {
            topology: Topology::paper_reference(2),
            sends: vec![],
            duration: SimDuration::from_minutes(100),
            ckpt_periods: vec![SimDuration::from_minutes(30), SimDuration::INFINITE],
            fragment_bytes: 1 << 20,
            faults: vec![],
        }
    }

    #[test]
    fn checkpoint_times_respect_period() {
        let i = input();
        let t = i.checkpoint_times(0);
        assert_eq!(t.len(), 4); // 0, 30, 60, 90
        assert_eq!(t[1], SimTime::ZERO + SimDuration::from_minutes(30));
        assert_eq!(i.checkpoint_times(1), vec![SimTime::ZERO], "infinite timer");
    }

    #[test]
    fn last_checkpoint_lookup() {
        let i = input();
        let at = |m: u64| SimTime::ZERO + SimDuration::from_minutes(m);
        assert_eq!(i.last_checkpoint_before(0, at(45)), at(30));
        assert_eq!(i.last_checkpoint_before(0, at(30)), at(30));
        assert_eq!(i.last_checkpoint_before(0, at(29)), at(0));
        assert_eq!(i.last_checkpoint_before(1, at(99)), at(0));
    }

    #[test]
    fn report_aggregates() {
        let r = BaselineReport {
            protocol: "x",
            rollbacks: vec![
                RollbackSummary {
                    at: SimTime::ZERO,
                    clusters_rolled_back: 2,
                    lost_node_seconds: 100.0,
                },
                RollbackSummary {
                    at: SimTime::ZERO,
                    clusters_rolled_back: 1,
                    lost_node_seconds: 50.0,
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.mean_rollback_scope(), 1.5);
        assert_eq!(r.total_lost_node_seconds(), 150.0);
        assert_eq!(BaselineReport::default().mean_rollback_scope(), 0.0);
    }
}
