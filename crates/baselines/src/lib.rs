//! # baselines — comparison checkpointing protocols
//!
//! Cluster-granularity cost models of the protocol families the paper
//! positions HC3I against (§2.2, §6), evaluated over the same topology and
//! workload schedule as the full-fidelity HC3I simulation:
//!
//! * [`global`] — federation-wide coordinated checkpointing (what the WAN
//!   makes too expensive);
//! * [`independent`] — uncoordinated checkpointing with rollback-time
//!   dependency analysis (the domino effect);
//! * [`pessimistic`] — MPICH-V-style log-everything (single-node rollback,
//!   but needs the PWD assumption and logs every byte).

#![warn(missing_docs)]

pub mod common;
pub mod global;
pub mod independent;
pub mod pessimistic;

pub use common::{BaselineInput, BaselineReport, RollbackSummary};
