//! Baseline: federation-wide coordinated checkpointing.
//!
//! The approach the paper argues *against* for the federation level (§2.2:
//! "the large number of nodes and network performance between clusters do
//! not allow a global synchronization"): one two-phase commit spanning
//! every node of every cluster, so each checkpoint freezes the whole
//! application for at least a WAN round trip plus the fragment transfer.
//! Its one virtue: a failure anywhere rolls everything back exactly one
//! global checkpoint — no cascade analysis needed.

use crate::common::{BaselineInput, BaselineReport, RollbackSummary};
use desim::{SimDuration, SimTime};
use netsim::ClusterId;

/// Evaluate global coordinated checkpointing on the input.
pub fn evaluate(input: &BaselineInput) -> BaselineReport {
    let topo = &input.topology;
    let n = topo.num_clusters();
    let total_nodes = topo.total_nodes();

    // The global period: the tightest per-cluster period requested.
    let period = input
        .ckpt_periods
        .iter()
        .copied()
        .min()
        .unwrap_or(SimDuration::INFINITE);

    // Checkpoint instants.
    let mut times = vec![SimTime::ZERO];
    if !period.is_infinite() && period.nanos() > 0 {
        let mut t = SimTime::ZERO + period;
        let horizon = SimTime::ZERO + input.duration;
        while t < horizon {
            times.push(t);
            t += period;
        }
    }

    // Freeze time per checkpoint: the 2PC needs two federation-spanning
    // rounds (request+ack, commit) bounded by the slowest inter-cluster
    // RTT, plus the intra-cluster fragment replication transfer.
    let mut max_inter_latency = SimDuration::ZERO;
    let mut max_fragment_time = SimDuration::ZERO;
    for a in topo.cluster_ids() {
        let intra = topo.link_between(a, a);
        max_fragment_time = max_fragment_time.max(intra.transmit_time(input.fragment_bytes));
        for b in topo.cluster_ids() {
            if a != b {
                max_inter_latency = max_inter_latency.max(topo.inter_link(a, b).latency);
            }
        }
    }
    let freeze_per_ckpt = max_inter_latency
        .saturating_mul(4) // request out + ack back + commit out + settle
        .saturating_add(max_fragment_time);

    // Message cost per checkpoint: request/ack/commit with every node, plus
    // one fragment replica per node.
    let msgs_per_ckpt = 3 * (total_nodes - 1) + total_nodes;
    let storage_per_ckpt = total_nodes * input.fragment_bytes;

    // Rollbacks: every fault rolls the whole federation back to the last
    // global checkpoint.
    let rollbacks = input
        .faults
        .iter()
        .map(|&(at, _cluster)| {
            let last = times
                .iter()
                .copied()
                .take_while(|&t| t <= at)
                .last()
                .unwrap();
            let lost_wall = at.saturating_since(last).as_secs_f64();
            RollbackSummary {
                at,
                clusters_rolled_back: n,
                lost_node_seconds: lost_wall * total_nodes as f64,
            }
        })
        .collect();

    let ckpts = times.len() as u64;
    BaselineReport {
        protocol: "global-coordinated",
        checkpoints: ckpts,
        protocol_messages: ckpts * msgs_per_ckpt,
        storage_bytes: ckpts * storage_per_ckpt,
        frozen_time: freeze_per_ckpt.saturating_mul(ckpts),
        peak_log_bytes: 0, // no message logging
        rollbacks,
    }
}

/// Convenience: count nodes in a cluster (test helper re-export).
pub fn nodes_in(input: &BaselineInput, c: usize) -> u64 {
    input.topology.nodes_in(ClusterId(c as u16)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Topology;

    fn input(faults: Vec<(SimTime, usize)>) -> BaselineInput {
        BaselineInput {
            topology: Topology::paper_reference(2),
            sends: vec![],
            duration: SimDuration::from_hours(10),
            ckpt_periods: vec![SimDuration::from_minutes(30), SimDuration::INFINITE],
            fragment_bytes: 4 << 20,
            faults,
        }
    }

    #[test]
    fn checkpoints_at_global_period() {
        let r = evaluate(&input(vec![]));
        assert_eq!(
            r.checkpoints, 20,
            "600 min / 30 min (initial incl., horizon excl.)"
        );
        // 200 nodes: 3*199 + 200 messages per checkpoint.
        assert_eq!(r.protocol_messages, 20 * (3 * 199 + 200));
        assert_eq!(r.peak_log_bytes, 0);
    }

    #[test]
    fn freeze_time_scales_with_wan_latency() {
        let r = evaluate(&input(vec![]));
        // Per checkpoint: >= 4 x 150 µs + 4 MiB / 80 Mb/s (~0.42 s).
        let per = SimDuration(r.frozen_time.nanos() / r.checkpoints);
        assert!(per >= SimDuration::from_micros(600));
        assert!(
            per >= SimDuration::from_millis(400),
            "fragment transfer dominates"
        );
    }

    #[test]
    fn every_fault_rolls_back_everything() {
        let at = SimTime::ZERO + SimDuration::from_minutes(45);
        let r = evaluate(&input(vec![(at, 1)]));
        assert_eq!(r.rollbacks.len(), 1);
        assert_eq!(r.rollbacks[0].clusters_rolled_back, 2);
        // Lost: 15 minutes x 200 nodes.
        let lost = r.rollbacks[0].lost_node_seconds;
        assert!((lost - 15.0 * 60.0 * 200.0).abs() < 1.0, "lost {lost}");
    }

    #[test]
    fn fault_right_after_checkpoint_loses_little() {
        let at = SimTime::ZERO + SimDuration::from_minutes(30);
        let r = evaluate(&input(vec![(at, 0)]));
        assert_eq!(r.rollbacks[0].lost_node_seconds, 0.0);
    }
}
