//! Canned workloads for the paper's scenarios and the examples.

use crate::generate::{BurstyWorkload, StochasticWorkload, TargetCountWorkload};
use desim::{SimDuration, SimTime};

/// The paper's motivating application (Figure 1): a pipeline of modules —
/// simulation → treatment → display — one per cluster. Traffic is heavy
/// inside each module and trickles forward along the pipeline.
pub fn pipeline(
    num_clusters: usize,
    nodes_per_cluster: u32,
    duration: SimDuration,
    forward_fraction: f64,
) -> StochasticWorkload {
    assert!(num_clusters >= 1);
    assert!((0.0..1.0).contains(&forward_fraction));
    let mut pattern = vec![vec![0.0; num_clusters]; num_clusters];
    for (i, row) in pattern.iter_mut().enumerate() {
        if i + 1 < num_clusters {
            row[i] = 1.0 - forward_fraction;
            row[i + 1] = forward_fraction;
        } else {
            row[i] = 1.0; // last stage has nobody downstream
        }
    }
    StochasticWorkload {
        cluster_sizes: vec![nodes_per_cluster; num_clusters],
        duration,
        compute_mean_secs: vec![30.0; num_clusters],
        pattern,
        payload_bytes: 1024,
    }
}

/// Two modules exchanging both ways (the paper's "exchanges between two
/// modules" pattern) with a configurable cross fraction per direction.
pub fn exchange(
    nodes_per_cluster: u32,
    duration: SimDuration,
    cross_fraction: f64,
) -> StochasticWorkload {
    assert!((0.0..0.5).contains(&cross_fraction));
    StochasticWorkload {
        cluster_sizes: vec![nodes_per_cluster; 2],
        duration,
        compute_mean_secs: vec![30.0, 30.0],
        pattern: vec![
            vec![1.0 - cross_fraction, cross_fraction],
            vec![cross_fraction, 1.0 - cross_fraction],
        ],
        payload_bytes: 1024,
    }
}

/// The evaluation's reference workload: a simulation on cluster 0 feeding a
/// trace processor on cluster 1 (paper §5.2, Table 1 counts).
pub fn paper_reference() -> TargetCountWorkload {
    TargetCountWorkload::paper_table1()
}

/// A three-cluster variant for the paper's Table 3: "Cluster 2 is a clone
/// of cluster 1. There's approximately 200 messages that leave and arrive
/// in each cluster."
pub fn paper_three_clusters() -> TargetCountWorkload {
    TargetCountWorkload {
        cluster_sizes: vec![100, 100, 100],
        duration: SimDuration::from_hours(10),
        counts: vec![
            vec![2920, 100, 100],
            vec![100, 2497, 100],
            vec![100, 100, 2497],
        ],
        payload_bytes: 1024,
    }
}

/// Heavy-tailed background traffic: Pareto inter-send gaps (bursts
/// separated by long silences), mostly-local with a configurable cross
/// fraction to the next cluster. Stresses dense-timestamp regimes —
/// many sends inside one network round trip.
pub fn heavy_tailed(
    num_clusters: usize,
    nodes_per_cluster: u32,
    duration: SimDuration,
    cross_fraction: f64,
) -> BurstyWorkload {
    assert!(num_clusters >= 1);
    assert!((0.0..1.0).contains(&cross_fraction));
    let mut pattern = vec![vec![0.0; num_clusters]; num_clusters];
    for (i, row) in pattern.iter_mut().enumerate() {
        if num_clusters == 1 {
            row[i] = 1.0;
        } else {
            row[i] = 1.0 - cross_fraction;
            row[(i + 1) % num_clusters] = cross_fraction;
        }
    }
    BurstyWorkload {
        cluster_sizes: vec![nodes_per_cluster; num_clusters],
        duration,
        gap_scale_secs: 10.0,
        gap_alpha: 1.5,
        pattern,
        payload_bytes: 1024,
        flash_crowds: vec![],
        flash_fanout: 0,
    }
}

/// [`heavy_tailed`] plus `crowds` evenly-spaced flash crowds: 100 ms
/// windows in which every node fires `fanout` extra sends — checkpoint
/// rounds race a spike of near-simultaneous application traffic.
pub fn flash_crowd(
    num_clusters: usize,
    nodes_per_cluster: u32,
    duration: SimDuration,
    cross_fraction: f64,
    crowds: u32,
    fanout: u32,
) -> BurstyWorkload {
    assert!(crowds >= 1);
    let mut w = heavy_tailed(num_clusters, nodes_per_cluster, duration, cross_fraction);
    // Crowds at 1/(n+1), 2/(n+1), … of the run — never at the very start
    // or end, where the protocol is idle or draining.
    let step = duration.nanos() / (crowds as u64 + 1);
    w.flash_crowds = (1..=crowds as u64)
        .map(|k| {
            (
                SimTime::ZERO + SimDuration::from_nanos(k * step),
                SimDuration::from_millis(100),
            )
        })
        .collect();
    w.flash_fanout = fanout;
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Workload;
    use desim::RngStreams;

    #[test]
    fn pipeline_rows_sum_to_one() {
        let w = pipeline(3, 8, SimDuration::from_hours(1), 0.05);
        w.validate().unwrap();
        assert_eq!(w.pattern[0][1], 0.05);
        assert_eq!(w.pattern[2][2], 1.0, "last stage keeps traffic local");
    }

    #[test]
    fn pipeline_traffic_flows_forward_only() {
        let w = pipeline(3, 6, SimDuration::from_minutes(30), 0.1);
        let schedule = w.schedule(&RngStreams::new(3));
        assert!(schedule
            .iter()
            .all(|e| e.to.cluster.0 == e.from.cluster.0 || e.to.cluster.0 == e.from.cluster.0 + 1));
    }

    #[test]
    fn exchange_is_symmetric_in_expectation() {
        let w = exchange(8, SimDuration::from_hours(1), 0.02);
        w.validate().unwrap();
        assert_eq!(w.pattern[0][1], w.pattern[1][0]);
    }

    #[test]
    fn heavy_tailed_preset_validates_and_schedules() {
        let w = heavy_tailed(3, 4, SimDuration::from_minutes(20), 0.1);
        let schedule = w.schedule(&RngStreams::new(5));
        assert!(!schedule.is_empty());
        // Cross traffic goes to the next cluster only.
        assert!(schedule
            .iter()
            .all(|e| e.to.cluster.0 == e.from.cluster.0
                || e.to.cluster.0 == (e.from.cluster.0 + 1) % 3));
    }

    #[test]
    fn flash_crowd_preset_spikes() {
        let w = flash_crowd(2, 5, SimDuration::from_minutes(30), 0.2, 3, 4);
        assert_eq!(w.flash_crowds.len(), 3);
        let schedule = w.schedule(&RngStreams::new(5));
        for &(start, width) in &w.flash_crowds {
            let dense = schedule
                .iter()
                .filter(|e| e.at >= start && e.at < start + width)
                .count();
            assert!(dense >= 40, "crowd at {start} only {dense} sends");
        }
    }

    #[test]
    fn three_cluster_preset_shape() {
        let w = paper_three_clusters();
        assert_eq!(w.cluster_sizes.len(), 3);
        let leave0: u64 = w.counts[0][1] + w.counts[0][2];
        assert_eq!(leave0, 200, "≈200 messages leave each cluster");
    }
}
