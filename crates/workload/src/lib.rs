//! # workload — application model and configuration files
//!
//! Reproduces the paper's simulator interface (§5.1): the user provides a
//! *topology file*, an *application file* and a *timers file*; the
//! application model alternates exponentially-distributed computation with
//! probabilistic message destinations. A second generator pins exact
//! per-cluster-pair message counts (what Table 1 reports and Figure 9
//! sweeps).

#![warn(missing_docs)]

pub mod duration;
pub mod files;
pub mod generate;
pub mod presets;

pub use duration::{parse_bandwidth, parse_duration};
pub use files::{parse_application, parse_timers, parse_topology, ParseError, TimerSpec};
pub use generate::{BurstyWorkload, SendEvent, StochasticWorkload, TargetCountWorkload, Workload};
