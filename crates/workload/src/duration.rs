//! Human-friendly duration and rate parsing for the config files.

use desim::SimDuration;

/// Parse a duration literal: `10us`, `150ms`, `30s`, `15m`, `2h`, `inf`,
/// or a bare number of seconds (`42`). Returns `None` on malformed input.
pub fn parse_duration(s: &str) -> Option<SimDuration> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("inf") || s.eq_ignore_ascii_case("infinite") {
        return Some(SimDuration::INFINITE);
    }
    let (num, unit) = split_unit(s);
    let value: f64 = num.parse().ok()?;
    if value < 0.0 {
        return None;
    }
    let secs = match unit {
        "ns" => value * 1e-9,
        "us" | "µs" => value * 1e-6,
        "ms" => value * 1e-3,
        "" | "s" => value,
        "m" | "min" => value * 60.0,
        "h" => value * 3600.0,
        _ => return None,
    };
    Some(SimDuration::from_secs_f64(secs))
}

/// Parse a bandwidth literal: `80Mbps`, `1Gbps`, `100kbps`, or bare bits
/// per second (`1000000`).
pub fn parse_bandwidth(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, unit) = split_unit(s);
    let value: f64 = num.parse().ok()?;
    if value < 0.0 {
        return None;
    }
    // Case-sensitive on the magnitude prefix so that `MBps` (megaBYTES per
    // second) is rejected rather than silently read as megabits.
    let bps = match unit {
        "" | "bps" => value,
        "kbps" | "Kbps" => value * 1e3,
        "Mbps" | "mbps" => value * 1e6,
        "Gbps" | "gbps" => value * 1e9,
        _ => return None,
    };
    Some(bps as u64)
}

fn split_unit(s: &str) -> (&str, &str) {
    let split = s
        .find(|c: char| c.is_ascii_alphabetic() || c == 'µ')
        .unwrap_or(s.len());
    (&s[..split], &s[split..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("10us"), Some(SimDuration::from_micros(10)));
        assert_eq!(parse_duration("150ms"), Some(SimDuration::from_millis(150)));
        assert_eq!(parse_duration("30s"), Some(SimDuration::from_secs(30)));
        assert_eq!(parse_duration("15m"), Some(SimDuration::from_minutes(15)));
        assert_eq!(parse_duration("2h"), Some(SimDuration::from_hours(2)));
        assert_eq!(parse_duration("42"), Some(SimDuration::from_secs(42)));
        assert_eq!(parse_duration("1.5s"), Some(SimDuration::from_millis(1500)));
        assert_eq!(parse_duration(" inf "), Some(SimDuration::INFINITE));
        assert_eq!(parse_duration("INFINITE"), Some(SimDuration::INFINITE));
    }

    #[test]
    fn bad_durations_rejected() {
        assert_eq!(parse_duration("abc"), None);
        assert_eq!(parse_duration("10 parsecs"), None);
        assert_eq!(parse_duration("-5s"), None);
        assert_eq!(parse_duration(""), None);
    }

    #[test]
    fn bandwidths_parse() {
        assert_eq!(parse_bandwidth("80Mbps"), Some(80_000_000));
        assert_eq!(parse_bandwidth("100mbps"), Some(100_000_000));
        assert_eq!(parse_bandwidth("1Gbps"), Some(1_000_000_000));
        assert_eq!(parse_bandwidth("64kbps"), Some(64_000));
        assert_eq!(parse_bandwidth("1200"), Some(1200));
    }

    #[test]
    fn bad_bandwidths_rejected() {
        assert_eq!(parse_bandwidth("fast"), None);
        assert_eq!(parse_bandwidth("-80Mbps"), None);
        assert_eq!(parse_bandwidth("80MBps"), None, "bytes-per-sec not a unit");
    }
}
