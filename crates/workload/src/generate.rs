//! Traffic generation.
//!
//! Two generators, both producing a deterministic, time-sorted schedule of
//! application sends from a seed:
//!
//! * [`StochasticWorkload`] — the paper's application model (§5.1): each
//!   node alternates exponentially-distributed computation phases with
//!   sends whose destinations follow a cluster-to-cluster probability
//!   matrix.
//! * [`TargetCountWorkload`] — fixes the *number* of messages per directed
//!   cluster pair and spreads them uniformly over the run. This is what
//!   regenerates Table 1's exact message counts and Figure 9's
//!   "messages from cluster 1 to cluster 0" sweep.
//! * [`BurstyWorkload`] — heavy-tailed (Pareto) inter-send gaps plus
//!   scripted flash crowds, for stressing dense-timestamp regimes the
//!   paper's smooth models never produce.

use desim::{exponential, pareto, RngStreams, SimDuration, SimTime};
use netsim::NodeId;
use rand::Rng;

/// One application-level send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendEvent {
    /// When the application issues the send.
    pub at: SimTime,
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload size.
    pub bytes: u64,
}

/// Sort events by time (ties broken by sender then destination, keeping
/// schedules deterministic across generator implementations).
fn sort_schedule(events: &mut [SendEvent]) {
    // Unstable is safe *and* bit-identical here: every generator emits a
    // uniform `bytes`, so events tied on the full `(at, from, to)` key are
    // indistinguishable — any permutation of them is the same schedule.
    events.sort_unstable_by_key(|e| (e.at, e.from, e.to));
}

/// A workload that can be scheduled deterministically.
pub trait Workload {
    /// Produce the full, time-sorted send schedule.
    fn schedule(&self, streams: &RngStreams) -> Vec<SendEvent>;
}

/// The paper's stochastic application model.
#[derive(Debug, Clone)]
pub struct StochasticWorkload {
    /// Nodes per cluster.
    pub cluster_sizes: Vec<u32>,
    /// Total application duration.
    pub duration: SimDuration,
    /// Mean computation time between sends, per cluster (seconds).
    pub compute_mean_secs: Vec<f64>,
    /// `pattern[i][j]` = probability that a send from cluster `i` targets
    /// cluster `j`. Rows must sum to ~1.
    pub pattern: Vec<Vec<f64>>,
    /// Payload size of every message.
    pub payload_bytes: u64,
}

impl StochasticWorkload {
    /// Validate dimensions and probability rows.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.cluster_sizes.len();
        if self.compute_mean_secs.len() != n {
            return Err("compute_mean per cluster required".into());
        }
        if self.pattern.len() != n || self.pattern.iter().any(|row| row.len() != n) {
            return Err("pattern must be an NxN matrix".into());
        }
        for (i, row) in self.pattern.iter().enumerate() {
            if row.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
                return Err(format!("pattern row {i} has out-of-range probability"));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(format!("pattern row {i} sums to {sum}, expected 1"));
            }
        }
        Ok(())
    }
}

/// Pick a destination node in `cluster`, different from `from`.
fn pick_node_in(rng: &mut impl Rng, cluster: usize, size: u32, from: NodeId) -> Option<NodeId> {
    if size == 0 {
        return None;
    }
    let same_cluster = from.cluster.index() == cluster;
    if same_cluster && size == 1 {
        return None; // nobody else to talk to
    }
    loop {
        let rank = rng.gen_range(0..size);
        let candidate = NodeId::new(cluster as u16, rank);
        if candidate != from {
            return Some(candidate);
        }
    }
}

impl Workload for StochasticWorkload {
    fn schedule(&self, streams: &RngStreams) -> Vec<SendEvent> {
        self.validate().expect("invalid stochastic workload");
        let mut events = Vec::new();
        let horizon = SimTime::ZERO + self.duration;
        for (c, &size) in self.cluster_sizes.iter().enumerate() {
            for rank in 0..size {
                let from = NodeId::new(c as u16, rank);
                let mut rng = streams.stream("workload.node", (c as u64) << 32 | rank as u64);
                let mut t = SimTime::ZERO;
                loop {
                    let step = exponential(&mut rng, self.compute_mean_secs[c]);
                    t = t.saturating_add(SimDuration::from_secs_f64(step));
                    if t >= horizon {
                        break;
                    }
                    // Draw the destination cluster from the pattern row.
                    let u: f64 = rng.gen();
                    let mut acc = 0.0;
                    let mut dest_cluster = self.pattern[c].len() - 1;
                    for (j, &p) in self.pattern[c].iter().enumerate() {
                        acc += p;
                        if u < acc {
                            dest_cluster = j;
                            break;
                        }
                    }
                    if let Some(to) = pick_node_in(
                        &mut rng,
                        dest_cluster,
                        self.cluster_sizes[dest_cluster],
                        from,
                    ) {
                        events.push(SendEvent {
                            at: t,
                            from,
                            to,
                            bytes: self.payload_bytes,
                        });
                    }
                }
            }
        }
        sort_schedule(&mut events);
        events
    }
}

/// Fixed per-cluster-pair message counts spread uniformly over the run.
#[derive(Debug, Clone)]
pub struct TargetCountWorkload {
    /// Nodes per cluster.
    pub cluster_sizes: Vec<u32>,
    /// Total application duration.
    pub duration: SimDuration,
    /// `counts[i][j]` = number of messages from cluster `i` to cluster `j`.
    pub counts: Vec<Vec<u64>>,
    /// Payload size of every message.
    pub payload_bytes: u64,
}

impl TargetCountWorkload {
    /// The paper's Table 1 reference workload on 2×100 nodes over 10 h:
    /// 2920 intra cluster 0, 2497 intra cluster 1, 145 messages 0→1 and
    /// 11 messages 1→0.
    pub fn paper_table1() -> Self {
        TargetCountWorkload {
            cluster_sizes: vec![100, 100],
            duration: SimDuration::from_hours(10),
            counts: vec![vec![2920, 145], vec![11, 2497]],
            payload_bytes: 1024,
        }
    }

    /// Same as [`paper_table1`](Self::paper_table1) but with the
    /// cluster-1 → cluster-0 count overridden (the Figure 9 x-axis).
    pub fn paper_with_reverse_count(reverse: u64) -> Self {
        let mut w = Self::paper_table1();
        w.counts[1][0] = reverse;
        w
    }
}

impl Workload for TargetCountWorkload {
    fn schedule(&self, streams: &RngStreams) -> Vec<SendEvent> {
        let n = self.cluster_sizes.len();
        assert_eq!(self.counts.len(), n, "counts must be NxN");
        let total: u64 = self.counts.iter().flatten().sum();
        let mut events = Vec::with_capacity(total as usize);
        let span = self.duration.nanos();
        for i in 0..n {
            assert_eq!(self.counts[i].len(), n, "counts must be NxN");
            for j in 0..n {
                // Untouched pairs draw nothing: skipping the stream set-up
                // entirely leaves every other pair's stream — and thus the
                // schedule — bit-identical. Wide federations have O(n^2)
                // pairs but O(n) active ones, so this dominates set-up cost.
                if self.counts[i][j] == 0 {
                    continue;
                }
                let mut rng = streams.stream("workload.pair", (i as u64) << 32 | j as u64);
                for _ in 0..self.counts[i][j] {
                    let at = SimTime(rng.gen_range(0..span.max(1)));
                    let from_rank = rng.gen_range(0..self.cluster_sizes[i]);
                    let from = NodeId::new(i as u16, from_rank);
                    let Some(to) = pick_node_in(&mut rng, j, self.cluster_sizes[j], from) else {
                        continue;
                    };
                    events.push(SendEvent {
                        at,
                        from,
                        to,
                        bytes: self.payload_bytes,
                    });
                }
            }
        }
        sort_schedule(&mut events);
        events
    }
}

/// Heavy-tailed, bursty traffic: per-node inter-send gaps are Pareto
/// distributed (dense bursts separated by long silences), optionally
/// punctuated by *flash crowds* — windows in which every node fires
/// additional sends almost simultaneously.
///
/// This stresses dense-timestamp regimes: many sends inside one network
/// round trip, checkpoint rounds racing application traffic, and forced-CLC
/// storms when a crowd crosses clusters.
#[derive(Debug, Clone)]
pub struct BurstyWorkload {
    /// Nodes per cluster.
    pub cluster_sizes: Vec<u32>,
    /// Total application duration.
    pub duration: SimDuration,
    /// Minimum inter-send gap in seconds (the Pareto scale).
    pub gap_scale_secs: f64,
    /// Pareto tail exponent; `1 < alpha <= 2` gives the heavy tail.
    pub gap_alpha: f64,
    /// `pattern[i][j]` = probability that a send from cluster `i` targets
    /// cluster `j`. Rows must sum to ~1.
    pub pattern: Vec<Vec<f64>>,
    /// Payload size of every message.
    pub payload_bytes: u64,
    /// Flash-crowd windows `(start, width)`: every node issues
    /// [`flash_fanout`](Self::flash_fanout) extra sends at uniform times
    /// inside each window.
    pub flash_crowds: Vec<(SimTime, SimDuration)>,
    /// Extra sends per node per flash crowd.
    pub flash_fanout: u32,
}

impl BurstyWorkload {
    fn pick_dest_cluster(&self, rng: &mut impl Rng, from_cluster: usize) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut dest = self.pattern[from_cluster].len() - 1;
        for (j, &p) in self.pattern[from_cluster].iter().enumerate() {
            acc += p;
            if u < acc {
                dest = j;
                break;
            }
        }
        dest
    }
}

impl Workload for BurstyWorkload {
    fn schedule(&self, streams: &RngStreams) -> Vec<SendEvent> {
        assert!(self.gap_scale_secs > 0.0, "gap scale must be positive");
        assert!(self.gap_alpha > 0.0, "tail exponent must be positive");
        let mut events = Vec::new();
        let horizon = SimTime::ZERO + self.duration;
        for (c, &size) in self.cluster_sizes.iter().enumerate() {
            for rank in 0..size {
                let from = NodeId::new(c as u16, rank);
                let mut rng = streams.stream("workload.bursty", (c as u64) << 32 | rank as u64);
                // Background heavy-tailed stream.
                let mut t = SimTime::ZERO;
                loop {
                    let gap = pareto(&mut rng, self.gap_scale_secs, self.gap_alpha);
                    t = t.saturating_add(SimDuration::from_secs_f64(gap));
                    if t >= horizon {
                        break;
                    }
                    let dest = self.pick_dest_cluster(&mut rng, c);
                    if let Some(to) = pick_node_in(&mut rng, dest, self.cluster_sizes[dest], from) {
                        events.push(SendEvent {
                            at: t,
                            from,
                            to,
                            bytes: self.payload_bytes,
                        });
                    }
                }
                // Flash crowds: every node joins every window.
                for &(start, width) in &self.flash_crowds {
                    for _ in 0..self.flash_fanout {
                        let offset = SimDuration::from_nanos(if width.nanos() == 0 {
                            0
                        } else {
                            rng.gen_range(0..width.nanos())
                        });
                        let at = start.saturating_add(offset);
                        if at >= horizon {
                            continue;
                        }
                        let dest = self.pick_dest_cluster(&mut rng, c);
                        if let Some(to) =
                            pick_node_in(&mut rng, dest, self.cluster_sizes[dest], from)
                        {
                            events.push(SendEvent {
                                at,
                                from,
                                to,
                                bytes: self.payload_bytes,
                            });
                        }
                    }
                }
            }
        }
        sort_schedule(&mut events);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams() -> RngStreams {
        RngStreams::new(12345)
    }

    #[test]
    fn target_counts_are_exact() {
        let w = TargetCountWorkload::paper_table1();
        let schedule = w.schedule(&streams());
        let count = |fi: u16, ti: u16| {
            schedule
                .iter()
                .filter(|e| e.from.cluster.0 == fi && e.to.cluster.0 == ti)
                .count() as u64
        };
        assert_eq!(count(0, 0), 2920);
        assert_eq!(count(1, 1), 2497);
        assert_eq!(count(0, 1), 145);
        assert_eq!(count(1, 0), 11);
        assert_eq!(schedule.len(), 2920 + 2497 + 145 + 11);
    }

    #[test]
    fn schedules_are_sorted_and_deterministic() {
        let w = TargetCountWorkload::paper_table1();
        let a = w.schedule(&streams());
        let b = w.schedule(&streams());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn different_seed_different_schedule() {
        let w = TargetCountWorkload::paper_table1();
        let a = w.schedule(&RngStreams::new(1));
        let b = w.schedule(&RngStreams::new(2));
        assert_ne!(a, b);
    }

    #[test]
    fn no_self_sends() {
        let w = TargetCountWorkload {
            cluster_sizes: vec![2, 2],
            duration: SimDuration::from_secs(100),
            counts: vec![vec![500, 50], vec![50, 500]],
            payload_bytes: 64,
        };
        assert!(w.schedule(&streams()).iter().all(|e| e.from != e.to));
    }

    #[test]
    fn events_within_duration() {
        let w = TargetCountWorkload::paper_table1();
        let horizon = SimTime::ZERO + w.duration;
        assert!(w.schedule(&streams()).iter().all(|e| e.at < horizon));
    }

    #[test]
    fn reverse_count_override() {
        let w = TargetCountWorkload::paper_with_reverse_count(103);
        let schedule = w.schedule(&streams());
        let rev = schedule
            .iter()
            .filter(|e| e.from.cluster.0 == 1 && e.to.cluster.0 == 0)
            .count();
        assert_eq!(rev, 103);
    }

    fn stochastic() -> StochasticWorkload {
        StochasticWorkload {
            cluster_sizes: vec![10, 10],
            duration: SimDuration::from_hours(1),
            compute_mean_secs: vec![10.0, 12.0],
            pattern: vec![vec![0.97, 0.03], vec![0.01, 0.99]],
            payload_bytes: 512,
        }
    }

    #[test]
    fn stochastic_respects_pattern_shape() {
        let schedule = stochastic().schedule(&streams());
        assert!(!schedule.is_empty());
        let inter01 = schedule
            .iter()
            .filter(|e| e.from.cluster.0 == 0 && e.to.cluster.0 == 1)
            .count() as f64;
        let intra0 = schedule
            .iter()
            .filter(|e| e.from.cluster.0 == 0 && e.to.cluster.0 == 0)
            .count() as f64;
        // 3% of cluster-0 traffic crosses; allow generous sampling slack.
        let frac = inter01 / (inter01 + intra0);
        assert!(
            (0.01..=0.06).contains(&frac),
            "inter fraction {frac} out of plausible band"
        );
    }

    #[test]
    fn stochastic_mean_rate_plausible() {
        let w = stochastic();
        let schedule = w.schedule(&streams());
        // 10 nodes sending every ~10 s for an hour ≈ 3600 sends from
        // cluster 0; both clusters together ≈ 6600.
        let expected = 3600.0 + 3000.0;
        let actual = schedule.len() as f64;
        assert!(
            (actual - expected).abs() < expected * 0.15,
            "got {actual}, expected ≈ {expected}"
        );
    }

    #[test]
    fn stochastic_validation_catches_bad_rows() {
        let mut w = stochastic();
        w.pattern[0][0] = 0.5; // row no longer sums to 1
        assert!(w.validate().is_err());
        let mut w2 = stochastic();
        w2.pattern.pop();
        assert!(w2.validate().is_err());
        let mut w3 = stochastic();
        w3.compute_mean_secs.pop();
        assert!(w3.validate().is_err());
    }

    fn bursty() -> BurstyWorkload {
        BurstyWorkload {
            cluster_sizes: vec![6, 6],
            duration: SimDuration::from_minutes(30),
            gap_scale_secs: 5.0,
            gap_alpha: 1.5,
            pattern: vec![vec![0.9, 0.1], vec![0.1, 0.9]],
            payload_bytes: 512,
            flash_crowds: vec![(
                SimTime::ZERO + SimDuration::from_minutes(10),
                SimDuration::from_millis(50),
            )],
            flash_fanout: 4,
        }
    }

    #[test]
    fn bursty_is_deterministic_and_sorted() {
        let w = bursty();
        let a = w.schedule(&streams());
        let b = w.schedule(&streams());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.iter().all(|e| e.from != e.to));
    }

    #[test]
    fn bursty_flash_crowd_is_dense() {
        let w = bursty();
        let schedule = w.schedule(&streams());
        let start = SimTime::ZERO + SimDuration::from_minutes(10);
        let end = start + SimDuration::from_millis(50);
        let in_window = schedule
            .iter()
            .filter(|e| e.at >= start && e.at < end)
            .count();
        // 12 nodes × 4 fanout land inside a 50 ms window (background sends
        // rarely coincide): a dense-timestamp spike by construction.
        assert!(
            in_window >= 48,
            "only {in_window} sends in the crowd window"
        );
    }

    #[test]
    fn bursty_tail_is_heavier_than_exponential() {
        // With alpha = 1.5 and scale 5 s, gaps above 10× the scale must
        // appear (P[gap > 50 s] ≈ 3%) — the silences between bursts.
        let w = BurstyWorkload {
            flash_crowds: vec![],
            duration: SimDuration::from_hours(4),
            ..bursty()
        };
        let schedule = w.schedule(&streams());
        let mut long_gaps = 0usize;
        for rank in 0..6u32 {
            let node: Vec<_> = schedule
                .iter()
                .filter(|e| e.from == NodeId::new(0, rank))
                .collect();
            for pair in node.windows(2) {
                if pair[1].at - pair[0].at > SimDuration::from_secs(50) {
                    long_gaps += 1;
                }
            }
        }
        assert!(long_gaps > 0, "heavy tail should produce long silences");
    }

    #[test]
    fn single_node_cluster_skips_self_traffic() {
        let w = StochasticWorkload {
            cluster_sizes: vec![1, 2],
            duration: SimDuration::from_secs(1000),
            compute_mean_secs: vec![1.0, 1.0],
            pattern: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            payload_bytes: 8,
        };
        // Cluster 0's lone node has nobody to talk to intra-cluster.
        let schedule = w.schedule(&streams());
        assert!(schedule.iter().all(|e| e.from.cluster.0 != 0));
    }
}
