//! The simulator's three configuration files (paper §5.1).
//!
//! "The user has to provide three files: a topology file, an application
//! file and a timer file." We keep that interface, with a simple
//! line-oriented `keyword args…` format (`#` starts a comment):
//!
//! ```text
//! # topology file
//! clusters 2
//! nodes 100 100
//! intra 0 10us 80Mbps
//! intra 1 10us 80Mbps
//! inter 0 1 150us 100Mbps
//! mtbf 100h
//!
//! # application file
//! duration 10h
//! payload 1024
//! compute_mean 0 60s
//! compute_mean 1 70s
//! pattern 0 0.98 0.02
//! pattern 1 0.005 0.995
//!
//! # timers file
//! clc_timer 0 30m
//! clc_timer 1 inf
//! gc_timer 2h
//! detection_delay 100ms
//! ```

use crate::duration::{parse_bandwidth, parse_duration};
use crate::generate::StochasticWorkload;
use desim::SimDuration;
use netsim::{ClusterSpec, LinkSpec, Topology};

/// Parsed timers file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSpec {
    /// Delay between unforced CLCs, per cluster (`INFINITE` = never).
    pub clc_delays: Vec<SimDuration>,
    /// Garbage-collection period (`None` = never).
    pub gc_interval: Option<SimDuration>,
    /// Failure-detection latency.
    pub detection_delay: SimDuration,
}

/// A parse failure, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn content_lines(text: &str) -> impl Iterator<Item = (usize, Vec<&str>)> {
    text.lines().enumerate().filter_map(|(i, raw)| {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            None
        } else {
            Some((i + 1, line.split_whitespace().collect()))
        }
    })
}

/// Parse a topology file into a [`Topology`].
pub fn parse_topology(text: &str) -> Result<Topology, ParseError> {
    let mut n_clusters: Option<usize> = None;
    let mut nodes: Vec<u32> = vec![];
    let mut intra: Vec<Option<LinkSpec>> = vec![];
    let mut inter: Vec<(usize, usize, LinkSpec)> = vec![];
    let mut default_inter = LinkSpec::ethernet_like();
    let mut mtbf = None;

    for (ln, tok) in content_lines(text) {
        match tok[0] {
            "clusters" => {
                let n: usize = tok
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "clusters needs a count"))?;
                if n == 0 {
                    return Err(err(ln, "need at least one cluster"));
                }
                n_clusters = Some(n);
                intra = vec![None; n];
            }
            "nodes" => {
                nodes = tok[1..]
                    .iter()
                    .map(|s| s.parse())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err(ln, "nodes must be integers"))?;
            }
            "intra" => {
                let c: usize = tok
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "intra needs: cluster latency bandwidth"))?;
                let link = parse_link(&tok[2..]).ok_or_else(|| err(ln, "bad link spec"))?;
                if c >= intra.len() {
                    return Err(err(ln, "intra cluster index out of range"));
                }
                intra[c] = Some(link);
            }
            "inter" => {
                if tok.len() == 3 {
                    // `inter <latency> <bandwidth>`: default for all pairs.
                    default_inter =
                        parse_link(&tok[1..]).ok_or_else(|| err(ln, "bad link spec"))?;
                } else {
                    let a: usize = tok
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(ln, "inter needs: a b latency bandwidth"))?;
                    let b: usize = tok
                        .get(2)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(ln, "inter needs: a b latency bandwidth"))?;
                    let link = parse_link(&tok[3..]).ok_or_else(|| err(ln, "bad link spec"))?;
                    inter.push((a, b, link));
                }
            }
            "mtbf" => {
                let d = parse_duration(tok.get(1).copied().unwrap_or(""))
                    .ok_or_else(|| err(ln, "bad mtbf duration"))?;
                if !d.is_infinite() && d.nanos() > 0 {
                    mtbf = Some(d);
                }
            }
            other => return Err(err(ln, format!("unknown keyword `{other}`"))),
        }
    }

    let n = n_clusters.ok_or_else(|| err(0, "missing `clusters`"))?;
    if nodes.len() != n {
        return Err(err(
            0,
            format!("expected {n} node counts, got {}", nodes.len()),
        ));
    }
    let clusters: Vec<ClusterSpec> = nodes
        .iter()
        .zip(&intra)
        .map(|(&nn, l)| ClusterSpec {
            nodes: nn,
            intra: l.unwrap_or_else(LinkSpec::myrinet_like),
        })
        .collect();
    let mut topo = Topology::new(clusters, default_inter);
    for (a, b, link) in inter {
        if a >= n || b >= n || a == b {
            return Err(err(0, "inter pair out of range"));
        }
        topo.set_inter_link(
            netsim::ClusterId(a as u16),
            netsim::ClusterId(b as u16),
            link,
        );
    }
    topo.mtbf = mtbf;
    Ok(topo)
}

fn parse_link(tok: &[&str]) -> Option<LinkSpec> {
    if tok.len() != 2 {
        return None;
    }
    Some(LinkSpec {
        latency: parse_duration(tok[0])?,
        bandwidth_bps: parse_bandwidth(tok[1])?,
    })
}

/// Parse an application file into a [`StochasticWorkload`] (node counts
/// come from the already-parsed topology).
pub fn parse_application(
    text: &str,
    topology: &Topology,
) -> Result<StochasticWorkload, ParseError> {
    let n = topology.num_clusters();
    let mut duration = None;
    let mut payload = 1024u64;
    let mut compute = vec![f64::NAN; n];
    let mut pattern = vec![vec![f64::NAN; n]; n];

    for (ln, tok) in content_lines(text) {
        match tok[0] {
            "duration" => {
                duration = Some(
                    parse_duration(tok.get(1).copied().unwrap_or(""))
                        .ok_or_else(|| err(ln, "bad duration"))?,
                );
            }
            "payload" => {
                payload = tok
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "payload needs bytes"))?;
            }
            "compute_mean" => {
                let c: usize = tok
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "compute_mean needs: cluster duration"))?;
                if c >= n {
                    return Err(err(ln, "cluster out of range"));
                }
                let d = parse_duration(tok.get(2).copied().unwrap_or(""))
                    .ok_or_else(|| err(ln, "bad compute_mean duration"))?;
                compute[c] = d.as_secs_f64();
            }
            "pattern" => {
                let c: usize = tok
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "pattern needs: cluster p0 p1 …"))?;
                if c >= n {
                    return Err(err(ln, "cluster out of range"));
                }
                if tok.len() != 2 + n {
                    return Err(err(ln, format!("pattern row needs {n} probabilities")));
                }
                for (j, s) in tok[2..].iter().enumerate() {
                    pattern[c][j] = s.parse().map_err(|_| err(ln, "bad probability"))?;
                }
            }
            other => return Err(err(ln, format!("unknown keyword `{other}`"))),
        }
    }

    let workload = StochasticWorkload {
        cluster_sizes: topology
            .cluster_ids()
            .map(|c| topology.nodes_in(c))
            .collect(),
        duration: duration.ok_or_else(|| err(0, "missing `duration`"))?,
        compute_mean_secs: compute,
        pattern,
        payload_bytes: payload,
    };
    if workload.compute_mean_secs.iter().any(|m| m.is_nan()) {
        return Err(err(0, "compute_mean missing for some cluster"));
    }
    if workload
        .pattern
        .iter()
        .any(|row| row.iter().any(|p| p.is_nan()))
    {
        return Err(err(0, "pattern row missing for some cluster"));
    }
    workload.validate().map_err(|m| err(0, m))?;
    Ok(workload)
}

/// Parse a timers file.
pub fn parse_timers(text: &str, num_clusters: usize) -> Result<TimerSpec, ParseError> {
    let mut clc = vec![SimDuration::INFINITE; num_clusters];
    let mut gc = None;
    let mut detection = SimDuration::from_millis(100);

    for (ln, tok) in content_lines(text) {
        match tok[0] {
            "clc_timer" => {
                let c: usize = tok
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(ln, "clc_timer needs: cluster delay"))?;
                if c >= num_clusters {
                    return Err(err(ln, "cluster out of range"));
                }
                clc[c] = parse_duration(tok.get(2).copied().unwrap_or(""))
                    .ok_or_else(|| err(ln, "bad delay"))?;
            }
            "gc_timer" => {
                let d = parse_duration(tok.get(1).copied().unwrap_or(""))
                    .ok_or_else(|| err(ln, "bad gc delay"))?;
                if !d.is_infinite() {
                    gc = Some(d);
                }
            }
            "detection_delay" => {
                detection = parse_duration(tok.get(1).copied().unwrap_or(""))
                    .ok_or_else(|| err(ln, "bad detection delay"))?;
            }
            other => return Err(err(ln, format!("unknown keyword `{other}`"))),
        }
    }
    Ok(TimerSpec {
        clc_delays: clc,
        gc_interval: gc,
        detection_delay: detection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ClusterId;

    const TOPO: &str = "
# the paper's reference federation
clusters 2
nodes 100 100
intra 0 10us 80Mbps
intra 1 10us 80Mbps
inter 0 1 150us 100Mbps
mtbf inf
";

    #[test]
    fn topology_round_trip() {
        let t = parse_topology(TOPO).unwrap();
        assert_eq!(t.num_clusters(), 2);
        assert_eq!(t.nodes_in(ClusterId(0)), 100);
        assert_eq!(
            t.link_between(ClusterId(0), ClusterId(1)).latency,
            SimDuration::from_micros(150)
        );
        assert_eq!(
            t.link_between(ClusterId(1), ClusterId(1)).bandwidth_bps,
            80_000_000
        );
        assert!(t.mtbf.is_none());
    }

    #[test]
    fn topology_defaults_apply() {
        let t = parse_topology("clusters 3\nnodes 4 4 4\n").unwrap();
        assert_eq!(
            t.link_between(ClusterId(0), ClusterId(0)).latency,
            SimDuration::from_micros(10),
            "intra defaults to Myrinet-like"
        );
        assert_eq!(
            t.link_between(ClusterId(0), ClusterId(2)).latency,
            SimDuration::from_micros(150),
            "inter defaults to Ethernet-like"
        );
    }

    #[test]
    fn topology_errors_carry_line_numbers() {
        let e = parse_topology("clusters 2\nnodes 4 4\nintra 5 10us 80Mbps\n").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_topology("banana 1\n").unwrap_err();
        assert!(e.message.contains("banana"));
        assert!(parse_topology("nodes 4\n").is_err(), "missing clusters");
        assert!(
            parse_topology("clusters 2\nnodes 4\n").is_err(),
            "count mismatch"
        );
    }

    #[test]
    fn application_round_trip() {
        let topo = parse_topology(TOPO).unwrap();
        let app = parse_application(
            "duration 10h\npayload 2048\ncompute_mean 0 60s\ncompute_mean 1 70s\n\
             pattern 0 0.98 0.02\npattern 1 0.005 0.995\n",
            &topo,
        )
        .unwrap();
        assert_eq!(app.duration, SimDuration::from_hours(10));
        assert_eq!(app.payload_bytes, 2048);
        assert_eq!(app.compute_mean_secs, vec![60.0, 70.0]);
        assert_eq!(app.pattern[1], vec![0.005, 0.995]);
    }

    #[test]
    fn application_validates_rows() {
        let topo = parse_topology(TOPO).unwrap();
        let e = parse_application(
            "duration 1h\ncompute_mean 0 1s\ncompute_mean 1 1s\npattern 0 0.5 0.2\npattern 1 0 1\n",
            &topo,
        )
        .unwrap_err();
        assert!(e.message.contains("sums"));
        assert!(
            parse_application("duration 1h\n", &topo).is_err(),
            "missing rows"
        );
    }

    #[test]
    fn timers_round_trip() {
        let spec = parse_timers(
            "clc_timer 0 30m\nclc_timer 1 inf\ngc_timer 2h\ndetection_delay 50ms\n",
            2,
        )
        .unwrap();
        assert_eq!(spec.clc_delays[0], SimDuration::from_minutes(30));
        assert!(spec.clc_delays[1].is_infinite());
        assert_eq!(spec.gc_interval, Some(SimDuration::from_hours(2)));
        assert_eq!(spec.detection_delay, SimDuration::from_millis(50));
    }

    #[test]
    fn timers_default_to_never() {
        let spec = parse_timers("", 3).unwrap();
        assert!(spec.clc_delays.iter().all(|d| d.is_infinite()));
        assert_eq!(spec.gc_interval, None);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse_topology("# hi\n\nclusters 1 # trailing\nnodes 2\n").unwrap();
        assert_eq!(t.num_clusters(), 1);
    }
}
