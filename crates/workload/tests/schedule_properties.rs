//! Property tests for the traffic generators.

use desim::{RngStreams, SimDuration, SimTime};
use proptest::prelude::*;
use workload::{StochasticWorkload, TargetCountWorkload, Workload};

fn counts_strategy(n: usize) -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..120, n), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn target_counts_always_exact(
        counts in counts_strategy(3),
        sizes in prop::collection::vec(2u32..10, 3),
        seed in any::<u64>(),
    ) {
        let w = TargetCountWorkload {
            cluster_sizes: sizes,
            duration: SimDuration::from_hours(1),
            counts: counts.clone(),
            payload_bytes: 100,
        };
        let schedule = w.schedule(&RngStreams::new(seed));
        for i in 0..3u16 {
            for j in 0..3u16 {
                let got = schedule
                    .iter()
                    .filter(|e| e.from.cluster.0 == i && e.to.cluster.0 == j)
                    .count() as u64;
                prop_assert_eq!(got, counts[i as usize][j as usize]);
            }
        }
    }

    #[test]
    fn schedules_sorted_in_range_no_self_sends(
        counts in counts_strategy(2),
        seed in any::<u64>(),
    ) {
        let w = TargetCountWorkload {
            cluster_sizes: vec![3, 3],
            duration: SimDuration::from_minutes(30),
            counts,
            payload_bytes: 64,
        };
        let schedule = w.schedule(&RngStreams::new(seed));
        let horizon = SimTime::ZERO + w.duration;
        prop_assert!(schedule.windows(2).all(|p| p[0].at <= p[1].at));
        prop_assert!(schedule.iter().all(|e| e.at < horizon));
        prop_assert!(schedule.iter().all(|e| e.from != e.to));
        prop_assert!(schedule
            .iter()
            .all(|e| e.from.rank < 3 && e.to.rank < 3));
    }

    #[test]
    fn stochastic_never_targets_zero_probability_clusters(
        seed in any::<u64>(),
        cross in 0.0f64..0.2,
    ) {
        // Cluster 2 receives nothing under this pattern.
        let w = StochasticWorkload {
            cluster_sizes: vec![4, 4, 4],
            duration: SimDuration::from_minutes(60),
            compute_mean_secs: vec![5.0, 5.0, 5.0],
            pattern: vec![
                vec![1.0 - cross, cross, 0.0],
                vec![cross, 1.0 - cross, 0.0],
                vec![0.0, 0.0, 1.0],
            ],
            payload_bytes: 32,
        };
        w.validate().unwrap();
        let schedule = w.schedule(&RngStreams::new(seed));
        prop_assert!(schedule
            .iter()
            .all(|e| !(e.to.cluster.0 == 2 && e.from.cluster.0 != 2)));
    }

    #[test]
    fn stochastic_is_seed_deterministic(seed in any::<u64>()) {
        let w = StochasticWorkload {
            cluster_sizes: vec![3, 3],
            duration: SimDuration::from_minutes(20),
            compute_mean_secs: vec![7.0, 9.0],
            pattern: vec![vec![0.9, 0.1], vec![0.2, 0.8]],
            payload_bytes: 128,
        };
        let a = w.schedule(&RngStreams::new(seed));
        let b = w.schedule(&RngStreams::new(seed));
        prop_assert_eq!(a, b);
    }
}
