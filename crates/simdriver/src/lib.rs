//! # simdriver — federation simulations of the HC3I protocol
//!
//! Binds the substrates together into runnable experiments: protocol
//! engines (`hc3i-core`) speak over the network model (`netsim`) inside the
//! discrete-event executive (`desim`), fed by `workload` schedules, with
//! scripted or MTBF-driven fail-stop faults, and produce a [`RunReport`]
//! with the statistics the paper's evaluation section reports.
//!
//! The event hot path is allocation-free: engines live in a flat arena
//! indexed by precomputed cluster offsets, outputs drain through one
//! reusable `OutputBuf`, and per-event trace formatting is gated behind
//! the configured trace level.
//!
//! **Determinism contract:** a run is a pure function of its
//! [`SimConfig`] (including the seed) — same config ⇒ bit-identical
//! [`RunReport`], across runs and machines. Refactors must preserve this;
//! `cargo run -p hc3i-bench --bin hc3i_baselines -- --fingerprint` captures a
//! reference dump to diff against.

#![warn(missing_docs)]

pub mod config;
pub mod hostile;
mod parallel;
pub mod report;
pub mod run;
pub mod world;

pub use config::{FaultEvent, SimConfig};
pub use hostile::{DeliveryLedger, HostileRunStats};
pub use report::{ClusterStats, RunReport};
pub use run::{run, run_hostile, run_traced};
pub use world::{Ev, FederationWorld};
