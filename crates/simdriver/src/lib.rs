//! # simdriver — federation simulations of the HC3I protocol
//!
//! Binds the substrates together into runnable experiments: protocol
//! engines (`hc3i-core`) speak over the network model (`netsim`) inside the
//! discrete-event executive (`desim`), fed by `workload` schedules, with
//! scripted or MTBF-driven fail-stop faults, and produce a [`RunReport`]
//! with the statistics the paper's evaluation section reports.

#![warn(missing_docs)]

pub mod config;
pub mod report;
pub mod run;
pub mod world;

pub use config::{FaultEvent, SimConfig};
pub use report::{ClusterStats, RunReport};
pub use run::{run, run_traced};
pub use world::{Ev, FederationWorld};
