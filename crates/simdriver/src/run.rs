//! The run entry point.

use crate::config::SimConfig;
use crate::hostile::HostileRunStats;
use crate::report::RunReport;
use crate::world::{Ev, FederationWorld};
use desim::{exponential, RngStreams, RunOutcome, SimDuration, SimTime, Simulation};
use netsim::NodeId;
use rand::Rng;

/// Hard ceiling on dispatched events, guarding against model bugs.
pub(crate) const EVENT_BUDGET: u64 = 500_000_000;

/// Run one federation simulation to completion and report.
///
/// # Panics
/// If the event budget is exhausted (a protocol livelock — never expected).
pub fn run(cfg: SimConfig) -> RunReport {
    run_traced(cfg).0
}

/// Like [`run`], but also returns the collected trace (records only at
/// the level set by [`SimConfig::trace`]).
pub fn run_traced(cfg: SimConfig) -> (RunReport, desim::Tracer) {
    let (report, tracer, _) = run_inner(cfg);
    (report, tracer)
}

/// Like [`run`], but also returns the hostile-network side statistics
/// (partition/duplication/reorder counters and, with
/// [`SimConfig::with_delivery_ledger`], the per-tag delivery ledger).
///
/// The [`RunReport`] is computed identically to [`run`]'s — hostile
/// observations never touch the fingerprinted report.
pub fn run_hostile(cfg: SimConfig) -> (RunReport, HostileRunStats) {
    let (report, _, hostile) = run_inner(cfg);
    (report, hostile)
}

/// Shard count a run of `cfg` actually uses: clamped to the cluster count
/// and forced to 1 for durable runs (the segment log records a global
/// commit-frame order that only the sequential executive produces).
pub(crate) fn effective_shards(cfg: &SimConfig) -> usize {
    if cfg.durable_dir.is_some() {
        return 1;
    }
    cfg.sim_shards.clamp(1, cfg.topology.num_clusters())
}

/// Schedule one shard's slice of the initial events: the world's shard
/// map decides which clusters' workload, faults, timers and collections
/// this executive owns. On the sequential (one-shard) path every filter
/// passes, reproducing the historical scheduling order exactly.
pub(crate) fn seed_shard_events(sim: &mut Simulation<FederationWorld>) {
    let streams = RngStreams::new(sim.world().cfg.seed);
    let horizon = sim.world().cfg.horizon();

    // Install the workload as a lazily-merged sorted feed: scheduling it
    // first used to give every send the smallest sequence numbers, so
    // sends fired before same-instant protocol events — the feed's
    // tie-breaking rule reproduces exactly that order while keeping the
    // bulk workload out of the pending-event heap (whose per-op cost
    // scales with its depth). Each shard feeds the sends its clusters
    // issue; tags stay global so ledgers agree across shard counts.
    let mut workload: Vec<(SimTime, Ev)> = {
        let world = sim.world();
        world
            .cfg
            .sends
            .iter()
            .enumerate()
            .filter(|(_, s)| world.owns(s.from.cluster.index()))
            .map(|(tag, s)| {
                (
                    s.at,
                    Ev::AppSend {
                        from: s.from,
                        to: s.to,
                        bytes: s.bytes,
                        tag: tag as u64,
                    },
                )
            })
            .collect()
    };
    // Stable: equal-time sends keep their schedule order, matching the
    // old scheduling-sequence tie-break.
    workload.sort_by_key(|&(at, _)| at);
    sim.feed_sorted(workload);

    // Scripted faults, checkpoints and collections, each on the shard
    // owning the affected cluster (collections start at node (0,0)).
    let faults = sim.world().cfg.faults.clone();
    for f in faults {
        if sim.world().owns(f.node.cluster.index()) {
            sim.schedule_at(f.at, Ev::Fault { node: f.node });
        }
    }
    let clcs = sim.world().cfg.scripted_clcs.clone();
    for (at, cluster) in clcs {
        if sim.world().owns(cluster) {
            sim.schedule_at(at, Ev::ClcNow { cluster });
        }
    }
    if sim.world().owns(0) {
        let gcs = sim.world().cfg.scripted_gcs.clone();
        for at in gcs {
            sim.schedule_at(at, Ev::GcNow);
        }
    }

    // Scripted partition cuts and heals (bookkeeping events; the holds
    // themselves are computed from the schedule at send time). Only ever
    // scheduled when partitions exist, keeping the pristine event stream
    // untouched; shard 0 keeps the counters so the merged totals match a
    // sequential run.
    if sim.world().shard() == 0 {
        let partitions = sim.world().cfg.partitions.clone();
        for (index, p) in partitions.into_iter().enumerate() {
            sim.schedule_at(p.at, Ev::PartitionStart { index });
            if p.until < horizon {
                sim.schedule_at(p.until, Ev::PartitionHeal { index });
            }
        }
    }

    // MTBF-driven faults: every shard walks the *identical* RNG stream
    // (so fault placement is independent of the shard count) and keeps
    // only the victims it owns.
    if let Some(mtbf) = sim.world().cfg.topology.mtbf {
        let total_nodes = sim.world().cfg.topology.total_nodes();
        let cluster_sizes: Vec<u32> = {
            let topo = &sim.world().cfg.topology;
            topo.cluster_ids().map(|c| topo.nodes_in(c)).collect()
        };
        let mut rng = streams.stream("faults", 0);
        let mut t = SimTime::ZERO;
        loop {
            let gap = exponential(&mut rng, mtbf.as_secs_f64());
            t = t.saturating_add(SimDuration::from_secs_f64(gap));
            if t >= horizon {
                break;
            }
            let mut idx = rng.gen_range(0..total_nodes);
            let mut node = NodeId::new(0, 0);
            for (c, &size) in cluster_sizes.iter().enumerate() {
                if idx < size as u64 {
                    node = NodeId::new(c as u16, idx as u32);
                    break;
                }
                idx -= size as u64;
            }
            if sim.world().owns(node.cluster.index()) {
                sim.schedule_at(t, Ev::Fault { node });
            }
        }
    }

    // Periodic timers, per owned cluster (the GC timer belongs to the
    // federation initiator, node (0,0)).
    {
        let delays = sim.world().cfg.clc_delays.clone();
        for (cluster, delay) in delays.into_iter().enumerate() {
            if !delay.is_infinite() && sim.world().owns(cluster) {
                let key = sim.schedule_at(SimTime::ZERO + delay, Ev::ClcTimer { cluster });
                sim.world_mut().clc_timer_keys[cluster] = Some(key);
            }
        }
        if sim.world().owns(0) {
            if let Some(interval) = sim.world().cfg.gc_interval {
                sim.schedule_at(SimTime::ZERO + interval, Ev::GcTimer);
            }
        }
    }

    // Every shard ends its own clock at the horizon.
    sim.schedule_at(horizon, Ev::End);
}

fn run_inner(cfg: SimConfig) -> (RunReport, desim::Tracer, HostileRunStats) {
    let shards = effective_shards(&cfg);
    if shards > 1 {
        return crate::parallel::run_sharded(cfg, shards);
    }
    let mut sim = Simulation::new(FederationWorld::new(cfg));
    seed_shard_events(&mut sim);

    let outcome = sim.run_with_budget(EVENT_BUDGET);
    assert_ne!(
        outcome,
        RunOutcome::BudgetExhausted,
        "simulation exceeded the event budget — protocol livelock?"
    );
    let now = sim.now();
    let events = sim.events_processed();
    let report = sim.world_mut().finalize(now, events);
    let hostile = sim.world_mut().finalize_hostile();
    let world = sim.into_world();
    (report, world.tracer, hostile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use netsim::Topology;
    use workload::{TargetCountWorkload, Workload};

    fn small_cfg(duration_min: u64) -> SimConfig {
        let topo = Topology::new(
            vec![
                netsim::ClusterSpec {
                    nodes: 4,
                    intra: netsim::LinkSpec::myrinet_like(),
                };
                2
            ],
            netsim::LinkSpec::ethernet_like(),
        );
        SimConfig::new(topo, SimDuration::from_minutes(duration_min))
    }

    fn small_workload(duration_min: u64, counts: Vec<Vec<u64>>) -> Vec<workload::SendEvent> {
        TargetCountWorkload {
            cluster_sizes: vec![4, 4],
            duration: SimDuration::from_minutes(duration_min),
            counts,
            payload_bytes: 256,
        }
        .schedule(&RngStreams::new(99))
    }

    #[test]
    fn quiet_run_produces_no_clcs() {
        let report = run(small_cfg(10));
        assert_eq!(report.clusters[0].total_clcs(), 0);
        assert_eq!(report.app_sent, 0);
        assert_eq!(report.late_crossings, 0);
    }

    #[test]
    fn timer_driven_clcs_accumulate() {
        let cfg = small_cfg(60).with_clc_delay(0, SimDuration::from_minutes(10));
        let report = run(cfg);
        // 60 minutes / 10-minute timer: 5–6 unforced CLCs in cluster 0.
        let c0 = &report.clusters[0];
        assert!(
            (5..=6).contains(&c0.unforced_clcs),
            "got {} unforced",
            c0.unforced_clcs
        );
        assert_eq!(c0.forced_clcs, 0);
        assert_eq!(report.clusters[1].total_clcs(), 0);
    }

    #[test]
    fn traffic_is_delivered_and_counted() {
        let sends = small_workload(10, vec![vec![50, 5], vec![5, 50]]);
        let n_sends = sends.len() as u64;
        let report = run(small_cfg(10).with_sends(sends));
        assert_eq!(report.app_sent, n_sends);
        assert_eq!(report.app_delivered, n_sends, "reliable network");
        assert_eq!(report.app_matrix[0][0], 50);
        assert_eq!(report.app_matrix[0][1], 5);
        assert_eq!(report.late_crossings, 0);
    }

    #[test]
    fn inter_cluster_messages_force_clcs() {
        // Cluster 0 checkpoints on a timer; each new CLC makes the next
        // 0→1 message force a CLC in cluster 1.
        let sends = small_workload(60, vec![vec![0, 30], vec![0, 0]]);
        let cfg = small_cfg(60)
            .with_clc_delay(0, SimDuration::from_minutes(10))
            .with_sends(sends);
        let report = run(cfg);
        let forced = report.clusters[1].forced_clcs;
        // First message forces (SN 1 > 0); then one force per cluster-0 CLC
        // that is followed by a message: ≈ 6 + 1, bounded by message count.
        assert!(forced >= 2, "got {forced}");
        assert!(forced <= 8, "got {forced}");
        assert_eq!(report.clusters[1].unforced_clcs, 0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mk = || {
            let sends = small_workload(30, vec![vec![40, 8], vec![8, 40]]);
            run(small_cfg(30)
                .with_clc_delay(0, SimDuration::from_minutes(5))
                .with_clc_delay(1, SimDuration::from_minutes(7))
                .with_sends(sends))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.app_delivered, b.app_delivered);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.clusters[0].total_clcs(), b.clusters[0].total_clcs());
        assert_eq!(a.protocol_messages, b.protocol_messages);
    }

    #[test]
    fn fault_triggers_rollback_and_recovery() {
        let sends = small_workload(30, vec![vec![40, 5], vec![0, 40]]);
        let cfg = small_cfg(30)
            .with_clc_delay(0, SimDuration::from_minutes(5))
            .with_clc_delay(1, SimDuration::from_minutes(5))
            .with_sends(sends)
            .with_fault(
                SimTime::ZERO + SimDuration::from_minutes(17),
                NodeId::new(0, 2),
            );
        let report = run(cfg);
        assert_eq!(report.clusters[0].rollbacks.len(), 1);
        let (at, sn, _) = report.clusters[0].rollbacks[0];
        assert!(at >= SimTime::ZERO + SimDuration::from_minutes(17));
        assert!(sn.value() >= 1);
        assert_eq!(report.unrecoverable_faults, 0);
        // Work lost is under one timer period (fault at 17 min, CLC at 15).
        assert!(report.clusters[0].work_lost[0] <= SimDuration::from_minutes(5));
        assert_eq!(report.late_crossings, 0);
    }

    #[test]
    fn gc_prunes_during_run() {
        let cfg = small_cfg(120)
            .with_clc_delay(0, SimDuration::from_minutes(10))
            .with_clc_delay(1, SimDuration::from_minutes(10))
            .with_gc_interval(SimDuration::from_minutes(45));
        let report = run(cfg);
        let gc0 = &report.clusters[0].gc_before_after;
        assert!(gc0.len() >= 2, "two GCs in 120 min: {gc0:?}");
        for &(before, after) in gc0 {
            assert!(after <= before);
            assert!(after >= 1);
        }
        // Independent clusters: GC collapses storage to the latest CLC.
        assert!(gc0.iter().all(|&(_, after)| after == 1));
    }

    #[test]
    fn mtbf_faults_fire() {
        let mut cfg = small_cfg(600).with_clc_delay(0, SimDuration::from_minutes(30));
        cfg.topology.mtbf = Some(SimDuration::from_hours(2));
        cfg = cfg.with_clc_delay(1, SimDuration::from_minutes(30));
        let report = run(cfg);
        // 10 hours at a 2-hour MTBF ≈ 5 faults; all recoverable.
        assert!(
            report.total_rollbacks() >= 1,
            "expected at least one MTBF fault"
        );
        assert_eq!(report.unrecoverable_faults, 0);
    }
}
