//! End-of-run metrics.

use desim::{SimDuration, SimTime};
use storage::SeqNum;

/// Per-cluster checkpointing statistics.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Unforced (timer-driven) CLCs committed.
    pub unforced_clcs: u64,
    /// Forced (communication-induced) CLCs committed.
    pub forced_clcs: u64,
    /// CLCs currently stored at end of run (coordinator's store).
    pub stored_clcs: usize,
    /// Largest number of CLCs simultaneously stored.
    pub peak_stored_clcs: usize,
    /// Rollbacks this cluster performed: `(time, restored SN, discarded)`.
    pub rollbacks: Vec<(SimTime, SeqNum, usize)>,
    /// Simulated work lost per rollback (now − restored CLC's commit time).
    pub work_lost: Vec<SimDuration>,
    /// GC before/after stored-CLC counts, one pair per collection.
    pub gc_before_after: Vec<(usize, usize)>,
    /// Messages currently logged at end of run (cluster-wide total).
    pub logged_messages: u64,
    /// Peak simultaneously logged messages (cluster-wide total of peaks).
    pub peak_logged_messages: u64,
}

impl ClusterStats {
    /// Total committed CLCs (excluding the initial checkpoint).
    pub fn total_clcs(&self) -> u64 {
        self.unforced_clcs + self.forced_clcs
    }
}

/// Everything a run reports.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-cluster statistics.
    pub clusters: Vec<ClusterStats>,
    /// Application messages delivered end-to-end.
    pub app_delivered: u64,
    /// Application messages the workload issued.
    pub app_sent: u64,
    /// `(from, to)` application message counts per cluster pair.
    pub app_matrix: Vec<Vec<u64>>,
    /// Total protocol-control messages on the wire.
    pub protocol_messages: u64,
    /// Total protocol-control bytes on the wire.
    pub protocol_bytes: u64,
    /// Inter-cluster acknowledgement messages.
    pub ack_messages: u64,
    /// Inter-cluster acknowledgement bytes.
    pub ack_bytes: u64,
    /// Application payload bytes on the wire (piggyback overhead included).
    pub app_bytes: u64,
    /// Consistency-monitor events (must be 0 for a sound run).
    pub late_crossings: u64,
    /// Unrecoverable-fault reports (fragment lost).
    pub unrecoverable_faults: u64,
    /// Events the simulator dispatched.
    pub events_processed: u64,
    /// Simulated time at which the run ended.
    pub ended_at: SimTime,
}

impl RunReport {
    /// Total rollbacks across the federation.
    pub fn total_rollbacks(&self) -> usize {
        self.clusters.iter().map(|c| c.rollbacks.len()).sum()
    }

    /// Render the Table-1-style application message matrix.
    pub fn format_app_matrix(&self) -> String {
        let mut s = String::from("Sender's   Receiver's  Message\nCluster    Cluster     Count\n");
        let n = self.app_matrix.len();
        // The paper lists intra pairs first, then inter pairs.
        for i in 0..n {
            s.push_str(&format!(
                "Cluster {i}  Cluster {i}   {}\n",
                self.app_matrix[i][i]
            ));
        }
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.push_str(&format!(
                        "Cluster {i}  Cluster {j}   {}\n",
                        self.app_matrix[i][j]
                    ));
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut r = RunReport::default();
        r.clusters.push(ClusterStats {
            unforced_clcs: 3,
            forced_clcs: 2,
            rollbacks: vec![(SimTime::ZERO, SeqNum(1), 2)],
            ..Default::default()
        });
        r.clusters.push(ClusterStats::default());
        assert_eq!(r.clusters[0].total_clcs(), 5);
        assert_eq!(r.total_rollbacks(), 1);
    }

    #[test]
    fn matrix_formatting_lists_intra_then_inter() {
        let r = RunReport {
            app_matrix: vec![vec![2920, 145], vec![11, 2497]],
            ..Default::default()
        };
        let s = r.format_app_matrix();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].contains("2920"));
        assert!(lines[3].contains("2497"));
        assert!(lines[4].contains("145"));
        assert!(lines[5].contains("11"));
    }
}
