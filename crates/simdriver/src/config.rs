//! Simulation configuration.

use desim::{SimDuration, SimTime, TraceLevel};
use hc3i_core::{ProtocolConfig, XportConfig};
use netsim::{ContentionModel, HostileSpec, NodeId, PartitionSpec, Topology};
use workload::SendEvent;

/// A scripted node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the node fail-stops.
    pub at: SimTime,
    /// Which node.
    pub node: NodeId,
}

/// Everything a federation run needs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Clusters, nodes and links.
    pub topology: Topology,
    /// Protocol parameters (piggyback mode, replication, wire sizes).
    pub protocol: ProtocolConfig,
    /// Delay between unforced CLCs, per cluster (`INFINITE` = never).
    pub clc_delays: Vec<SimDuration>,
    /// Garbage-collection period (`None` = never).
    pub gc_interval: Option<SimDuration>,
    /// Failure-detection latency (fault → DetectFault delivery).
    pub detection_delay: SimDuration,
    /// Total simulated application time.
    pub duration: SimDuration,
    /// The application send schedule.
    pub sends: Vec<SendEvent>,
    /// Scripted faults (in addition to MTBF-driven ones if the topology
    /// sets an MTBF).
    pub faults: Vec<FaultEvent>,
    /// Scripted one-shot unforced CLCs: `(when, cluster)`. The simulator
    /// counterpart of the runtime controller's `checkpoint_now` — lets a
    /// scripted scenario run step-for-step on both substrates.
    pub scripted_clcs: Vec<(SimTime, usize)>,
    /// Scripted one-shot garbage collections (runtime `gc_now`).
    pub scripted_gcs: Vec<SimTime>,
    /// Network contention model.
    pub contention: ContentionModel,
    /// Root RNG seed (MTBF fault placement).
    pub seed: u64,
    /// Trace level (the paper's compile-time trace levels, made runtime).
    pub trace: TraceLevel,
    /// Hostile-network behaviour (duplication, reordering, latency skew).
    /// `None` keeps the pristine network and the exact event stream of a
    /// run that predates the hostile model.
    pub hostile: Option<HostileSpec>,
    /// Scripted cluster partitions with heal times. Inter-cluster messages
    /// crossing an active cut are held until the heal.
    pub partitions: Vec<PartitionSpec>,
    /// Record a per-tag delivery ledger into the side statistics of
    /// [`run_hostile`](crate::run_hostile). Observation only; the run
    /// itself is unaffected.
    pub track_delivery: bool,
    /// Host-level reliable transport for inter-cluster traffic
    /// (retransmission + dedup; see `hc3i_core::xport`). Required for the
    /// engine's exactly-once assumptions to survive hostile packet loss.
    /// `None` keeps the wire format and event stream of a run that
    /// predates the transport.
    pub xport: Option<XportConfig>,
    /// Mirror every node's CLC store to an on-disk segment log under this
    /// directory (`storage::DurableStore`): commits, rollback truncations
    /// and GC prunes are appended as checksummed frames, fsync-ed per
    /// commit, so a hard-killed run recovers to its last durable CLC. The
    /// directory must not already hold a segment log. `None` (the
    /// default) keeps everything in memory; the event stream and report
    /// fingerprint are identical either way.
    pub durable_dir: Option<std::path::PathBuf>,
    /// Crash injection for durability tests: once this many commit frames
    /// have been appended to the durable log, abort the whole process (no
    /// flush, no destructors — a simulated power loss at a deterministic
    /// point). Requires [`SimConfig::durable_dir`].
    pub durable_crash_after: Option<u64>,
    /// Number of simulator shards for the conservative parallel driver.
    /// Clusters are partitioned across this many OS threads, each owning
    /// its own calendar queue and engine sub-arena, synchronized only by
    /// the inter-cluster lookahead horizon. `1` (the default) runs the
    /// sequential executive. Any value produces byte-identical reports and
    /// fingerprints; runs with [`SimConfig::durable_dir`] set degrade to
    /// the sequential path (the durable log needs the global commit-frame
    /// order), and the shard count is clamped to the cluster count.
    pub sim_shards: usize,
}

impl SimConfig {
    /// A config over `topology` with paper-default protocol parameters, no
    /// timers armed, no faults, empty schedule.
    pub fn new(topology: Topology, duration: SimDuration) -> Self {
        let sizes = topology
            .cluster_ids()
            .map(|c| topology.nodes_in(c))
            .collect::<Vec<_>>();
        let n = sizes.len();
        SimConfig {
            topology,
            protocol: ProtocolConfig::new(sizes),
            clc_delays: vec![SimDuration::INFINITE; n],
            gc_interval: None,
            detection_delay: SimDuration::from_millis(100),
            duration,
            sends: vec![],
            faults: vec![],
            scripted_clcs: vec![],
            scripted_gcs: vec![],
            contention: ContentionModel::Unlimited,
            seed: 0xC3C3_C3C3,
            trace: TraceLevel::Off,
            hostile: None,
            partitions: vec![],
            track_delivery: false,
            xport: None,
            durable_dir: None,
            durable_crash_after: None,
            sim_shards: 1,
        }
    }

    /// Set one cluster's unforced-CLC delay.
    pub fn with_clc_delay(mut self, cluster: usize, delay: SimDuration) -> Self {
        self.clc_delays[cluster] = delay;
        self
    }

    /// Set the GC period.
    pub fn with_gc_interval(mut self, interval: SimDuration) -> Self {
        self.gc_interval = Some(interval);
        self
    }

    /// Replace the send schedule.
    pub fn with_sends(mut self, sends: Vec<SendEvent>) -> Self {
        self.sends = sends;
        self
    }

    /// Add a scripted fault.
    pub fn with_fault(mut self, at: SimTime, node: NodeId) -> Self {
        self.faults.push(FaultEvent { at, node });
        self
    }

    /// Take one unforced CLC in `cluster` at `at` (independent of the
    /// periodic timer).
    pub fn with_scripted_clc(mut self, at: SimTime, cluster: usize) -> Self {
        self.scripted_clcs.push((at, cluster));
        self
    }

    /// Run one garbage collection at `at` (independent of the periodic
    /// GC interval).
    pub fn with_scripted_gc(mut self, at: SimTime) -> Self {
        self.scripted_gcs.push(at);
        self
    }

    /// Replace the protocol configuration.
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        assert_eq!(
            protocol.num_clusters(),
            self.topology.num_clusters(),
            "protocol/topology cluster count mismatch"
        );
        self.protocol = protocol;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the trace level.
    pub fn with_trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Enable the hostile-network fault model.
    pub fn with_hostile(mut self, spec: HostileSpec) -> Self {
        self.hostile = Some(spec);
        self
    }

    /// Add a scripted cluster partition: the clusters in `group` are cut
    /// off from the rest between `at` and `until`.
    pub fn with_partition(mut self, at: SimTime, until: SimTime, group: Vec<u16>) -> Self {
        self.partitions.push(PartitionSpec {
            at,
            until,
            group,
            oneway: false,
        });
        self
    }

    /// Add an *asymmetric* partition: between `at` and `until`, traffic
    /// *from* the clusters in `group` to the rest is severed while the
    /// reverse direction flows.
    pub fn with_oneway_partition(mut self, at: SimTime, until: SimTime, group: Vec<u16>) -> Self {
        self.partitions.push(PartitionSpec {
            at,
            until,
            group,
            oneway: true,
        });
        self
    }

    /// Enable the host-level reliable transport (default tuning) on every
    /// inter-cluster link.
    pub fn with_reliable_transport(mut self) -> Self {
        self.xport = Some(XportConfig::default());
        self
    }

    /// Enable the host-level reliable transport with explicit tuning.
    pub fn with_transport(mut self, xport: XportConfig) -> Self {
        self.xport = Some(xport);
        self
    }

    /// Track per-tag deliveries in the side ledger of
    /// [`run_hostile`](crate::run_hostile).
    pub fn with_delivery_ledger(mut self) -> Self {
        self.track_delivery = true;
        self
    }

    /// Mirror every node's CLC store to an on-disk segment log under
    /// `dir` (must not already hold one).
    pub fn with_durable_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Abort the process (simulated power loss) after `commits` durable
    /// commit frames.
    pub fn with_durable_crash_after(mut self, commits: u64) -> Self {
        self.durable_crash_after = Some(commits);
        self
    }

    /// Partition the federation across `shards` parallel simulator shards
    /// (see [`SimConfig::sim_shards`]).
    pub fn with_sim_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "sim_shards must be at least 1");
        self.sim_shards = shards;
        self
    }

    /// End of simulated time.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quiet() {
        let c = SimConfig::new(Topology::paper_reference(2), SimDuration::from_hours(1));
        assert!(c.clc_delays.iter().all(|d| d.is_infinite()));
        assert!(c.gc_interval.is_none());
        assert!(c.sends.is_empty());
        assert_eq!(c.protocol.num_clusters(), 2);
        assert_eq!(c.horizon(), SimTime::ZERO + SimDuration::from_hours(1));
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::new(Topology::paper_reference(2), SimDuration::from_hours(1))
            .with_clc_delay(0, SimDuration::from_minutes(30))
            .with_gc_interval(SimDuration::from_hours(2))
            .with_fault(
                SimTime::ZERO + SimDuration::from_minutes(5),
                NodeId::new(0, 3),
            )
            .with_seed(7);
        assert_eq!(c.clc_delays[0], SimDuration::from_minutes(30));
        assert!(c.clc_delays[1].is_infinite());
        assert_eq!(c.gc_interval, Some(SimDuration::from_hours(2)));
        assert_eq!(c.faults.len(), 1);
        assert_eq!(c.seed, 7);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn protocol_dimension_checked() {
        let _ = SimConfig::new(Topology::paper_reference(2), SimDuration::from_hours(1))
            .with_protocol(hc3i_core::ProtocolConfig::new(vec![4, 4, 4]));
    }
}
