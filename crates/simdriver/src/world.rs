//! The discrete-event world binding protocol engines to the network model.

use crate::config::SimConfig;
use crate::hostile::HostileRunStats;
use crate::report::{ClusterStats, RunReport};
use desim::{Ctx, EventKey, InboxKey, SimTime, TraceLevel, Tracer, World};
use hc3i_core::{Input, Msg, NodeEngine, Output, OutputBuf, ReceiverChannel, SenderChannel};
use netsim::{HostileNet, Network, NodeId, Topology};
use std::collections::HashMap;

/// Events of the federation world.
#[derive(Debug, Clone)]
pub enum Ev {
    /// The workload issues an application send.
    AppSend {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Payload size.
        bytes: u64,
        /// Workload tag.
        tag: u64,
    },
    /// A message arrives at `to`.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        msg: Msg,
    },
    /// A cluster's unforced-CLC timer fires.
    ClcTimer {
        /// The cluster.
        cluster: usize,
    },
    /// A scripted one-shot unforced CLC (the simulator counterpart of the
    /// runtime controller's `checkpoint_now`; never re-arms timers).
    ClcNow {
        /// The cluster.
        cluster: usize,
    },
    /// The federation GC timer fires.
    GcTimer,
    /// A scripted one-shot garbage collection (runtime `gc_now`).
    GcNow,
    /// A node fail-stops.
    Fault {
        /// The failing node.
        node: NodeId,
    },
    /// The failure detector reports.
    Detect {
        /// Cluster of the failed node.
        cluster: usize,
        /// Failed rank.
        failed_rank: u32,
    },
    /// A scripted partition cut activates (bookkeeping/trace only: holds
    /// are computed from the schedule at send time).
    PartitionStart {
        /// Index into [`SimConfig::partitions`].
        index: usize,
    },
    /// A scripted partition heals.
    PartitionHeal {
        /// Index into [`SimConfig::partitions`].
        index: usize,
    },
    /// A reliable-transport retransmission timer fires for one in-flight
    /// copy of the directed channel `from → to`. Stale firings (the copy
    /// was acked, or an earlier event already retransmitted and re-armed)
    /// are no-ops, so acks never need to cancel timers.
    XportRetry {
        /// Sending node of the channel.
        from: NodeId,
        /// Receiving node of the channel.
        to: NodeId,
        /// Transport sequence of the copy.
        seq: u64,
    },
    /// End of the simulated application.
    End,
}

/// Assignment of clusters to simulator shards: each shard owns one
/// *contiguous* cluster range (so a shard's engine sub-arena stays a
/// single dense slice), balanced greedily by node count.
#[derive(Debug, Clone)]
pub(crate) struct ShardMap {
    /// `owner[c]` = shard owning cluster `c`.
    owner: Vec<usize>,
    /// `ranges[s]` = half-open cluster range owned by shard `s`.
    ranges: Vec<(usize, usize)>,
}

impl ShardMap {
    /// The trivial map of the sequential executive: one shard owns all.
    pub(crate) fn single(num_clusters: usize) -> Self {
        ShardMap {
            owner: vec![0; num_clusters],
            ranges: vec![(0, num_clusters)],
        }
    }

    /// Partition `topology`'s clusters into `shards` contiguous ranges.
    /// Every shard gets at least one cluster; `shards` must be in
    /// `1..=num_clusters`.
    pub(crate) fn new(topology: &Topology, shards: usize) -> Self {
        let n = topology.num_clusters();
        assert!(
            (1..=n).contains(&shards),
            "shard count {shards} outside 1..={n}"
        );
        let sizes: Vec<u64> = topology
            .cluster_ids()
            .map(|c| topology.nodes_in(c) as u64)
            .collect();
        let mut remaining: u64 = sizes.iter().sum();
        let mut owner = vec![0usize; n];
        let mut ranges = Vec::with_capacity(shards);
        let mut lo = 0usize;
        for s in 0..shards {
            let shards_left = shards - s;
            // Even split of what's left; `max_hi` reserves one cluster for
            // each shard still to come.
            let target = remaining.div_ceil(shards_left as u64);
            let max_hi = n - (shards_left - 1);
            let mut hi = lo + 1;
            let mut taken = sizes[lo];
            while hi < max_hi && taken < target {
                taken += sizes[hi];
                hi += 1;
            }
            for o in &mut owner[lo..hi] {
                *o = s;
            }
            ranges.push((lo, hi));
            remaining -= taken;
            lo = hi;
        }
        assert_eq!(lo, n, "every cluster assigned");
        ShardMap { owner, ranges }
    }

    /// Number of shards.
    pub(crate) fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Shard owning cluster `c`.
    #[inline]
    pub(crate) fn owner(&self, c: usize) -> usize {
        self.owner[c]
    }

    /// Half-open cluster range owned by shard `s`.
    pub(crate) fn range(&self, s: usize) -> (usize, usize) {
        self.ranges[s]
    }
}

/// Host-level reliable-transport state of the whole federation: one
/// sender and one receiver channel per *directed* node pair that has
/// carried inter-cluster traffic. Keyed access only (never iterated), so
/// the hash map cannot perturb determinism.
pub(crate) struct XportState {
    cfg: hc3i_core::XportConfig,
    senders: HashMap<(NodeId, NodeId), SenderChannel>,
    receivers: HashMap<(NodeId, NodeId), ReceiverChannel>,
}

impl XportState {
    fn new(cfg: hc3i_core::XportConfig) -> Self {
        XportState {
            cfg,
            senders: HashMap::new(),
            receivers: HashMap::new(),
        }
    }

    /// Total retransmitted copies across all channels.
    fn retransmissions(&self) -> u64 {
        self.senders.values().map(|s| s.retransmissions).sum()
    }
}

/// On-disk mirror of every engine's CLC store
/// ([`SimConfig::durable_dir`]): the engine's durability hooks
/// (`StoreCommitted`/`StorePruned`/`RolledBack`) are appended to a
/// [`storage::DurableStore`] keyed by global arena index. Observation
/// only — the event stream and report fingerprint of a durable run are
/// identical to an in-memory run.
pub(crate) struct DurableSink {
    log: storage::DurableStore<hc3i_core::CheckpointCodec>,
    /// Abort the process once this many commit frames are durable
    /// (simulated power loss; see `SimConfig::durable_crash_after`).
    crash_after: Option<u64>,
}

impl DurableSink {
    fn open(dir: &std::path::Path, crash_after: Option<u64>) -> Self {
        let log = storage::DurableStore::open(
            dir,
            hc3i_core::CheckpointCodec,
            storage::DurableOptions::default(),
        )
        .unwrap_or_else(|e| panic!("open durable store at {}: {e}", dir.display()));
        assert!(
            log.is_fresh(),
            "durable dir {} already holds a segment log; recover it or use a fresh directory",
            dir.display()
        );
        DurableSink { log, crash_after }
    }

    fn commit(&mut self, node: u64, entry: &storage::ClcEntry<hc3i_core::NodeCheckpoint>) {
        self.log
            .append_commit(node, &entry.meta, &entry.payload)
            .expect("durable commit append");
        if self
            .crash_after
            .is_some_and(|n| self.log.commit_frames() >= n)
        {
            // Simulated power loss: no flush, no destructors. Exactly the
            // fsync-ed prefix of the log is what recovery will see.
            std::process::abort();
        }
    }
}

/// The federation: engines + network + statistics.
///
/// Engines live in one flat arena indexed by precomputed per-cluster
/// offsets (`NodeId → offsets[cluster] + rank`), so the per-event dispatch
/// is a single bounds-checked index instead of a nested `Vec<Vec<_>>`
/// double indirection; engine outputs are drained through one reusable
/// [`OutputBuf`], so dispatching an event allocates nothing.
///
/// Under the parallel executive a world is one *shard* of the federation:
/// it holds engines (and all sender-side network/transport/hostile state)
/// only for its owned contiguous cluster range, routes inter-cluster
/// deliveries through the canonically-ordered inbox, and parks deliveries
/// bound for other shards in an outbox (`take_outbox`). The sequential
/// executive is simply the one-shard instance of the same machinery.
pub struct FederationWorld {
    pub(crate) cfg: SimConfig,
    /// Cluster → shard assignment (trivial for a sequential run).
    pub(crate) shards: ShardMap,
    /// This world's shard id.
    pub(crate) shard: usize,
    /// Engines of the *owned* clusters, cluster-major.
    pub(crate) engines: Vec<NodeEngine>,
    /// `offsets[c]` = arena index of cluster `c`'s rank 0 for owned
    /// clusters (`usize::MAX` elsewhere — touching an unowned cluster is a
    /// routing bug and fails fast); `offsets[hi]` of the owned range =
    /// owned node count.
    pub(crate) offsets: Vec<usize>,
    /// Per directed cluster pair (`src * n + dst`): wire copies shipped so
    /// far. The per-route sequence component of the canonical [`InboxKey`].
    wire_seq: Vec<u64>,
    /// Inter-cluster deliveries bound for other shards, produced during
    /// the current window: `(dest shard, arrival, key, event)`.
    outbox: Vec<(usize, SimTime, InboxKey, Ev)>,
    /// Struct-of-arrays mirror of each engine's failed flag, maintained at
    /// the single point engines mutate ([`Self::handle_engine`]). Liveness
    /// sweeps (recovery-coordinator election, multi-failure collection,
    /// send gating) scan this dense array cache-linearly instead of
    /// striding over whole [`NodeEngine`]s.
    pub(crate) failed: Vec<bool>,
    pub(crate) net: Network,
    pub(crate) clc_timer_keys: Vec<Option<EventKey>>,
    /// Per-cluster ranks already reported to the recovery coordinator and
    /// not yet seen alive again (mirrors the runtime probe's `reported`
    /// set): concurrent faults reach the engine as *one* multi-failure
    /// report instead of one rollback per detection event.
    reported: Vec<std::collections::HashSet<u32>>,
    pub(crate) stats: RunReport,
    pub(crate) tracer: Tracer,
    /// Reusable engine-output buffer threaded through `handle_engine`.
    out_buf: OutputBuf,
    /// Hostile post-processor; `None` on the pristine path, whose event
    /// stream must stay byte-identical to a world without this field.
    hostile: Option<HostileNet>,
    /// Side statistics of the hostile run (never part of the fingerprinted
    /// [`RunReport`]).
    pub(crate) hostile_stats: HostileRunStats,
    /// Reliable transport; `None` keeps the wire and event stream of a
    /// transport-free run byte-identical.
    pub(crate) xport: Option<XportState>,
    /// Durable segment-log mirror; `None` keeps the run fully in memory.
    pub(crate) durable: Option<DurableSink>,
}

impl FederationWorld {
    /// Build the world (engines initialized, nothing scheduled yet).
    pub fn new(cfg: SimConfig) -> Self {
        let n = cfg.topology.num_clusters();
        Self::new_shard(cfg, ShardMap::single(n), 0)
    }

    /// Build one shard of the federation: engines only for the clusters
    /// `shards.range(shard)` covers. A durable run must be single-shard
    /// (the segment log records a global commit-frame order).
    pub(crate) fn new_shard(cfg: SimConfig, shards: ShardMap, shard: usize) -> Self {
        let n = cfg.topology.num_clusters();
        assert!(
            cfg.durable_dir.is_none() || shards.num_shards() == 1,
            "durable runs are sequential-only"
        );
        let (lo, hi) = shards.range(shard);
        let mut offsets = vec![usize::MAX; n + 1];
        let mut engines = Vec::new();
        let mut total = 0usize;
        // One shared config for the whole arena, one shared initial DDV
        // per cluster: at 100k nodes the per-engine copies these replace
        // are the dominant construction cost and memory footprint.
        let proto = std::sync::Arc::new(cfg.protocol.clone());
        #[allow(clippy::needless_range_loop)] // `c` also keys topology and the DDV
        for c in lo..hi {
            offsets[c] = total;
            let nodes = cfg.topology.nodes_in(netsim::ClusterId(c as u16));
            let mut initial = storage::Ddv::zeros(n);
            initial.set(c, storage::SeqNum(1));
            let initial = std::sync::Arc::new(initial);
            for r in 0..nodes {
                engines.push(NodeEngine::with_initial_ddv(
                    proto.clone(),
                    NodeId::new(c as u16, r),
                    initial.clone(),
                ));
            }
            total += nodes as usize;
        }
        offsets[hi] = total;
        let net = Network::new(cfg.topology.clone()).with_contention(cfg.contention);
        let stats = RunReport {
            clusters: vec![ClusterStats::default(); n],
            app_matrix: vec![vec![0; n]; n],
            ..Default::default()
        };
        let tracer = Tracer::new(cfg.trace);
        let hostile = if cfg.hostile.is_some() || !cfg.partitions.is_empty() {
            Some(HostileNet::new(
                cfg.hostile.clone().unwrap_or_default(),
                cfg.partitions.clone(),
            ))
        } else {
            None
        };
        let hostile_stats = HostileRunStats {
            ledger: cfg.track_delivery.then(Default::default),
            ..Default::default()
        };
        let failed = vec![false; engines.len()];
        let xport = cfg.xport.map(XportState::new);
        let durable = cfg.durable_dir.as_ref().map(|dir| {
            let mut sink = DurableSink::open(dir, cfg.durable_crash_after);
            // Seed the log with every node's genesis chain (the initial
            // CLC is committed inside `NodeEngine::new`, never through
            // the `StoreCommitted` hook).
            for (idx, e) in engines.iter().enumerate() {
                sink.log
                    .snapshot_node(idx as u64, e.store())
                    .expect("seed durable genesis");
            }
            sink.log.sync().expect("sync durable genesis");
            sink
        });
        FederationWorld {
            cfg,
            shards,
            shard,
            engines,
            offsets,
            wire_seq: vec![0; n * n],
            outbox: Vec::new(),
            failed,
            net,
            clc_timer_keys: vec![None; n],
            reported: vec![std::collections::HashSet::new(); n],
            stats,
            tracer,
            out_buf: OutputBuf::new(),
            hostile,
            hostile_stats,
            xport,
            durable,
        }
    }

    /// True when this shard owns `cluster`.
    #[inline]
    pub(crate) fn owns(&self, cluster: usize) -> bool {
        self.shards.owner(cluster) == self.shard
    }

    /// This world's shard id.
    #[inline]
    pub(crate) fn shard(&self) -> usize {
        self.shard
    }

    /// Take the cross-shard deliveries produced since the last call.
    pub(crate) fn take_outbox(&mut self) -> Vec<(usize, SimTime, InboxKey, Ev)> {
        std::mem::take(&mut self.outbox)
    }

    /// The trace collected so far (level per [`SimConfig::trace`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Arena index of `id`.
    #[inline]
    fn engine_index(&self, id: NodeId) -> usize {
        self.offsets[id.cluster.index()] + id.rank as usize
    }

    /// Access an engine (tests, report finalization).
    pub fn engine(&self, id: NodeId) -> &NodeEngine {
        &self.engines[self.engine_index(id)]
    }

    fn handle_engine(&mut self, ctx: &mut Ctx<'_, Ev>, node: NodeId, input: Input) {
        let idx = self.engine_index(node);
        let mut buf = std::mem::take(&mut self.out_buf);
        self.engines[idx].handle(ctx.now(), input, &mut buf);
        self.failed[idx] = self.engines[idx].is_failed();
        self.absorb(ctx, node, &mut buf);
        self.out_buf = buf;
    }

    /// Dispatch one outgoing engine message. With the reliable transport
    /// enabled, inter-cluster traffic detours through the sender channel
    /// (sequence assignment, bounded window, retransmit timer) and enters
    /// the wire wrapped in [`Msg::Reliable`]; everything else goes
    /// straight to [`Self::ship_wire`].
    fn ship(&mut self, ctx: &mut Ctx<'_, Ev>, source: NodeId, to: NodeId, msg: Msg) {
        let reliable = self.xport.is_some() && source.cluster != to.cluster;
        if !reliable {
            self.ship_wire(ctx, source, to, msg);
            return;
        }
        let x = self.xport.as_mut().expect("checked above");
        let seq = x
            .senders
            .entry((source, to))
            .or_default()
            .send(ctx.now(), &x.cfg, msg.clone());
        // `None` = window full: the channel parked the copy; it enters
        // the wire from an ack's released batch.
        if let Some(seq) = seq {
            self.ship_reliable(ctx, source, to, seq, msg);
        }
    }

    /// Put one transport-wrapped copy on the wire and arm its
    /// retransmission timer at the channel's current deadline.
    fn ship_reliable(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        source: NodeId,
        to: NodeId,
        seq: u64,
        msg: Msg,
    ) {
        let deadline = self
            .xport
            .as_ref()
            .and_then(|x| x.senders.get(&(source, to)))
            .and_then(|ch| ch.deadline(seq));
        self.ship_wire(
            ctx,
            source,
            to,
            Msg::Reliable {
                seq,
                inner: Box::new(msg),
            },
        );
        if let Some(at) = deadline {
            ctx.schedule_at(
                at,
                Ev::XportRetry {
                    from: source,
                    to,
                    seq,
                },
            );
        }
    }

    /// Charge one outgoing message to the network model and schedule its
    /// delivery. The single path every wire copy goes through — plain
    /// sends, expanded fragment fan-out batches, transport wraps, acks
    /// and retransmissions alike — so accounting and tracing cannot
    /// diverge between them.
    fn ship_wire(&mut self, ctx: &mut Ctx<'_, Ev>, source: NodeId, to: NodeId, msg: Msg) {
        let bytes = msg.wire_bytes(&self.cfg.protocol);
        let class = msg.class();
        let mut arrival = self.net.send(ctx.now(), source, to, bytes, class);
        // Hostile post-processing happens after the base network committed
        // its timing and accounting: skew/hold/reorder shift only the
        // delivery event, a duplicate copy is a ghost the network never
        // charges for, and a lost message was charged but never arrives.
        let mut duplicate_at = None;
        if let Some(h) = self.hostile.as_mut() {
            let outcome = h.post(ctx.now(), source, to, arrival);
            if outcome.lost {
                self.hostile_stats.messages_lost += 1;
                if self.tracer.enabled(TraceLevel::Full) {
                    self.tracer.full(ctx.now(), "net", || {
                        format!("{source} -> {to}: {msg:?} ({bytes} B, LOST)")
                    });
                }
                return;
            }
            arrival = outcome.arrival;
            duplicate_at = outcome.duplicate;
        }
        if self.tracer.enabled(TraceLevel::Full) {
            self.tracer.full(ctx.now(), "net", || {
                format!("{source} -> {to}: {msg:?} ({bytes} B, arrives {arrival})")
            });
        }
        if source.cluster == to.cluster {
            // Intra-cluster traffic never leaves the shard: it stays on
            // the local calendar queue in scheduling order, as always.
            if let Some(at) = duplicate_at {
                ctx.schedule_at(
                    at,
                    Ev::Deliver {
                        from: source,
                        to,
                        msg: msg.clone(),
                    },
                );
            }
            ctx.schedule_at(
                arrival,
                Ev::Deliver {
                    from: source,
                    to,
                    msg,
                },
            );
            return;
        }
        // Inter-cluster copies go through the canonically-ordered inbox —
        // on every shard count, including one. The key is derived purely
        // from the sending side (send instant, directed cluster route,
        // per-route wire sequence; low bit marks a hostile duplicate), so
        // same-instant arrivals dispatch identically no matter which shard
        // ingested them, or whether there were shards at all.
        let n = self.cfg.topology.num_clusters();
        let slot = source.cluster.index() * n + to.cluster.index();
        let seq = self.wire_seq[slot];
        self.wire_seq[slot] = seq + 1;
        let route = ((source.cluster.0 as u64) << 32) | to.cluster.0 as u64;
        let sent = ctx.now();
        if let Some(at) = duplicate_at {
            let ev = Ev::Deliver {
                from: source,
                to,
                msg: msg.clone(),
            };
            self.route_inter(ctx, to, at, (sent, route, (seq << 1) | 1), ev);
        }
        let ev = Ev::Deliver {
            from: source,
            to,
            msg,
        };
        self.route_inter(ctx, to, arrival, (sent, route, seq << 1), ev);
    }

    /// Hand one inter-cluster wire copy to its destination: the local
    /// inbox when this shard owns the receiving cluster, the outbox (for
    /// the parallel driver to forward) otherwise.
    fn route_inter(
        &mut self,
        ctx: &mut Ctx<'_, Ev>,
        to: NodeId,
        at: SimTime,
        key: InboxKey,
        ev: Ev,
    ) {
        let owner = self.shards.owner(to.cluster.index());
        if owner == self.shard {
            ctx.schedule_inbox(at, key, ev);
        } else {
            self.outbox.push((owner, at, key, ev));
        }
    }

    fn absorb(&mut self, ctx: &mut Ctx<'_, Ev>, source: NodeId, outs: &mut OutputBuf) {
        for out in outs.drain() {
            match out {
                Output::Send { to, msg } => self.ship(ctx, source, to, msg),
                Output::SendFragments {
                    holders,
                    round,
                    epoch,
                } => {
                    // Expand the batched fan-out exactly like per-holder
                    // sends: same per-message wire bytes, same network
                    // accounting, same delivery scheduling, holder order.
                    for &h in holders.iter() {
                        let to = NodeId::new(source.cluster.0, h);
                        let msg = Msg::FragmentReplica {
                            round,
                            owner: source.rank,
                            epoch,
                        };
                        self.ship(ctx, source, to, msg);
                    }
                }
                Output::DeliverApp { from, payload } => {
                    self.stats.app_delivered += 1;
                    if from.cluster != source.cluster {
                        // Ledger incarnation = rollbacks the receiving
                        // cluster completed before this delivery.
                        let incarnation =
                            self.stats.clusters[source.cluster.index()].rollbacks.len();
                        if let Some(ledger) = self.hostile_stats.ledger.as_mut() {
                            ledger.record_delivered(payload.tag, incarnation);
                        }
                    }
                    if self.tracer.enabled(TraceLevel::Full) {
                        self.tracer.full(ctx.now(), "app", || {
                            format!("{source} delivered tag {} from {from}", payload.tag)
                        });
                    }
                }
                Output::Committed { sn, forced } => {
                    let cluster = source.cluster.index();
                    if self.tracer.enabled(TraceLevel::Protocol) {
                        self.tracer.protocol(ctx.now(), "clc", || {
                            format!(
                                "cluster {cluster} committed CLC {sn}{}",
                                if forced { " (forced)" } else { "" }
                            )
                        });
                    }
                    let c = &mut self.stats.clusters[cluster];
                    if forced {
                        c.forced_clcs += 1;
                    } else {
                        c.unforced_clcs += 1;
                    }
                }
                Output::ResetClcTimer => {
                    let cluster = source.cluster.index();
                    if let Some(key) = self.clc_timer_keys[cluster].take() {
                        ctx.cancel(key);
                    }
                    let delay = self.cfg.clc_delays[cluster];
                    if !delay.is_infinite() {
                        let key = ctx.schedule_in(delay, Ev::ClcTimer { cluster });
                        self.clc_timer_keys[cluster] = Some(key);
                    }
                }
                Output::StoreCommitted { sn } => {
                    if let Some(d) = self.durable.as_mut() {
                        let idx = self.offsets[source.cluster.index()] + source.rank as usize;
                        let entry = self.engines[idx]
                            .store()
                            .get(sn)
                            .expect("committed CLC is stored");
                        d.commit(idx as u64, entry);
                    }
                }
                Output::StorePruned { min_sn } => {
                    if let Some(d) = self.durable.as_mut() {
                        let idx = self.offsets[source.cluster.index()] + source.rank as usize;
                        d.log
                            .append_prune(idx as u64, min_sn)
                            .expect("durable prune append");
                    }
                }
                Output::RolledBack {
                    restore_sn,
                    discarded_clcs,
                } => {
                    if let Some(d) = self.durable.as_mut() {
                        let idx = self.offsets[source.cluster.index()] + source.rank as usize;
                        d.log
                            .append_truncate(idx as u64, restore_sn)
                            .expect("durable truncate append");
                    }
                    if source.rank == 0 {
                        let cluster = source.cluster.index();
                        if self.tracer.enabled(TraceLevel::Protocol) {
                            self.tracer.protocol(ctx.now(), "rollback", || {
                                format!(
                                    "cluster {cluster} restored CLC {restore_sn} ({discarded_clcs} discarded)"
                                )
                            });
                        }
                        let committed_at = self.engines[self.offsets[cluster]]
                            .store()
                            .get(restore_sn)
                            .map(|e| e.meta.committed_at)
                            .unwrap_or(SimTime::ZERO);
                        let stats = &mut self.stats.clusters[cluster];
                        stats
                            .rollbacks
                            .push((ctx.now(), restore_sn, discarded_clcs));
                        stats
                            .work_lost
                            .push(ctx.now().saturating_since(committed_at));
                    }
                }
                Output::GcReport { before, after } => {
                    if self.tracer.enabled(TraceLevel::Protocol) {
                        self.tracer.protocol(ctx.now(), "gc", || {
                            format!(
                                "cluster {} pruned {before} -> {after} CLCs",
                                source.cluster.index()
                            )
                        });
                    }
                    self.stats.clusters[source.cluster.index()]
                        .gc_before_after
                        .push((before, after));
                }
                Output::Unrecoverable { .. } => {
                    self.stats.unrecoverable_faults += 1;
                }
                Output::LateCrossing { .. } => {
                    self.stats.late_crossings += 1;
                }
                Output::RestoreApp { .. } => {
                    // Application state is abstract under the simulator.
                }
            }
        }
    }

    /// Lowest surviving rank in a cluster (the detector's report target).
    fn recovery_coordinator(&self, cluster: usize) -> Option<u32> {
        self.failed[self.offsets[cluster]..self.offsets[cluster + 1]]
            .iter()
            .position(|&f| !f)
            .map(|r| r as u32)
    }

    /// Fill in the end-of-run fields of the report.
    pub(crate) fn finalize(&mut self, now: SimTime, events: u64) -> RunReport {
        // A finished run leaves a fully flushed log (per-commit fsync only
        // covers commit frames; trailing truncate/prune frames are flushed
        // here).
        if let Some(d) = self.durable.as_mut() {
            d.log.sync().expect("sync durable log");
        }
        let n = self.cfg.topology.num_clusters();
        let (lo, hi) = self.shards.range(self.shard);
        for c in lo..hi {
            let engines = &self.engines[self.offsets[c]..self.offsets[c + 1]];
            let coord = &engines[0];
            let stats = &mut self.stats.clusters[c];
            stats.stored_clcs = coord.store().len();
            stats.peak_stored_clcs = coord.store().peak();
            stats.logged_messages = engines.iter().map(|e| e.log().len() as u64).sum();
            stats.peak_logged_messages = engines.iter().map(|e| e.log().peak() as u64).sum();
        }
        for i in 0..n {
            for j in 0..n {
                self.stats.app_matrix[i][j] = self
                    .net
                    .app_messages(netsim::ClusterId(i as u16), netsim::ClusterId(j as u16));
            }
        }
        self.stats.protocol_messages = self.net.total_by_class(netsim::MessageClass::Protocol);
        self.stats.protocol_bytes = self
            .net
            .total_bytes_by_class(netsim::MessageClass::Protocol);
        self.stats.ack_messages = self.net.total_by_class(netsim::MessageClass::Ack);
        self.stats.ack_bytes = self.net.total_bytes_by_class(netsim::MessageClass::Ack);
        self.stats.app_bytes = self.net.total_bytes_by_class(netsim::MessageClass::App);
        self.stats.events_processed = events;
        self.stats.ended_at = now;
        self.stats.clone()
    }

    /// Fold the hostile post-processor's counters into the side statistics
    /// and return them (empty/default for a pristine run).
    pub(crate) fn finalize_hostile(&mut self) -> HostileRunStats {
        if let Some(h) = self.hostile.as_ref() {
            self.hostile_stats.messages_held = h.held;
            self.hostile_stats.duplicates_injected = h.duplicates;
            self.hostile_stats.messages_reordered = h.reordered;
            // `messages_lost` is counted at the ship site (per wire copy,
            // retransmissions included), which matches `h.lost` exactly.
            debug_assert_eq!(self.hostile_stats.messages_lost, h.lost);
        }
        if let Some(x) = self.xport.as_ref() {
            self.hostile_stats.retransmissions = x.retransmissions();
        }
        self.hostile_stats.clone()
    }
}

impl World for FederationWorld {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, event: Ev) {
        match event {
            Ev::AppSend {
                from,
                to,
                bytes,
                tag,
            } => {
                self.stats.app_sent += 1;
                if self.hostile_stats.ledger.is_some() {
                    // Only inter-cluster sends from a live node enter the
                    // ledger: their eventual delivery is the protocol's
                    // sender-logging guarantee (§3.3). Intra-cluster
                    // traffic is covered by the coordinated checkpoint,
                    // and a failed node's application is down.
                    let live = !self.failed[self.engine_index(from)];
                    if let Some(ledger) = self.hostile_stats.ledger.as_mut() {
                        if live && from.cluster != to.cluster {
                            ledger.record_sent(tag);
                        }
                    }
                }
                self.handle_engine(
                    ctx,
                    from,
                    Input::AppSend {
                        to,
                        payload: hc3i_core::AppPayload { bytes, tag },
                    },
                );
            }
            Ev::Deliver { from, to, msg } => match msg {
                // Transport frames terminate at the host: engines never
                // see `Reliable` wrappers or `XportAck`s.
                Msg::Reliable { seq, inner } if self.xport.is_some() => {
                    let fresh = self
                        .xport
                        .as_mut()
                        .expect("checked above")
                        .receivers
                        .entry((from, to))
                        .or_default()
                        .accept(seq);
                    // The host acks every copy it sees — even for a failed
                    // engine, so the sender's window drains; a dead node's
                    // lost deliveries are the protocol's problem (sender
                    // logging + replay), not the transport's.
                    self.ship_wire(ctx, to, from, Msg::XportAck { seq });
                    if fresh {
                        self.handle_engine(ctx, to, Input::Receive { from, msg: *inner });
                    }
                }
                Msg::XportAck { seq } if self.xport.is_some() => {
                    // The ack travels receiver → sender, so the sender
                    // channel it cancels is keyed (to, from).
                    let released = {
                        let x = self.xport.as_mut().expect("checked above");
                        let cfg = x.cfg;
                        x.senders
                            .get_mut(&(to, from))
                            .map(|ch| ch.ack(ctx.now(), &cfg, seq))
                            .unwrap_or_default()
                    };
                    for (rseq, rmsg) in released {
                        self.ship_reliable(ctx, to, from, rseq, rmsg);
                    }
                }
                msg => self.handle_engine(ctx, to, Input::Receive { from, msg }),
            },
            Ev::ClcTimer { cluster } => {
                self.clc_timer_keys[cluster] = None;
                let coord = NodeId::new(cluster as u16, 0);
                self.handle_engine(ctx, coord, Input::ClcTimer);
                // If no commit resets it (e.g. the reason merged into a
                // running round), re-arm so periodic checkpointing survives.
                if self.clc_timer_keys[cluster].is_none() {
                    let delay = self.cfg.clc_delays[cluster];
                    if !delay.is_infinite() {
                        let key = ctx.schedule_in(delay, Ev::ClcTimer { cluster });
                        self.clc_timer_keys[cluster] = Some(key);
                    }
                }
            }
            Ev::ClcNow { cluster } => {
                // One-shot: fire the coordinator's CLC input without
                // touching the periodic timer bookkeeping.
                let coord = NodeId::new(cluster as u16, 0);
                self.handle_engine(ctx, coord, Input::ClcTimer);
            }
            Ev::GcTimer => {
                let initiator = NodeId::new(0, 0);
                self.handle_engine(ctx, initiator, Input::GcTimer);
                if let Some(interval) = self.cfg.gc_interval {
                    ctx.schedule_in(interval, Ev::GcTimer);
                }
            }
            Ev::GcNow => {
                self.handle_engine(ctx, NodeId::new(0, 0), Input::GcTimer);
            }
            Ev::Fault { node } => {
                if self.failed[self.engine_index(node)] {
                    return;
                }
                // The node was alive this instant: an earlier report on it
                // is spent, and this new failure is reportable again.
                self.reported[node.cluster.index()].remove(&node.rank);
                self.handle_engine(ctx, node, Input::Fail);
                ctx.schedule_in(
                    self.cfg.detection_delay,
                    Ev::Detect {
                        cluster: node.cluster.index(),
                        failed_rank: node.rank,
                    },
                );
            }
            Ev::Detect {
                cluster,
                failed_rank,
            } => {
                // Revived ranks become reportable again; then skip stale
                // detections (node already revived, or already part of an
                // earlier report whose rollback is still in flight).
                let base = self.offsets[cluster];
                {
                    let failed = &self.failed;
                    self.reported[cluster].retain(|&r| failed[base + r as usize]);
                }
                if !self.failed[base + failed_rank as usize]
                    || self.reported[cluster].contains(&failed_rank)
                {
                    return;
                }
                let Some(rank) = self.recovery_coordinator(cluster) else {
                    self.stats.unrecoverable_faults += 1;
                    return;
                };
                // One detection round observes *every* failed-and-unreported
                // rank — concurrent faults in a cluster reach the engine as
                // a single multi-failure report, exactly like the runtime's
                // heartbeat probes (`Input::DetectFaults`); the later
                // per-fault Detect events then skip as already reported.
                let failed_ranks: Vec<u32> = self.failed[base..self.offsets[cluster + 1]]
                    .iter()
                    .enumerate()
                    .filter(|&(r, &f)| f && !self.reported[cluster].contains(&(r as u32)))
                    .map(|(r, _)| r as u32)
                    .collect();
                self.reported[cluster].extend(failed_ranks.iter().copied());
                self.handle_engine(
                    ctx,
                    NodeId::new(cluster as u16, rank),
                    Input::DetectFaults { failed_ranks },
                );
            }
            Ev::PartitionStart { index } => {
                self.hostile_stats.partitions_activated += 1;
                if self.tracer.enabled(TraceLevel::Protocol) {
                    let group = self.cfg.partitions[index].group.clone();
                    self.tracer.protocol(ctx.now(), "partition", || {
                        format!("cut {index} active: clusters {group:?} severed")
                    });
                }
            }
            Ev::PartitionHeal { index } => {
                self.hostile_stats.partitions_healed += 1;
                if self.tracer.enabled(TraceLevel::Protocol) {
                    self.tracer
                        .protocol(ctx.now(), "partition", || format!("cut {index} healed"));
                }
            }
            Ev::XportRetry { from, to, seq } => {
                let retrans = self.xport.as_mut().and_then(|x| {
                    let cfg = x.cfg;
                    x.senders
                        .get_mut(&(from, to))
                        .and_then(|ch| ch.retransmit(ctx.now(), &cfg, seq))
                });
                if let Some((msg, next)) = retrans {
                    self.ship_wire(
                        ctx,
                        from,
                        to,
                        Msg::Reliable {
                            seq,
                            inner: Box::new(msg),
                        },
                    );
                    ctx.schedule_at(next, Ev::XportRetry { from, to, seq });
                }
            }
            Ev::End => ctx.stop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{ClusterSpec, LinkSpec};

    fn topo(sizes: &[u32]) -> Topology {
        Topology::new(
            sizes
                .iter()
                .map(|&nodes| ClusterSpec {
                    nodes,
                    intra: LinkSpec::myrinet_like(),
                })
                .collect(),
            LinkSpec::ethernet_like(),
        )
    }

    #[test]
    fn shard_map_covers_all_clusters_contiguously() {
        let t = topo(&[4, 4, 4, 4, 4, 4, 4, 4]);
        for shards in 1..=8 {
            let m = ShardMap::new(&t, shards);
            assert_eq!(m.num_shards(), shards);
            let mut expect = 0;
            for s in 0..shards {
                let (lo, hi) = m.range(s);
                assert_eq!(lo, expect, "ranges must be contiguous");
                assert!(hi > lo, "every shard owns at least one cluster");
                for c in lo..hi {
                    assert_eq!(m.owner(c), s);
                }
                expect = hi;
            }
            assert_eq!(expect, 8, "every cluster assigned");
        }
    }

    #[test]
    fn shard_map_balances_by_node_count() {
        // One giant cluster plus small ones: the giant gets a shard to
        // itself instead of dragging neighbours along.
        let t = topo(&[100, 2, 2, 2]);
        let m = ShardMap::new(&t, 2);
        assert_eq!(m.range(0), (0, 1));
        assert_eq!(m.range(1), (1, 4));

        // Uniform clusters split evenly.
        let t = topo(&[4; 8]);
        let m = ShardMap::new(&t, 4);
        for s in 0..4 {
            let (lo, hi) = m.range(s);
            assert_eq!(hi - lo, 2, "uniform clusters split evenly");
        }
    }

    #[test]
    fn shard_map_tail_shards_never_starve() {
        // Heavy clusters up front must not swallow the tail: each of the
        // 4 shards still owns at least one of the 4 clusters.
        let t = topo(&[50, 50, 1, 1]);
        let m = ShardMap::new(&t, 4);
        for s in 0..4 {
            let (lo, hi) = m.range(s);
            assert_eq!(hi - lo, 1);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn shard_map_rejects_more_shards_than_clusters() {
        let t = topo(&[4, 4]);
        ShardMap::new(&t, 3);
    }
}
