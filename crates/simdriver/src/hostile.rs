//! Side statistics of hostile-network runs.
//!
//! [`RunReport`](crate::RunReport) is the fingerprinted artifact of a run —
//! its `Debug` dump *is* the determinism contract — so hostile-network
//! observations live in this separate structure, returned only by
//! [`run_hostile`](crate::run_hostile). A run with every hostile feature
//! disabled produces byte-identical reports to one that never heard of
//! this module.

/// Per-tag delivery ledger: which workload sends were delivered, how many
/// times, and in which incarnation (rollback epoch) of the receiving
/// cluster.
///
/// Observation only — recording never feeds back into the run.
#[derive(Debug, Clone, Default)]
pub struct DeliveryLedger {
    /// `sent[tag]` = times the workload issued this tag (always 1).
    sent: Vec<u32>,
    /// `delivered[tag]` = total application deliveries of this tag,
    /// replays included.
    delivered: Vec<u32>,
    /// Deliveries per `(tag, receiver-cluster incarnation)`, where the
    /// incarnation index is the number of rollbacks the receiving cluster
    /// had completed when the delivery happened.
    per_incarnation: std::collections::BTreeMap<(u64, usize), u32>,
}

impl DeliveryLedger {
    fn slot(v: &mut Vec<u32>, tag: u64) -> &mut u32 {
        let i = tag as usize;
        if v.len() <= i {
            v.resize(i + 1, 0);
        }
        &mut v[i]
    }

    pub(crate) fn record_sent(&mut self, tag: u64) {
        *Self::slot(&mut self.sent, tag) += 1;
    }

    pub(crate) fn record_delivered(&mut self, tag: u64, incarnation: usize) {
        *Self::slot(&mut self.delivered, tag) += 1;
        *self.per_incarnation.entry((tag, incarnation)).or_default() += 1;
    }

    /// Fold another shard's ledger into this one (sends are recorded on
    /// the sender's shard, deliveries on the receiver's; the union over
    /// all shards is exactly the sequential ledger).
    pub(crate) fn absorb(&mut self, other: &DeliveryLedger) {
        for (tag, &s) in other.sent.iter().enumerate() {
            if s > 0 {
                *Self::slot(&mut self.sent, tag as u64) += s;
            }
        }
        for (tag, &d) in other.delivered.iter().enumerate() {
            if d > 0 {
                *Self::slot(&mut self.delivered, tag as u64) += d;
            }
        }
        for (&k, &v) in &other.per_incarnation {
            *self.per_incarnation.entry(k).or_default() += v;
        }
    }

    /// Tags that were sent but never delivered (committed work lost).
    pub fn undelivered(&self) -> Vec<u64> {
        self.sent
            .iter()
            .enumerate()
            .filter(|&(tag, &s)| s > 0 && self.delivered.get(tag).copied().unwrap_or(0) == 0)
            .map(|(tag, _)| tag as u64)
            .collect()
    }

    /// `(tag, incarnation, count)` entries delivered more than once within
    /// a single incarnation of the receiving cluster.
    pub fn duplicated_in_incarnation(&self) -> Vec<(u64, usize, u32)> {
        self.per_incarnation
            .iter()
            .filter(|&(_, &count)| count > 1)
            .map(|(&(tag, inc), &count)| (tag, inc, count))
            .collect()
    }

    /// Number of distinct tags sent.
    pub fn sent_tags(&self) -> usize {
        self.sent.iter().filter(|&&s| s > 0).count()
    }

    /// Number of distinct tags delivered at least once.
    pub fn delivered_tags(&self) -> usize {
        self.delivered.iter().filter(|&&d| d > 0).count()
    }
}

/// What the hostile network did during a run, plus the optional delivery
/// ledger. Everything here is derived state — the fingerprinted
/// [`RunReport`](crate::RunReport) never references it.
#[derive(Debug, Clone, Default)]
pub struct HostileRunStats {
    /// Scripted partitions that became active during the run.
    pub partitions_activated: u64,
    /// Partitions that healed during the run.
    pub partitions_healed: u64,
    /// Messages held at a partition cut.
    pub messages_held: u64,
    /// Duplicate message copies injected.
    pub duplicates_injected: u64,
    /// Messages released from FIFO order.
    pub messages_reordered: u64,
    /// Messages that vanished on the wire (loss model; retransmitted
    /// copies that are lost count individually).
    pub messages_lost: u64,
    /// Copies put back on the wire by the reliable transport.
    pub retransmissions: u64,
    /// The delivery ledger, present when
    /// [`SimConfig::with_delivery_ledger`](crate::SimConfig::with_delivery_ledger)
    /// was set.
    pub ledger: Option<DeliveryLedger>,
}
