//! The conservative parallel executive.
//!
//! Clusters are partitioned across `K` shards (see
//! [`ShardMap`](crate::world::ShardMap)); each shard runs its own
//! [`Simulation`] — calendar queue, engine sub-arena, sender-side network
//! state — on its own OS thread. Safety comes from the protocol's wire
//! model: an inter-cluster message sent at `s` arrives no earlier than
//! `s + L`, where `L` is the federation's minimum inter-cluster latency
//! ([`Topology::lookahead`](netsim::Topology::lookahead); hostile skew,
//! holds and FIFO clamps only *add* delay).
//!
//! Execution advances in lock-step *epochs*. At the top of an epoch every
//! shard drains its mailbox, publishes the timestamp of its next pending
//! event through an atomic, and crosses the opening barrier. The global
//! minimum `N` of those timestamps bounds the epoch window: every shard
//! runs its own events strictly below `N + L`, accumulating cross-shard
//! sends in an outbox, then pushes the outbox to the destination
//! mailboxes and crosses the closing barrier.
//!
//! * **Safety.** Any message created during the epoch is sent at or after
//!   `N` (no shard has an unprocessed event before `N`), so it arrives at
//!   or after `N + L` — strictly past everything any shard ran this
//!   epoch. Reactions to such a message happen in a later epoch (mail
//!   rests in the mailbox until the next drain), so transitive influence
//!   is delayed by at least `L` per hop, matching the window bound.
//! * **Liveness.** The shard owning the global minimum always runs at
//!   least that event (`L` is floored at 1 ns), and a quiet stretch is
//!   crossed in a *single* epoch: the window is computed from the actual
//!   next-event time, so the horizon jumps instead of climbing — the
//!   epoch count is proportional to the number of lookahead quanta that
//!   contain events, not to `duration / L`.
//!
//! Determinism does not depend on thread timing at all: every
//! inter-cluster delivery carries a canonical [`InboxKey`] derived from
//! the sending side alone, and the destination's inbox replays
//! same-instant arrivals in key order whatever order the mail showed up.
//! `hc3i_baselines --fingerprint` is byte-identical across shard counts.

use crate::config::SimConfig;
use crate::hostile::HostileRunStats;
use crate::report::{ClusterStats, RunReport};
use crate::run::{seed_shard_events, EVENT_BUDGET};
use crate::world::{Ev, FederationWorld, ShardMap};
use desim::{InboxKey, SimTime, Simulation, Tracer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Panic message observed by shards whose sibling died mid-epoch.
const SIBLING_PANIC: &str = "sibling simulator shard panicked";

/// True when a joined panic payload is the sibling echo a poisoned
/// barrier produces (as opposed to the original failure).
fn is_sibling_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .is_some_and(|s| s == SIBLING_PANIC)
        || payload
            .downcast_ref::<&str>()
            .is_some_and(|s| *s == SIBLING_PANIC)
}

/// One shard's synchronization endpoint.
struct Gate {
    /// The shard's next pending event time in nanoseconds (`u64::MAX`
    /// when stopped or empty), published at the top of every epoch.
    next: AtomicU64,
    /// Cross-shard deliveries addressed to this shard.
    mail: Mutex<Vec<(SimTime, InboxKey, Ev)>>,
}

/// A reusable barrier for the epoch loop: generation-counted so the same
/// instance closes every epoch, poisonable so a panicking shard releases
/// its siblings (who re-panic) instead of deadlocking them.
struct EpochBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    /// Mirror of `state.generation` for the lock-free spin phase.
    generation: AtomicU64,
    poisoned: AtomicBool,
    total: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl EpochBarrier {
    fn new(total: usize) -> Self {
        EpochBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            total,
        }
    }

    fn wait(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("{SIBLING_PANIC}");
        }
        let gen = {
            let mut st = self.state.lock().expect("epoch barrier lock poisoned");
            st.arrived += 1;
            if st.arrived == self.total {
                st.arrived = 0;
                st.generation += 1;
                self.generation.store(st.generation, Ordering::Release);
                drop(st);
                self.cv.notify_all();
                return;
            }
            st.generation
        };
        // Epochs are short, so siblings usually arrive within the spin
        // phase; fall back to the condvar (with a timeout, so a poison
        // that raced the notify is still noticed) for real stalls.
        for _ in 0..512 {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let mut st = self.state.lock().expect("epoch barrier lock poisoned");
        while st.generation == gen {
            if self.poisoned.load(Ordering::Acquire) {
                drop(st);
                panic!("{SIBLING_PANIC}");
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(20))
                .expect("epoch barrier lock poisoned");
            st = guard;
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}

/// Poisons the barrier if the owning shard unwinds, so siblings blocked
/// at either barrier crossing re-panic instead of waiting forever (the
/// original panic still propagates at join).
struct PoisonGuard<'a>(&'a EpochBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

struct ShardResult {
    report: RunReport,
    tracer: Tracer,
    hostile: HostileRunStats,
}

/// Run `cfg` across `shards` parallel simulator shards and merge the
/// per-shard results into exactly what the sequential executive reports.
pub(crate) fn run_sharded(cfg: SimConfig, shards: usize) -> (RunReport, Tracer, HostileRunStats) {
    assert!(shards > 1, "use the sequential path for one shard");
    let map = ShardMap::new(&cfg.topology, shards);
    let lookahead = cfg.topology.lookahead().nanos();
    let trace_level = cfg.trace;
    let num_clusters = cfg.topology.num_clusters();
    let gates: Vec<Gate> = (0..shards)
        .map(|_| Gate {
            next: AtomicU64::new(0),
            mail: Mutex::new(Vec::new()),
        })
        .collect();
    let barrier = EpochBarrier::new(shards);

    let mut parts: Vec<ShardResult> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let cfg = cfg.clone();
                let map = map.clone();
                let gates = &gates;
                let barrier = &barrier;
                scope.spawn(move || run_shard(cfg, map, shard, gates, barrier, lookahead))
            })
            .collect();
        let mut panics = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(panic) => panics.push(panic),
            }
        }
        if !panics.is_empty() {
            // Prefer the original panic over the sibling echoes the
            // poisoned barrier produced.
            let original = panics
                .iter()
                .position(|p| !is_sibling_panic(p.as_ref()))
                .unwrap_or(0);
            std::panic::resume_unwind(panics.swap_remove(original));
        }
    });

    merge(parts, &map, num_clusters, trace_level)
}

fn run_shard(
    cfg: SimConfig,
    map: ShardMap,
    shard: usize,
    gates: &[Gate],
    barrier: &EpochBarrier,
    lookahead: u64,
) -> ShardResult {
    let _guard = PoisonGuard(barrier);
    let mut sim = Simulation::new(FederationWorld::new_shard(cfg, map, shard));
    seed_shard_events(&mut sim);

    let mut epochs = 0u64;
    let mut busy_epochs = 0u64;
    loop {
        epochs += 1;
        // (1) Drain the mailbox into the canonically-ordered inbox. The
        // previous epoch's closing barrier ordered every sibling's push
        // before this drain, so the publish below accounts for all mail.
        {
            let mut mail = gates[shard].mail.lock().expect("shard mailbox poisoned");
            for (at, key, ev) in mail.drain(..) {
                sim.ingest(at, key, ev);
            }
        }
        // (2) Publish this shard's next pending event time.
        let next = if sim.is_stopped() {
            u64::MAX
        } else {
            sim.next_time().map(|t| t.nanos()).unwrap_or(u64::MAX)
        };
        gates[shard].next.store(next, Ordering::Release);
        // (3) Opening barrier: every publish is now visible to everyone,
        // so all shards compute the same epoch window.
        barrier.wait();
        let floor = gates
            .iter()
            .map(|g| g.next.load(Ordering::Acquire))
            .min()
            .expect("at least one shard");
        if floor == u64::MAX {
            // Every shard is stopped (or drained) with empty mailboxes:
            // all of them see this same minimum and exit together.
            break;
        }
        // (4) Run every event strictly below `floor + L`. The horizon
        // jumps straight to the global minimum, so quiet stretches cost
        // one epoch regardless of how many lookahead quanta they span.
        let horizon = SimTime(floor.saturating_add(lookahead) - 1);
        if next <= horizon.nanos() {
            busy_epochs += 1;
            sim.run_until(horizon);
            assert!(
                sim.events_processed() <= EVENT_BUDGET,
                "simulation exceeded the event budget — protocol livelock?"
            );
            // (5) Hand cross-shard sends to their owners. One mailbox
            // lock per destination shard, not per copy.
            let mut outbox = sim.world_mut().take_outbox();
            if !outbox.is_empty() {
                outbox.sort_by_key(|&(dest, ..)| dest);
                let mut iter = outbox.into_iter().peekable();
                while let Some((dest, at, key, ev)) = iter.next() {
                    let mut mail = gates[dest].mail.lock().expect("shard mailbox poisoned");
                    mail.push((at, key, ev));
                    while let Some(&(d, ..)) = iter.peek() {
                        if d != dest {
                            break;
                        }
                        let (_, at, key, ev) = iter.next().expect("peeked");
                        mail.push((at, key, ev));
                    }
                }
            }
        }
        // (6) Closing barrier: every epoch-`e` push lands before any
        // shard's epoch-`e+1` drain.
        barrier.wait();
    }

    // Debug aid for tuning the executive (never part of the report, so
    // the determinism contract is untouched): per-shard epoch counts on
    // stderr when HC3I_EPOCH_STATS is set.
    if std::env::var_os("HC3I_EPOCH_STATS").is_some() {
        eprintln!(
            "shard {shard}: {epochs} epochs, {busy_epochs} busy, {} events",
            sim.events_processed()
        );
    }

    let now = sim.now();
    let events = sim.events_processed();
    let report = sim.world_mut().finalize(now, events);
    let hostile = sim.world_mut().finalize_hostile();
    let world = sim.into_world();
    ShardResult {
        report,
        tracer: world.tracer,
        hostile,
    }
}

/// Fold per-shard results into the sequential run's report: per-cluster
/// stats come from the owning shard, traffic counters and matrices are
/// disjoint sums (all network accounting is sender-side), the clock ends
/// at the common horizon, and the per-shard `End` events — the only
/// events dispatched more than once across the federation — are deducted.
fn merge(
    parts: Vec<ShardResult>,
    map: &ShardMap,
    num_clusters: usize,
    trace_level: desim::TraceLevel,
) -> (RunReport, Tracer, HostileRunStats) {
    let n = num_clusters;
    let shards = parts.len();
    let mut report = RunReport {
        clusters: vec![ClusterStats::default(); n],
        app_matrix: vec![vec![0; n]; n],
        ..Default::default()
    };
    let mut hostile = HostileRunStats::default();
    let mut tracers = Vec::with_capacity(shards);
    for (s, part) in parts.into_iter().enumerate() {
        let r = part.report;
        for (c, stats) in r.clusters.into_iter().enumerate() {
            if map.owner(c) == s {
                report.clusters[c] = stats;
            }
        }
        for (i, row) in r.app_matrix.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                report.app_matrix[i][j] += v;
            }
        }
        report.app_delivered += r.app_delivered;
        report.app_sent += r.app_sent;
        report.protocol_messages += r.protocol_messages;
        report.protocol_bytes += r.protocol_bytes;
        report.ack_messages += r.ack_messages;
        report.ack_bytes += r.ack_bytes;
        report.app_bytes += r.app_bytes;
        report.late_crossings += r.late_crossings;
        report.unrecoverable_faults += r.unrecoverable_faults;
        report.events_processed += r.events_processed;
        report.ended_at = report.ended_at.max(r.ended_at);

        let h = part.hostile;
        hostile.partitions_activated += h.partitions_activated;
        hostile.partitions_healed += h.partitions_healed;
        hostile.messages_held += h.messages_held;
        hostile.duplicates_injected += h.duplicates_injected;
        hostile.messages_reordered += h.messages_reordered;
        hostile.messages_lost += h.messages_lost;
        hostile.retransmissions += h.retransmissions;
        if let Some(l) = h.ledger {
            hostile
                .ledger
                .get_or_insert_with(Default::default)
                .absorb(&l);
        }
        tracers.push(part.tracer);
    }
    report.events_processed -= shards as u64 - 1;
    (report, Tracer::merged(trace_level, tracers), hostile)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The barrier must be reusable: the same instance closes thousands
    /// of epochs, so a stale generation must never release early or trap
    /// a thread from the next round.
    #[test]
    fn barrier_closes_many_generations() {
        use std::sync::atomic::AtomicU64;
        const THREADS: usize = 4;
        const ROUNDS: u64 = 200;
        let barrier = EpochBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Everyone incremented before anyone left.
                        assert!(counter.load(Ordering::Relaxed) >= (round + 1) * THREADS as u64);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), ROUNDS * THREADS as u64);
    }

    /// A poisoned barrier releases blocked waiters as panics instead of
    /// deadlocking them — the property that lets a crashed shard's
    /// siblings unwind.
    #[test]
    fn poison_unblocks_waiters() {
        let barrier = EpochBarrier::new(2);
        let outcome = std::thread::scope(|scope| {
            let h = scope.spawn(|| barrier.wait());
            std::thread::sleep(Duration::from_millis(10));
            barrier.poison();
            h.join()
        });
        let payload = outcome.expect_err("waiter must panic, not hang");
        assert!(is_sibling_panic(payload.as_ref()));
    }
}
