//! Criterion benches: one per table and figure of the paper's evaluation.
//!
//! Each bench runs the corresponding experiment end-to-end (full-fidelity
//! 2×100-node federation over 10 simulated hours) at a single sweep point,
//! so `cargo bench` both regenerates the result shape and tracks the
//! simulator's own performance. The regenerator binaries (`--bin figureN`)
//! print the full sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use hc3i_bench::experiments;
use std::hint::black_box;

const SEED: u64 = experiments::DEFAULT_SEED;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/reference_workload", |b| {
        b.iter(|| {
            let r = experiments::table1(black_box(SEED));
            assert_eq!(r.app_matrix[0][0], 2920);
            black_box(r)
        })
    });
}

fn bench_figure6(c: &mut Criterion) {
    c.bench_function("figure6/clc_sweep_point_30min", |b| {
        b.iter(|| {
            let rows = experiments::figure6_7(black_box(&[30]), SEED);
            assert!(rows[0].c0_unforced > 0);
            black_box(rows)
        })
    });
}

fn bench_figure7(c: &mut Criterion) {
    c.bench_function("figure7/cluster1_forced_at_30min", |b| {
        b.iter(|| {
            let rows = experiments::figure6_7(black_box(&[30]), SEED);
            assert_eq!(rows[0].c1_unforced, 0, "cluster 1 timer is infinite");
            black_box(rows)
        })
    });
}

fn bench_figure8(c: &mut Criterion) {
    c.bench_function("figure8/c1_timer_15min", |b| {
        b.iter(|| black_box(experiments::figure8(black_box(&[15]), SEED)))
    });
}

fn bench_figure9(c: &mut Criterion) {
    c.bench_function("figure9/reverse_103_msgs", |b| {
        b.iter(|| black_box(experiments::figure9(black_box(&[103]), SEED)))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/gc_two_clusters", |b| {
        b.iter(|| {
            let r = experiments::table2(black_box(SEED));
            assert!(!r.clusters[0].gc_before_after.is_empty());
            black_box(r)
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/gc_three_clusters", |b| {
        b.iter(|| black_box(experiments::table3(black_box(SEED))))
    });
}

fn bench_ablation_ddv(c: &mut Criterion) {
    c.bench_function("ablation/ddv_ring3", |b| {
        b.iter(|| black_box(experiments::ablation_ddv(black_box(&[3]), SEED)))
    });
}

fn bench_ablation_protocols(c: &mut Criterion) {
    c.bench_function("ablation/protocol_families", |b| {
        b.iter(|| black_box(experiments::ablation_protocols(black_box(SEED))))
    });
}

fn bench_ablation_replication(c: &mut Criterion) {
    c.bench_function("ablation/replication_degree", |b| {
        b.iter(|| {
            black_box(experiments::ablation_replication(
                black_box(&[1, 2, 3]),
                SEED,
            ))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table1,
        bench_figure6,
        bench_figure7,
        bench_figure8,
        bench_figure9,
        bench_table2,
        bench_table3,
        bench_ablation_ddv,
        bench_ablation_protocols,
        bench_ablation_replication,
}
criterion_main!(figures);
