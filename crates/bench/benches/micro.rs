//! Micro-benchmarks of the protocol's hot paths and substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use desim::{EventQueue, SimDuration, SimTime};
use hc3i_core::recovery::{recovery_line, ClcList};
use hc3i_core::{gc, Ddv, SeqNum};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("desim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Scatter times to exercise heap reordering.
                let t = SimTime(i.wrapping_mul(0x9E3779B97F4A7C15) % 1_000_000);
                q.push(t, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn deep_lists(n_clusters: usize, clcs_per_cluster: u64) -> Vec<ClcList> {
    (0..n_clusters)
        .map(|c| {
            (1..=clcs_per_cluster)
                .map(|k| {
                    let mut ddv = Ddv::zeros(n_clusters);
                    ddv.set(c, SeqNum(k));
                    // Each cluster heard from its left neighbour up to k-1.
                    let left = (c + n_clusters - 1) % n_clusters;
                    ddv.set(left, SeqNum(k.saturating_sub(1)));
                    (SeqNum(k), std::sync::Arc::new(ddv))
                })
                .collect()
        })
        .collect()
}

fn bench_recovery_line(c: &mut Criterion) {
    let lists = deep_lists(8, 200);
    c.bench_function("core/recovery_line_8x200", |b| {
        b.iter(|| black_box(recovery_line(black_box(&lists), 0)))
    });
}

fn bench_gc_mins(c: &mut Criterion) {
    let lists = deep_lists(8, 200);
    c.bench_function("core/gc_safe_minimum_sns_8x200", |b| {
        b.iter(|| black_box(gc::safe_minimum_sns(black_box(&lists))))
    });
}

fn bench_instant_federation_clc(c: &mut Criterion) {
    use hc3i_core::testkit::InstantFederation;
    use hc3i_core::ProtocolConfig;
    c.bench_function("core/two_phase_commit_32_nodes", |b| {
        b.iter(|| {
            let mut fed = InstantFederation::new(ProtocolConfig::new(vec![32]));
            fed.fire_clc_timer(0);
            black_box(fed.commits.len())
        })
    });
}

fn bench_ddv_merge(c: &mut Criterion) {
    let a = Ddv::from_entries((0..64).map(SeqNum).collect());
    c.bench_function("storage/ddv_merge_max_64", |b| {
        b.iter(|| {
            let mut x = black_box(a.clone());
            let changed = x.merge_max(black_box(&a));
            black_box((x, changed))
        })
    });
}

fn bench_network_send(c: &mut Criterion) {
    use netsim::{MessageClass, Network, NodeId, Topology};
    c.bench_function("netsim/send_timing_10k", |b| {
        b.iter(|| {
            let mut net = Network::new(Topology::paper_reference(2));
            let mut t = SimTime::ZERO;
            for i in 0..10_000u32 {
                t += SimDuration::from_micros(1);
                let arrival = net.send(
                    t,
                    NodeId::new(0, i % 100),
                    NodeId::new(1, (i + 1) % 100),
                    1024,
                    MessageClass::App,
                );
                black_box(arrival);
            }
            black_box(net.total_by_class(MessageClass::App))
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets =
        bench_event_queue,
        bench_recovery_line,
        bench_gc_mins,
        bench_instant_federation_clc,
        bench_ddv_merge,
        bench_network_send,
}
criterion_main!(micro);
