//! The paper's evaluation experiments (§5), one function per table/figure.
//!
//! Every function builds the same setup the paper describes — 2 (or 3)
//! clusters of 100 nodes, Myrinet-like SANs, Ethernet-like inter-cluster
//! links, a 10-hour application with the Table 1 traffic — runs the
//! full-fidelity simulation and returns the rows the paper plots.

use desim::{RngStreams, SimDuration};
use hc3i_core::{PiggybackMode, ProtocolConfig};
use netsim::Topology;
use simdriver::{run, RunReport, SimConfig};
use workload::{TargetCountWorkload, Workload};

/// Default seed used by the regenerator binaries.
pub const DEFAULT_SEED: u64 = 20040426; // the workshop date

fn paper_run(
    n_clusters: usize,
    workload: &TargetCountWorkload,
    clc_delays_min: &[Option<u64>],
    gc_hours: Option<u64>,
    piggyback: PiggybackMode,
    seed: u64,
) -> RunReport {
    let sends = workload.schedule(&RngStreams::new(seed));
    let mut cfg = SimConfig::new(Topology::paper_reference(n_clusters), workload.duration)
        .with_sends(sends)
        .with_seed(seed)
        .with_protocol(ProtocolConfig::new(vec![100; n_clusters]).with_piggyback(piggyback));
    for (c, d) in clc_delays_min.iter().enumerate() {
        if let Some(minutes) = d {
            cfg = cfg.with_clc_delay(c, SimDuration::from_minutes(*minutes));
        }
    }
    if let Some(h) = gc_hours {
        cfg = cfg.with_gc_interval(SimDuration::from_hours(h));
    }
    run(cfg)
}

// ---------------------------------------------------------------- Table 1

/// Table 1: application message counts of the reference workload.
pub fn table1(seed: u64) -> RunReport {
    paper_run(
        2,
        &TargetCountWorkload::paper_table1(),
        &[Some(30), None],
        None,
        PiggybackMode::SnOnly,
        seed,
    )
}

// ------------------------------------------------------------ Figures 6–7

/// One sweep point of Figures 6 and 7.
#[derive(Debug, Clone, Copy)]
pub struct Fig67Row {
    /// Cluster-0 timer (minutes).
    pub delay_min: u64,
    /// Unforced CLCs committed in cluster 0.
    pub c0_unforced: u64,
    /// Forced CLCs committed in cluster 0.
    pub c0_forced: u64,
    /// Unforced CLCs committed in cluster 1 (timer is infinite: expect 0).
    pub c1_unforced: u64,
    /// Forced CLCs committed in cluster 1.
    pub c1_forced: u64,
    /// Simulator events dispatched by this point's run (bench-gate rate).
    pub events: u64,
}

/// Figures 6 & 7: CLC counts in both clusters as cluster 0's timer sweeps;
/// cluster 1's timer is infinite (paper §5.2).
pub fn figure6_7(delays_min: &[u64], seed: u64) -> Vec<Fig67Row> {
    delays_min
        .iter()
        .map(|&d| {
            let r = paper_run(
                2,
                &TargetCountWorkload::paper_table1(),
                &[Some(d), None],
                None,
                PiggybackMode::SnOnly,
                seed,
            );
            Fig67Row {
                delay_min: d,
                c0_unforced: r.clusters[0].unforced_clcs,
                c0_forced: r.clusters[0].forced_clcs,
                c1_unforced: r.clusters[1].unforced_clcs,
                c1_forced: r.clusters[1].forced_clcs,
                events: r.events_processed,
            }
        })
        .collect()
}

/// The paper's x axis for Figures 6–7 (minutes).
pub fn figure6_delays() -> Vec<u64> {
    vec![5, 10, 15, 20, 30, 40, 50, 60, 80, 100, 120]
}

// --------------------------------------------------------------- Figure 8

/// One sweep point of Figure 8.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Cluster-1 timer (minutes).
    pub c1_delay_min: u64,
    /// Total CLCs committed in cluster 0 (timer fixed at 30 min).
    pub c0_total: u64,
    /// Total CLCs committed in cluster 1.
    pub c1_total: u64,
    /// Forced CLCs committed in cluster 1.
    pub c1_forced: u64,
}

/// Figure 8: cluster 0's timer fixed at 30 min; sweep cluster 1's timer.
/// The paper's point: thanks to the low 1→0 message count, cluster 0 does
/// not store more CLCs even when cluster 1 checkpoints much more often.
pub fn figure8(c1_delays_min: &[u64], seed: u64) -> Vec<Fig8Row> {
    c1_delays_min
        .iter()
        .map(|&d| {
            let r = paper_run(
                2,
                &TargetCountWorkload::paper_table1(),
                &[Some(30), Some(d)],
                None,
                PiggybackMode::SnOnly,
                seed,
            );
            Fig8Row {
                c1_delay_min: d,
                c0_total: r.clusters[0].total_clcs(),
                c1_total: r.clusters[1].total_clcs(),
                c1_forced: r.clusters[1].forced_clcs,
            }
        })
        .collect()
}

/// The paper's x axis for Figure 8 (minutes).
pub fn figure8_delays() -> Vec<u64> {
    vec![15, 20, 25, 30, 35, 40, 45, 50, 55, 60]
}

// --------------------------------------------------------------- Figure 9

/// One sweep point of Figure 9.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Messages from cluster 1 to cluster 0.
    pub reverse_msgs: u64,
    /// Total CLCs in cluster 0.
    pub c0_total: u64,
    /// Forced CLCs in cluster 0.
    pub c0_forced: u64,
    /// Total CLCs in cluster 1.
    pub c1_total: u64,
    /// Forced CLCs in cluster 1.
    pub c1_forced: u64,
}

/// Figure 9: both timers at 30 min; sweep the number of messages from
/// cluster 1 to cluster 0. Forced CLCs grow quickly with reverse traffic.
pub fn figure9(reverse_counts: &[u64], seed: u64) -> Vec<Fig9Row> {
    reverse_counts
        .iter()
        .map(|&rev| {
            let r = paper_run(
                2,
                &TargetCountWorkload::paper_with_reverse_count(rev),
                &[Some(30), Some(30)],
                None,
                PiggybackMode::SnOnly,
                seed,
            );
            Fig9Row {
                reverse_msgs: rev,
                c0_total: r.clusters[0].total_clcs(),
                c0_forced: r.clusters[0].forced_clcs,
                c1_total: r.clusters[1].total_clcs(),
                c1_forced: r.clusters[1].forced_clcs,
            }
        })
        .collect()
}

/// The paper's x axis for Figure 9 (message counts).
pub fn figure9_counts() -> Vec<u64> {
    vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110]
}

// ------------------------------------------------------------- Tables 2–3

/// Table 2: per-GC stored-CLC counts before/after, two clusters, GC every
/// two hours, 103 reverse messages (paper §5.4's sample).
pub fn table2(seed: u64) -> RunReport {
    paper_run(
        2,
        &TargetCountWorkload::paper_with_reverse_count(103),
        &[Some(30), Some(30)],
        Some(2),
        PiggybackMode::SnOnly,
        seed,
    )
}

/// Table 3: the three-cluster variant (cluster 2 clones cluster 1, ~200
/// messages leave/arrive per cluster).
pub fn table3(seed: u64) -> RunReport {
    let w = workload::presets::paper_three_clusters();
    paper_run(
        3,
        &w,
        &[Some(30), Some(30), Some(30)],
        Some(2),
        PiggybackMode::SnOnly,
        seed,
    )
}

// -------------------------------------------------------------- Ablations

/// One row of the SnOnly-vs-FullDdv ablation (paper §7's proposed
/// transitivity extension).
#[derive(Debug, Clone, Copy)]
pub struct DdvAblationRow {
    /// Clusters in the ring.
    pub clusters: usize,
    /// Total forced CLCs under SN-only piggybacking.
    pub forced_sn_only: u64,
    /// Total forced CLCs under full-DDV piggybacking.
    pub forced_full_ddv: u64,
}

/// Compare forced-CLC counts between the two piggyback modes on a ring
/// workload (0→1→…→n−1→0) where transitive knowledge pays off.
pub fn ablation_ddv(cluster_counts: &[usize], seed: u64) -> Vec<DdvAblationRow> {
    cluster_counts
        .iter()
        .map(|&n| {
            let mut counts = vec![vec![0u64; n]; n];
            for (i, row) in counts.iter_mut().enumerate() {
                row[i] = 500;
                row[(i + 1) % n] = 60;
                // Every third cluster also reports two steps ahead,
                // creating the transitive shortcut.
                row[(i + 2) % n] += 20;
            }
            let w = TargetCountWorkload {
                cluster_sizes: vec![100; n],
                duration: SimDuration::from_hours(10),
                counts,
                payload_bytes: 1024,
            };
            let forced = |mode| {
                let delays: Vec<Option<u64>> = vec![Some(30); n];
                let r = paper_run(n, &w, &delays, None, mode, seed);
                r.clusters.iter().map(|c| c.forced_clcs).sum::<u64>()
            };
            DdvAblationRow {
                clusters: n,
                forced_sn_only: forced(PiggybackMode::SnOnly),
                forced_full_ddv: forced(PiggybackMode::FullDdv),
            }
        })
        .collect()
}

/// One protocol's costs in the cross-protocol ablation.
#[derive(Debug, Clone)]
pub struct ProtocolRow {
    /// Protocol name.
    pub protocol: String,
    /// Checkpoints taken over the run.
    pub checkpoints: u64,
    /// Coordination messages.
    pub protocol_messages: u64,
    /// Mean clusters rolled back per fault.
    pub mean_rollback_scope: f64,
    /// Total lost node-seconds across faults.
    pub lost_node_seconds: f64,
    /// Peak message-log bytes held.
    pub peak_log_bytes: u64,
}

/// Compare HC3I against the three baseline protocol families on the
/// reference workload with one mid-run fault in each cluster.
pub fn ablation_protocols(seed: u64) -> Vec<ProtocolRow> {
    use baselines::{global, independent, pessimistic, BaselineInput};
    use desim::SimTime;
    use netsim::NodeId;

    let w = TargetCountWorkload::paper_with_reverse_count(103);
    let sends = w.schedule(&RngStreams::new(seed));
    // Off-grid fault times (not multiples of the 30-minute checkpoint
    // period), so every protocol has genuinely lost work to recover.
    let fault_times = [
        (
            SimTime::ZERO + SimDuration::from_minutes(3 * 60 + 17),
            0usize,
        ),
        (
            SimTime::ZERO + SimDuration::from_minutes(7 * 60 + 23),
            1usize,
        ),
    ];

    // HC3I at full fidelity.
    let mut cfg = SimConfig::new(Topology::paper_reference(2), w.duration)
        .with_sends(sends.clone())
        .with_seed(seed)
        .with_clc_delay(0, SimDuration::from_minutes(30))
        .with_clc_delay(1, SimDuration::from_minutes(30));
    for &(at, cluster) in &fault_times {
        cfg = cfg.with_fault(at, NodeId::new(cluster as u16, 7));
    }
    let hc3i = run(cfg);
    let hc3i_lost: f64 = hc3i
        .clusters
        .iter()
        .map(|c| {
            c.work_lost
                .iter()
                .map(|d| d.as_secs_f64() * 100.0)
                .sum::<f64>()
        })
        .sum();
    let mut rows = vec![ProtocolRow {
        protocol: "hc3i".into(),
        checkpoints: hc3i.clusters.iter().map(|c| c.total_clcs()).sum(),
        protocol_messages: hc3i.protocol_messages,
        mean_rollback_scope: if fault_times.is_empty() {
            0.0
        } else {
            hc3i.total_rollbacks() as f64 / fault_times.len() as f64
        },
        lost_node_seconds: hc3i_lost,
        peak_log_bytes: hc3i
            .clusters
            .iter()
            .map(|c| c.peak_logged_messages * w.payload_bytes)
            .sum(),
    }];

    let input = BaselineInput {
        topology: Topology::paper_reference(2),
        sends,
        duration: w.duration,
        ckpt_periods: vec![SimDuration::from_minutes(30); 2],
        fragment_bytes: 4 << 20,
        faults: fault_times.to_vec(),
    };
    for report in [
        global::evaluate(&input),
        independent::evaluate(&input),
        pessimistic::evaluate(&input),
    ] {
        rows.push(ProtocolRow {
            protocol: report.protocol.into(),
            checkpoints: report.checkpoints,
            protocol_messages: report.protocol_messages,
            mean_rollback_scope: report.mean_rollback_scope(),
            lost_node_seconds: report.total_lost_node_seconds(),
            peak_log_bytes: report.peak_log_bytes,
        });
    }
    rows
}

/// One row of the replication-degree ablation (paper §7: configurable
/// degree of stable-storage replication).
#[derive(Debug, Clone, Copy)]
pub struct ReplicationRow {
    /// Replication degree (replicas per fragment).
    pub degree: u32,
    /// Guaranteed simultaneous faults tolerated in a 100-node cluster.
    pub guaranteed_faults: u32,
    /// Stable-storage copies per CLC per cluster (fragments).
    pub copies_per_clc: u64,
    /// Fraction of random 3-fault patterns that remain recoverable.
    pub random_triple_fault_survival: f64,
}

/// Sweep the replication degree and measure cost vs fault tolerance.
pub fn ablation_replication(degrees: &[u32], seed: u64) -> Vec<ReplicationRow> {
    use rand::Rng;
    use storage::ReplicationPolicy;
    let n_nodes = 100u32;
    degrees
        .iter()
        .map(|&degree| {
            let policy = ReplicationPolicy::with_degree(degree);
            let mut rng = RngStreams::new(seed).stream("replication", degree as u64);
            let trials = 2_000;
            let survived = (0..trials)
                .filter(|_| {
                    let mut picks = std::collections::HashSet::new();
                    while picks.len() < 3 {
                        picks.insert(rng.gen_range(0..n_nodes));
                    }
                    let failed: Vec<u32> = picks.into_iter().collect();
                    policy.recoverable(&failed, n_nodes)
                })
                .count();
            ReplicationRow {
                degree,
                guaranteed_faults: policy.guaranteed_faults(n_nodes),
                copies_per_clc: (policy.copies() as u64) * n_nodes as u64,
                random_triple_fault_survival: survived as f64 / trials as f64,
            }
        })
        .collect()
}

// ------------------------------------------------- §5.2 overhead breakdown

/// One row of the network/storage overhead breakdown (paper §5.2).
#[derive(Debug, Clone, Copy)]
pub struct OverheadRow {
    /// Cluster-0 CLC timer in minutes (`None` = no unforced CLCs anywhere).
    pub delay_min: Option<u64>,
    /// Total CLCs committed federation-wide.
    pub total_clcs: u64,
    /// Application payload bytes on the wire (incl. piggyback).
    pub app_bytes: u64,
    /// Protocol-control bytes (2PC rounds, fragments, alerts, GC).
    pub protocol_bytes: u64,
    /// Acknowledgement bytes.
    pub ack_bytes: u64,
    /// Protocol-control messages.
    pub protocol_messages: u64,
    /// Peak CLCs stored simultaneously (max over clusters).
    pub peak_stored: usize,
    /// Peak logged inter-cluster messages (sum over clusters).
    pub peak_logged: u64,
}

/// The paper's §5.2 analysis: "If no CLC is initiated, the only protocol
/// cost consists in logging optimistically in volatile memory inter-cluster
/// messages and transmitting an integer (SN) with them." Sweep the timer
/// from "never" downward and watch every cost component.
pub fn overhead_breakdown(delays_min: &[Option<u64>], seed: u64) -> Vec<OverheadRow> {
    delays_min
        .iter()
        .map(|&d| {
            let r = paper_run(
                2,
                &TargetCountWorkload::paper_table1(),
                &[d, None],
                None,
                PiggybackMode::SnOnly,
                seed,
            );
            OverheadRow {
                delay_min: d,
                total_clcs: r.clusters.iter().map(|c| c.total_clcs()).sum(),
                app_bytes: r.app_bytes,
                protocol_bytes: r.protocol_bytes,
                ack_bytes: r.ack_bytes,
                protocol_messages: r.protocol_messages,
                peak_stored: r
                    .clusters
                    .iter()
                    .map(|c| c.peak_stored_clcs)
                    .max()
                    .unwrap_or(0),
                peak_logged: r.clusters.iter().map(|c| c.peak_logged_messages).sum(),
            }
        })
        .collect()
}

// ------------------------------------------------------ federation scaling

/// One row of the federation-scaling sensitivity sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Clusters in the federation (ring workload, 20 nodes each).
    pub clusters: usize,
    /// Total CLCs committed.
    pub total_clcs: u64,
    /// Forced CLCs committed.
    pub forced_clcs: u64,
    /// Protocol messages.
    pub protocol_messages: u64,
    /// Simulator events processed (cost of the run itself).
    pub events: u64,
    /// Piggyback overhead per inter-cluster message in bytes under
    /// FullDdv (= 8 × clusters — the paper's point that the DDV scales
    /// with the number of *clusters*, not nodes).
    pub ddv_bytes: u64,
}

/// Scale the federation (ring traffic, fixed per-cluster rates) and watch
/// protocol costs grow with the number of clusters.
pub fn federation_scaling(cluster_counts: &[usize], seed: u64) -> Vec<ScalingRow> {
    cluster_counts
        .iter()
        .map(|&n| {
            let mut counts = vec![vec![0u64; n]; n];
            for (i, row) in counts.iter_mut().enumerate() {
                row[i] = 300;
                row[(i + 1) % n] = 40;
            }
            let w = TargetCountWorkload {
                cluster_sizes: vec![20; n],
                duration: SimDuration::from_hours(10),
                counts,
                payload_bytes: 1024,
            };
            let sends = w.schedule(&RngStreams::new(seed));
            let protocol = ProtocolConfig::new(vec![20; n]);
            let ddv_bytes = protocol.ddv_bytes();
            let mut cfg = SimConfig::new(
                netsim::Topology::new(
                    vec![
                        netsim::ClusterSpec {
                            nodes: 20,
                            intra: netsim::LinkSpec::myrinet_like(),
                        };
                        n
                    ],
                    netsim::LinkSpec::ethernet_like(),
                ),
                w.duration,
            )
            .with_sends(sends)
            .with_seed(seed)
            .with_protocol(protocol);
            for c in 0..n {
                cfg = cfg.with_clc_delay(c, SimDuration::from_minutes(30));
            }
            let r = run(cfg);
            ScalingRow {
                clusters: n,
                total_clcs: r.clusters.iter().map(|c| c.total_clcs()).sum(),
                forced_clcs: r.clusters.iter().map(|c| c.forced_clcs).sum(),
                protocol_messages: r.protocol_messages,
                events: r.events_processed,
                ddv_bytes,
            }
        })
        .collect()
}
