//! Bench-baseline capture (ROADMAP open item).
//!
//! Times the reference workloads that every perf PR must not regress and
//! writes them as machine-readable JSON plus a human-readable Markdown
//! summary:
//!
//! ```text
//! cargo run --release -p hc3i-bench --bin hc3i_baselines -- \
//!     [--quick] [--json PATH] [--md PATH] [--compare OLD.json] \
//!     [--fail-on-regression FRAC] [--fingerprint PATH] [--sim-shards K] \
//!     [--seed N]
//! ```
//!
//! * `--quick` trims every sweep for CI (seconds instead of minutes).
//! * `--json` / `--md` write `bench/BASELINES.json` / `bench/BASELINES.md`
//!   style artifacts.
//! * `--compare OLD.json` embeds the old wall times and per-entry speedups
//!   into the new artifacts (before/after for a perf PR).
//! * `--fail-on-regression FRAC` (requires `--compare`) exits non-zero if
//!   any *gated* entry (see [`gated`]) regresses by more than `FRAC`
//!   (e.g. `0.20` = 20%) against the compare file. Gated entries are
//!   judged on events/s (comparable between `--quick` and full runs,
//!   whose workload sizes differ), falling back to wall time when either
//!   side lacks a rate. When both artifacts carry the `calibration`
//!   entry — a fixed integer-mix + dependent-load chase that measures the
//!   *host*, not the repo — rates are first divided by the same run's
//!   calibration rate, cancelling the machine-speed gap between the
//!   recording host and the judging host, and the gate tightens to
//!   [`NORMALIZED_GATE`]: with the cross-machine gap gone, most of what
//!   survives normalization is per-event code regression. The
//!   seconds-long single-rep scaling and parallel-executive entries are
//!   recorded but not rate-gated (see [`gated`]); their gate is CI's
//!   wall-clock ceiling.
//! * `--fingerprint PATH` additionally dumps the full `RunReport` debug
//!   output of several seeded runs — byte-identical across code changes
//!   that preserve the determinism contract (same seed ⇒ bit-identical
//!   reports).
//! * `--sim-shards K` runs every fingerprinted configuration on the
//!   K-shard parallel executive. The shard-invariance contract says the
//!   artifact is byte-identical for *any* K — CI diffs K ∈ {1, 2, 4, 8}
//!   against each other, hostile configuration included.

use desim::{RngStreams, SimDuration, SimTime};
use hc3i_bench::experiments;
use hc3i_core::{PiggybackMode, ProtocolConfig};
use netsim::{ClusterSpec, HostileSpec, LinkSpec, NodeId, Topology};
use simdriver::{RunReport, SimConfig};
use std::fmt::Write as _;
use std::time::Instant;
use workload::{TargetCountWorkload, Workload};

/// One timed baseline entry.
struct Entry {
    name: &'static str,
    /// What the entry measures (goes into the Markdown table).
    what: &'static str,
    /// Best-of-N wall time, milliseconds.
    wall_ms: f64,
    /// Simulator events dispatched by one run (0 when not applicable).
    events: u64,
    /// Events per second of wall time (0 when not applicable).
    events_per_sec: f64,
}

fn time_run<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("at least one rep"))
}

fn entry(name: &'static str, what: &'static str, reps: usize, f: impl FnMut() -> u64) -> Entry {
    let (wall_ms, events) = time_run(reps, f);
    let events_per_sec = if events > 0 {
        events as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    Entry {
        name,
        what,
        wall_ms,
        events,
        events_per_sec,
    }
}

/// The reference event-loop workload: 2 clusters x 100 nodes, 10 simulated
/// hours, 103 reverse messages, 30-minute timers, GC every 2 h (~230k
/// events through `FederationWorld::handle`).
fn reference_config(seed: u64, piggyback: PiggybackMode) -> SimConfig {
    let w = TargetCountWorkload::paper_with_reverse_count(103);
    let sends = w.schedule(&RngStreams::new(seed));
    SimConfig::new(Topology::paper_reference(2), w.duration)
        .with_sends(sends)
        .with_seed(seed)
        .with_protocol(ProtocolConfig::new(vec![100, 100]).with_piggyback(piggyback))
        .with_clc_delay(0, SimDuration::from_minutes(30))
        .with_clc_delay(1, SimDuration::from_minutes(30))
        .with_gc_interval(SimDuration::from_hours(2))
}

/// A wide-federation ring: `n` clusters, small clusters, cross traffic to
/// the next cluster over, 30-minute timers.
fn ring_config(n: usize, nodes: u32, hours: u64, seed: u64) -> SimConfig {
    let mut counts = vec![vec![0u64; n]; n];
    for (i, row) in counts.iter_mut().enumerate() {
        row[i] = 120;
        row[(i + 1) % n] = 30;
    }
    let w = TargetCountWorkload {
        cluster_sizes: vec![nodes; n],
        duration: SimDuration::from_hours(hours),
        counts,
        payload_bytes: 1024,
    };
    let sends = w.schedule(&RngStreams::new(seed));
    let mut cfg = SimConfig::new(
        Topology::new(
            vec![
                ClusterSpec {
                    nodes,
                    intra: LinkSpec::myrinet_like(),
                };
                n
            ],
            LinkSpec::ethernet_like(),
        ),
        w.duration,
    )
    .with_sends(sends)
    .with_seed(seed)
    .with_protocol(ProtocolConfig::new(vec![nodes; n]));
    for c in 0..n {
        cfg = cfg.with_clc_delay(c, SimDuration::from_minutes(30));
    }
    cfg
}

/// Raw shard-channel throughput: `senders` producer threads blast
/// `per_sender` messages each through one unbounded channel while the
/// consumer drains until disconnect. This isolates the vendored channel
/// the sharded executor serializes on ("events" is the message count), so
/// channel regressions show up undiluted by protocol work.
fn channel_pump(senders: usize, per_sender: u64) -> u64 {
    let (tx, rx) = crossbeam::channel::unbounded::<u64>();
    let handles: Vec<_> = (0..senders as u64)
        .map(|s| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..per_sender {
                    tx.send((s << 32) | i).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    let mut received = 0u64;
    while rx.recv().is_ok() {
        received += 1;
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(received, senders as u64 * per_sender);
    received
}

/// End-to-end threaded-runtime throughput: a 64-node federation on the
/// default shard pool, one ring-wise wave of `msgs` messages, every
/// delivery awaited. Includes pool spawn and shutdown, so the entry
/// tracks the whole federation lifecycle the runtime promises ("events"
/// is the message count; events/s is messages per second).
fn runtime_wave(msgs: u64) -> u64 {
    use runtime::{Federation, RtEvent, RuntimeConfig};
    const CLUSTERS: usize = 4;
    const PER_CLUSTER: u32 = 16;
    let fed = Federation::spawn(RuntimeConfig::manual(vec![PER_CLUSTER; CLUSTERS]));
    let mut expected = std::collections::HashSet::new();
    for k in 0..msgs {
        let c = (k as usize % CLUSTERS) as u16;
        let r = (k as u32 / 7) % PER_CLUSTER;
        let to_c = ((c as usize + 1) % CLUSTERS) as u16;
        let to_r = (r + 3) % PER_CLUSTER;
        expected.insert(k);
        fed.send_app(
            NodeId::new(c, r),
            NodeId::new(to_c, to_r),
            hc3i_core::AppPayload { bytes: 256, tag: k },
        );
    }
    fed.wait_for(std::time::Duration::from_secs(300), |e| {
        if let RtEvent::Delivered { payload, .. } = e {
            expected.remove(&payload.tag);
        }
        expected.is_empty()
    })
    .expect("runtime wave fully delivered");
    fed.shutdown();
    msgs
}

/// Build the segment log the `recovery_from_disk` entry replays: a
/// 2048-node federation image (128 clusters x 16 nodes, 12 CLCs per
/// node) with growing delivery records and ring-dependent DDVs, written
/// with manual sync so image construction stays outside the timed
/// region. Single segment (~25 MiB of v2 delta-encoded commit frames) —
/// what a durable run leaves behind at steady state.
fn build_recovery_image(dir: &std::path::Path) {
    use hc3i_core::{AppPayload, CheckpointCodec, Ddv, DeliveredRecord, NodeCheckpoint, SeqNum};
    use storage::{ClcMeta, DurableOptions, DurableStore, SyncPolicy};

    const CLUSTERS: usize = 128;
    const NODES: u64 = 16;
    const CLCS: u64 = 12;
    let _ = std::fs::remove_dir_all(dir);
    let opts = DurableOptions {
        sync: SyncPolicy::Manual,
        compact_bytes: None,
    };
    let mut log = DurableStore::open(dir, CheckpointCodec, opts).expect("open image dir");
    for c in 0..CLUSTERS as u64 {
        for r in 0..NODES {
            let node = c * NODES + r;
            let mut delivered = DeliveredRecord::new();
            for k in 1..=CLCS {
                // One new inter-cluster delivery per CLC, so the v2 delta
                // codec sees the growing-record shape real runs produce.
                delivered.insert(
                    (
                        NodeId::new(((c as usize + 1) % CLUSTERS) as u16, r as u32),
                        k,
                    ),
                    SeqNum(k),
                );
                let mut ddv = Ddv::zeros(CLUSTERS);
                ddv.set(c as usize, SeqNum(k));
                ddv.set(
                    (c as usize + CLUSTERS - 1) % CLUSTERS,
                    SeqNum(k.saturating_sub(1)),
                );
                let meta = ClcMeta {
                    sn: SeqNum(k),
                    ddv: std::sync::Arc::new(ddv),
                    committed_at: SimTime(k),
                    forced: false,
                };
                let payload = NodeCheckpoint {
                    delivered: delivered.clone(),
                    channel_state: vec![(
                        NodeId::new(c as u16, (r as u32 + 1) % NODES as u32),
                        AppPayload {
                            bytes: 256,
                            tag: node * CLCS + k,
                        },
                    )],
                    app_state: None,
                };
                log.append_commit(node, &meta, &payload)
                    .expect("append CLC");
            }
        }
    }
    log.sync().expect("sync image");
}

/// The timed half: replay the image — segment scan, per-frame CRC
/// checks, delta decode, chain validation and rebuild. "Events" is
/// recovered CLC entries.
fn recovery_from_disk(dir: &std::path::Path) -> u64 {
    let image = storage::recover(dir, &hc3i_core::CheckpointCodec).expect("recover image");
    assert!(image.torn.is_none(), "committed image has no torn tail");
    assert_eq!(image.stores.len(), 2048, "every node chain recovered");
    image.total_entries()
}

/// Same-run machine-speed calibration: a fixed workload whose cost
/// depends only on the host, never on repo code. Every artifact records
/// it alongside the real entries, so the regression gate can compare
/// *normalized* rates (entry events/s divided by same-run calibration
/// iterations/s) between two artifacts recorded on different machines or
/// under different background load. "Events" is iterations.
///
/// Each iteration mixes an integer-ALU step with a data-dependent read
/// from a 16 MiB table. The memory half matters: on a shared host the
/// dominant interference is cache/memory contention, which a pure
/// register spin is blind to (observed here: spin rate steady within 1%
/// while the simulator entries ran 15–40% slower), so a calibration
/// without it cannot normalize away exactly the noise it exists to
/// cancel. The chase is serialized through the running hash, putting the
/// load latency on the critical path like the simulator's own
/// pointer-heavy event dispatch.
fn calibration_spin(iters: u64) -> u64 {
    const TABLE_WORDS: usize = (16 << 20) / 8;
    let mut table = vec![0u64; TABLE_WORDS];
    let mut x = 0x9e3779b97f4a7c15u64;
    for (i, w) in table.iter_mut().enumerate() {
        x = x.wrapping_mul(0xd1342543de82ef95).rotate_left(23) ^ i as u64;
        *w = x;
    }
    for i in 0..iters {
        x = x.wrapping_mul(0xd1342543de82ef95).rotate_left(23) ^ i;
        x ^= table[(x >> 17) as usize & (TABLE_WORDS - 1)];
    }
    std::hint::black_box(x);
    iters
}

/// GC-round micro: per-cluster CLC stores with `clcs` stamped checkpoints
/// each; every round collects each store's `(SN, DDV)` list (`Arc`-shared
/// — the zero-clone path this entry gates), wraps the lists in
/// `Msg::GcDdvList` values the way coordinators answer `GcCollect`, and
/// runs the single-failure safe-minimum analysis over all of them.
/// "Events" is stamps visited per round × rounds.
fn gc_round_micro(clusters: usize, clcs: u64, rounds: u64) -> u64 {
    use hc3i_core::gc;
    use hc3i_core::{Ddv, Msg, SeqNum};
    use storage::{ClcMeta, ClcStore};

    let stores: Vec<ClcStore<()>> = (0..clusters)
        .map(|c| {
            let mut store = ClcStore::new();
            for k in 1..=clcs {
                let mut ddv = Ddv::zeros(clusters);
                ddv.set(c, SeqNum(k));
                // Ring dependency: heard from the left neighbour up to k-1.
                ddv.set((c + clusters - 1) % clusters, SeqNum(k.saturating_sub(1)));
                store.commit(
                    ClcMeta {
                        sn: SeqNum(k),
                        ddv: std::sync::Arc::new(ddv),
                        committed_at: SimTime(k),
                        forced: false,
                    },
                    (),
                );
            }
            store
        })
        .collect();
    let mut stamps = 0u64;
    for _ in 0..rounds {
        let lists: Vec<Vec<(SeqNum, std::sync::Arc<hc3i_core::Ddv>)>> = stores
            .iter()
            .enumerate()
            .map(|(c, s)| {
                // The coordinator's reply message, stamps shared in-process.
                let msg = Msg::GcDdvList {
                    cluster: c,
                    list: s.ddv_list(),
                };
                match msg {
                    Msg::GcDdvList { list, .. } => list,
                    _ => unreachable!(),
                }
            })
            .collect();
        stamps += lists.iter().map(|l| l.len() as u64).sum::<u64>();
        let mins = gc::safe_minimum_sns_k(&lists, 1);
        assert_eq!(std::hint::black_box(mins).len(), clusters);
    }
    stamps
}

/// CLC-commit micro: a cluster whose nodes carry a populated delivery
/// record runs `commits` full two-phase CLC rounds (freeze → fragment
/// fan-out → ack → commit). This is the path the copy-on-write
/// delivered-record and the batched fragment fan-out target: staging used
/// to deep-clone the per-node `delivered` map at every freeze. "Events"
/// is committed CLCs.
fn clc_commit_micro(deliveries: u64, commits: u64) -> u64 {
    use hc3i_core::testkit::InstantFederation;
    use hc3i_core::{AppPayload, ProtocolConfig};

    let mut fed = InstantFederation::new(ProtocolConfig::new(vec![4, 1]));
    // Populate the delivery records of cluster 0's nodes with inter-cluster
    // traffic from cluster 1.
    for k in 0..deliveries {
        fed.app_send(
            NodeId::new(1, 0),
            NodeId::new(0, (k % 4) as u32),
            AppPayload { bytes: 64, tag: k },
        );
    }
    for _ in 0..commits {
        fed.fire_clc_timer(0);
    }
    let (unforced, _) = fed.clc_counts(0);
    assert!(unforced as u64 >= commits);
    commits
}

/// Epoch-barrier micro: the parallel executive on a *window-dense*
/// workload. 8 clusters x 2 nodes across `shards` shards, with enough
/// traffic (mostly intra-cluster, per the paper's communication model)
/// that every 150 µs lookahead window holds work for every shard — the
/// regime where conservative epochs actually overlap. Run at 4 shards
/// (`epoch_barrier`) and 1 shard (`epoch_barrier_seq`) the pair
/// measures pure executive scaling on identical event streams (the
/// merged event counts are byte-identical — the determinism contract);
/// CI's runtime-scale job computes and posts the speedup. On a single
/// core the 4-shard run instead exposes the epoch machinery itself:
/// publish, two barrier crossings, window computation, mailbox push.
fn epoch_barrier_micro(
    secs: u64,
    intra_per_cluster: u64,
    inter_per_pair: u64,
    shards: usize,
) -> u64 {
    const CLUSTERS: usize = 8;
    const NODES: u32 = 2;
    let topo = Topology::new(
        vec![
            ClusterSpec {
                nodes: NODES,
                intra: LinkSpec::myrinet_like(),
            };
            CLUSTERS
        ],
        LinkSpec::ethernet_like(),
    );
    let duration = SimDuration::from_secs(secs);
    let mut counts = vec![vec![0u64; CLUSTERS]; CLUSTERS];
    for (c, row) in counts.iter_mut().enumerate() {
        row[c] = intra_per_cluster;
        row[(c + 1) % CLUSTERS] = inter_per_pair;
    }
    let w = TargetCountWorkload {
        cluster_sizes: vec![NODES; CLUSTERS],
        duration,
        counts,
        payload_bytes: 256,
    };
    let sends = w.schedule(&RngStreams::new(7));
    let cfg = SimConfig::new(topo, duration)
        .with_sends(sends)
        .with_seed(7)
        .with_protocol(ProtocolConfig::new(vec![NODES; CLUSTERS]))
        .with_sim_shards(shards);
    simdriver::run(cfg).events_processed
}

fn run_suite(quick: bool, seed: u64) -> Vec<Entry> {
    let reps = if quick { 1 } else { 3 };
    // Every regression-gated entry (see `gated`) runs best-of-3 even in
    // --quick mode: a single sample on a noisy CI runner can easily sit
    // >20% off the reference-machine baseline and fail the gate spuriously.
    // Each gated run is ~10-15 ms, so the extra reps cost nothing.
    let gated_reps = reps.max(3);
    let mut entries = Vec::new();

    // First so it doubles as a warm-up. Best-of-9: everything normalized
    // against this entry inherits its noise, and what the gate needs from
    // it is the host's quiet-floor rate — stable across runs on one
    // machine, different across machines — not a sample of this run's
    // ambient load (per-entry best-of-N already absorbs load spikes).
    let calib_iters = 1_000_000u64;
    eprintln!("timing calibration ({calib_iters} mix+chase iterations)…");
    entries.push(entry(
        "calibration",
        "machine-speed spin + 16 MiB dependent-load chase (host-only cost; normalizes the gated rates)",
        gated_reps.max(9),
        || calibration_spin(calib_iters),
    ));

    eprintln!("timing event_loop_reference…");
    entries.push(entry(
        "event_loop_reference",
        "2x100 nodes, 10 h, 103 reverse msgs, GC 2 h (~75k events)",
        gated_reps,
        || simdriver::run(reference_config(seed, PiggybackMode::SnOnly)).events_processed,
    ));

    eprintln!("timing event_loop_full_ddv…");
    entries.push(entry(
        "event_loop_full_ddv",
        "same reference workload under FullDdv piggybacking",
        gated_reps,
        || simdriver::run(reference_config(seed, PiggybackMode::FullDdv)).events_processed,
    ));

    eprintln!("timing figure_regen_table1…");
    entries.push(entry(
        "figure_regen_table1",
        "Table 1 regeneration (one reference run)",
        reps,
        || experiments::table1(seed).events_processed,
    ));

    let fig6_axis: &[u64] = if quick { &[30] } else { &[10, 30, 60, 120] };
    eprintln!("timing figure_regen_figure6 ({} points)…", fig6_axis.len());
    entries.push(entry(
        "figure_regen_figure6",
        "Figure 6/7 regeneration (timer sweep)",
        1,
        || {
            experiments::figure6_7(fig6_axis, seed)
                .iter()
                .map(|r| r.events)
                .sum()
        },
    ));

    let scaling_axis: &[usize] = if quick {
        &[2, 4, 8]
    } else {
        &[2, 3, 4, 6, 8, 12]
    };
    eprintln!("timing scaling_ring ({} points)…", scaling_axis.len());
    entries.push(entry(
        "scaling_ring",
        "federation-scaling sweep (ring traffic, 20-node clusters)",
        1,
        || {
            experiments::federation_scaling(scaling_axis, seed)
                .iter()
                .map(|r| r.events)
                .sum()
        },
    ));

    // The channel-backed entries below also keep their full workload in
    // --quick mode: they are gated against full-mode baseline files on
    // events/s, so the workload per event must match.

    // The shard channel in isolation (the serialization point the
    // lock-free MPSC rewrite targets).
    let (pump_senders, pump_msgs) = (4, 100_000);
    eprintln!("timing channel_throughput ({pump_senders}x{pump_msgs} messages)…");
    entries.push(entry(
        "channel_throughput",
        "lock-free MPSC micro: 4 producer threads into one drained channel (msgs, msgs/s)",
        gated_reps,
        || channel_pump(pump_senders, pump_msgs),
    ));

    // The live substrate: the sharded executor end-to-end. Full-size wave
    // in quick mode too: a 2k-message wave is dominated by the fixed
    // spawn/shutdown cost, which made its rate incomparable with full-mode
    // baselines and the regression gate permanently red.
    let wave = 8_000;
    eprintln!("timing runtime_throughput ({wave} messages)…");
    entries.push(entry(
        "runtime_throughput",
        "sharded runtime: 64 nodes on the default pool, ring wave end-to-end (msgs, msgs/s)",
        gated_reps,
        || runtime_wave(wave),
    ));

    // The checkpoint/GC data plane in isolation (the copy-on-write
    // refactor's two hot paths). Full workload in --quick mode too: gated
    // on events/s against full-mode baselines.
    let (gc_clusters, gc_clcs, gc_rounds) = (16, 64, 32);
    eprintln!("timing gc_round ({gc_clusters} clusters x {gc_clcs} CLCs, {gc_rounds} rounds)…");
    entries.push(entry(
        "gc_round",
        "GC round micro: Arc-shared DDV-list collection + k=1 safe-minimum analysis (stamps, stamps/s)",
        gated_reps,
        || gc_round_micro(gc_clusters, gc_clcs, gc_rounds),
    ));

    let (ckpt_deliveries, ckpt_commits) = (512, 2048);
    eprintln!("timing clc_commit ({ckpt_deliveries} deliveries, {ckpt_commits} commits)…");
    entries.push(entry(
        "clc_commit",
        "CLC 2PC micro: 4-node cluster, populated delivery record, full freeze/commit rounds (commits, commits/s)",
        gated_reps,
        || clc_commit_micro(ckpt_deliveries, ckpt_commits),
    ));

    // The parallel executive on a window-dense workload, at 4 shards and
    // at 1, same event stream. Recorded, not rate-gated (parallel wall
    // time depends on the runner's core count, so a rate gate against a
    // reference-machine baseline would be meaningless); CI's
    // runtime-scale job asserts wall ceilings on both and posts the
    // 4-shard speedup to the job summary.
    let (barrier_secs, barrier_intra, barrier_inter) = (1u64, 50_000u64, 6_000u64);
    eprintln!(
        "timing epoch_barrier ({barrier_secs} sim-seconds, {barrier_intra} intra + {barrier_inter} inter sends/cluster on 4 shards)…"
    );
    entries.push(entry(
        "epoch_barrier",
        "epoch-barrier micro: 4-shard executive on a window-dense 8x2 federation (events, events/s)",
        1,
        || epoch_barrier_micro(barrier_secs, barrier_intra, barrier_inter, 4),
    ));
    eprintln!("timing epoch_barrier_seq (same workload, sequential executive)…");
    entries.push(entry(
        "epoch_barrier_seq",
        "the epoch_barrier workload on the sequential executive (events, events/s)",
        1,
        || epoch_barrier_micro(barrier_secs, barrier_intra, barrier_inter, 1),
    ));

    // The crash-recovery data plane: rebuild 2048 node chains from a
    // committed segment log. The image is built once, outside the timed
    // region (manual sync, single segment); every rep replays the same
    // on-disk bytes, so the entry isolates `storage::recover` — the cost
    // a federation pays between a hard kill and serving again. Same image
    // in --quick mode: gated on entries/s against full-mode baselines.
    let recovery_dir =
        std::env::temp_dir().join(format!("hc3i-bench-recovery-{}", std::process::id()));
    eprintln!("building recovery image (2048 nodes x 12 CLCs)…");
    build_recovery_image(&recovery_dir);
    eprintln!("timing recovery_from_disk…");
    entries.push(entry(
        "recovery_from_disk",
        "durable-log recovery: 2048-node (128x16) segment log replayed to CLC chains (entries, entries/s)",
        gated_reps,
        || recovery_from_disk(&recovery_dir),
    ));
    let _ = std::fs::remove_dir_all(&recovery_dir);

    // North-star smoke: a 100-cluster federation runs to completion.
    let wide = if quick { (32usize, 1u64) } else { (100, 2) };
    eprintln!("timing scaling_wide ({} clusters)…", wide.0);
    entries.push(entry(
        if quick {
            "scaling_32_clusters"
        } else {
            "scaling_100_clusters"
        },
        "wide-federation ring (4-node clusters) to completion",
        gated_reps,
        || simdriver::run(ring_config(wide.0, 4, wide.1, seed)).events_processed,
    ));

    // Order-of-magnitude scale: 1024 clusters of 100 nodes = 102,400
    // engines through the calendar executive to completion. Same size in
    // both modes (it is the artifact CI's runtime-scale job asserts on),
    // single rep: at seconds of wall per run the relative timer noise is
    // already far below the gate threshold.
    let (mega_clusters, mega_nodes) = (1024usize, 100u32);
    eprintln!(
        "timing scaling_mega ({mega_clusters}x{mega_nodes} = {} nodes)…",
        mega_clusters as u32 * mega_nodes
    );
    entries.push(entry(
        "scaling_mega",
        "mega-federation ring (1024 clusters x 100 nodes) to completion",
        1,
        || simdriver::run(ring_config(mega_clusters, mega_nodes, 1, seed)).events_processed,
    ));

    // The same 102,400-node ring on the 4-shard parallel executive. The
    // merged report is byte-identical to the sequential one (same
    // events count — the determinism contract), so the pair measures
    // pure executive speedup on one workload. Recorded, not rate-gated,
    // for the same single-rep noise reason as `scaling_mega`; CI's
    // runtime-scale job computes and posts the speedup.
    eprintln!("timing scaling_mega_par (same ring at --sim-shards 4)…");
    entries.push(entry(
        "scaling_mega_par",
        "mega-federation ring on the 4-shard parallel executive (same workload as scaling_mega)",
        1,
        || {
            simdriver::run(ring_config(mega_clusters, mega_nodes, 1, seed).with_sim_shards(4))
                .events_processed
        },
    ));

    entries
}

// ---- artifact writers ------------------------------------------------------

/// Which dependency world produced these numbers: the offline vendored
/// stand-ins, or the crates.io versions swapped in by the real-deps
/// overlay. Stamped into both artifacts so CI's feature-matrix job can
/// compare the two worlds' measurements side by side.
fn deps_world() -> &'static str {
    if cfg!(feature = "real-deps") {
        "crates.io"
    } else {
        "vendored"
    }
}

fn json(entries: &[Entry], quick: bool, seed: u64, old: Option<&[OldEntry]>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(s, "  \"deps\": \"{}\",", deps_world());
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let before = old.and_then(|o| o.iter().find(|o| o.name == e.name).map(|o| o.wall_ms));
        s.push_str("    {");
        let _ = write!(
            s,
            "\"name\": \"{}\", \"wall_ms\": {:.2}, \"events\": {}, \"events_per_sec\": {:.0}",
            e.name, e.wall_ms, e.events, e.events_per_sec
        );
        if let Some(b) = before {
            let _ = write!(
                s,
                ", \"before_wall_ms\": {:.2}, \"speedup\": {:.2}",
                b,
                b / e.wall_ms
            );
        }
        s.push('}');
        s.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn markdown(entries: &[Entry], quick: bool, seed: u64, old: Option<&[OldEntry]>) -> String {
    let mut s = String::new();
    s.push_str("# Bench baselines\n\n");
    let _ = writeln!(
        s,
        "Recorded by `cargo run --release -p hc3i-bench --bin hc3i_baselines`\n\
         (mode: {}, deps: {}, seed: {seed}, best-of-N wall times on the\n\
         reference machine that produced `BASELINES.json`). Rerun with\n\
         `--compare BASELINES.json` after a perf change to get before/after\n\
         columns.\n",
        if quick { "quick" } else { "full" },
        deps_world()
    );
    if old.is_some() {
        s.push_str(
            "| entry | what | before (ms) | after (ms) | speedup | events | events/s |\n\
             |---|---|---:|---:|---:|---:|---:|\n",
        );
    } else {
        s.push_str(
            "| entry | what | wall (ms) | events | events/s |\n\
             |---|---|---:|---:|---:|\n",
        );
    }
    for e in entries {
        let before = old.and_then(|o| o.iter().find(|o| o.name == e.name).map(|o| o.wall_ms));
        match before {
            Some(b) => {
                let _ = writeln!(
                    s,
                    "| `{}` | {} | {:.1} | {:.1} | {:.2}x | {} | {:.0} |",
                    e.name,
                    e.what,
                    b,
                    e.wall_ms,
                    b / e.wall_ms,
                    e.events,
                    e.events_per_sec
                );
            }
            // In compare mode an entry absent from the old recording (a
            // newly added bench) still has to fill all seven columns.
            None if old.is_some() => {
                let _ = writeln!(
                    s,
                    "| `{}` | {} | — | {:.1} | new | {} | {:.0} |",
                    e.name, e.what, e.wall_ms, e.events, e.events_per_sec
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "| `{}` | {} | {:.1} | {} | {:.0} |",
                    e.name, e.what, e.wall_ms, e.events, e.events_per_sec
                );
            }
        }
    }
    s.push_str(
        "\n## Parallel-executive entries\n\n\
         The four scaling entries are single-rep wall-time recordings, not\n\
         rate-gated (see `gated` in the source); CI's `runtime-scale` job\n\
         asserts their wall-clock ceilings and posts the measured speedups\n\
         to the job summary.\n\n\
         `epoch_barrier` / `epoch_barrier_seq` run the *same* window-dense\n\
         8x2 federation (identical event counts prove the executives replay\n\
         one schedule) on the 4-shard epoch-barrier executive and the\n\
         sequential engine. The workload packs tens of events per shard per\n\
         lookahead window, so shard threads dominate barrier cost and the\n\
         pair measures real executive scaling on a multi-core host.\n\n\
         `scaling_mega` / `scaling_mega_par` are the 102,400-node ring on\n\
         one core and on 4 shards. Mega's uniform-sparse send schedule\n\
         averages about one busy shard per conservative window, so its\n\
         speedup is a property of the *workload*, not the executive —\n\
         window-dense traffic (above) is where the shards pay off. Both\n\
         entries exist so CI can bound the wall clock of each path.\n",
    );
    s
}

/// One entry of a previous `BASELINES.json`, as far as the regression gate
/// and the before/after columns need it.
struct OldEntry {
    name: String,
    wall_ms: f64,
    events_per_sec: f64,
}

/// Extract a numeric field from one flat-JSON entry line.
fn parse_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)?;
    let s: String = line[at + tag.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    s.parse().ok()
}

/// Parse a previous `BASELINES.json` (the flat line-per-entry format
/// written by this binary; no external JSON dependency in the offline
/// workspace).
fn parse_old(json: &str) -> Vec<OldEntry> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = rest[..name_end].to_string();
        let Some(wall_ms) = parse_field(line, "wall_ms") else {
            continue;
        };
        out.push(OldEntry {
            name,
            wall_ms,
            events_per_sec: parse_field(line, "events_per_sec").unwrap_or(0.0),
        });
    }
    out
}

// ---- regression gate -------------------------------------------------------

/// Entries the CI regression gate protects: the sharded-runtime and channel
/// hot paths, the simulator event loop, the figure-regeneration sweep, the
/// checkpoint/GC data-plane micros (zero-clone GC stamp lists +
/// copy-on-write CLC staging), the durable-log recovery replay, and the
/// calendar-queue scale sweep. Deliberately absent: `calibration` (it is
/// the normalizer, not a measurement of repo code);
/// `scaling_mega`/`scaling_mega_par` (a single rep lasting seconds
/// samples so much ambient load that its rate swings >2x between
/// identical runs on a busy host); and
/// `epoch_barrier`/`epoch_barrier_seq` (the 4-shard wall depends on the
/// runner's core count, so a rate gate against a reference-machine
/// baseline would flap). All four scaling entries are instead gated by
/// the wall-clock ceilings in CI's runtime-scale job, which a
/// complexity-class regression cannot hide from.
fn gated(name: &str) -> bool {
    name.starts_with("event_loop")
        || name == "runtime_throughput"
        || name == "channel_throughput"
        || name == "gc_round"
        || name == "clc_commit"
        || name == "recovery_from_disk"
        || name == "figure_regen_figure6"
        || name == "scaling_100_clusters"
}

/// Gate threshold for *normalized* comparisons (both artifacts carry a
/// `calibration` entry): dividing each rate by the same-run calibration
/// floor cancels the machine-speed gap between the recording host and
/// the judging host, so the gate no longer needs headroom for "CI runner
/// slower than reference VM" and can sit tighter than the raw-rate 20%.
/// Not zero-headroom, though: the normalized ratio still carries the
/// entries' own best-of-N timer jitter plus the calibration's residual
/// run-to-run wobble (a few percent each).
const NORMALIZED_GATE: f64 = 0.15;

/// Compare gated entries against the old baselines; return the offenders as
/// `(name, metric, regression)` where `regression` is the fractional
/// slowdown (0.25 = 25% worse). Rates are preferred over wall times so
/// `--quick` runs (smaller workloads, same per-event cost) gate cleanly
/// against full-mode baseline files; rates are normalized by the same-run
/// `calibration` rate whenever both sides recorded one (see
/// [`NORMALIZED_GATE`]).
fn regressions(entries: &[Entry], old: &[OldEntry], threshold: f64) -> Vec<(String, String, f64)> {
    let cal_new = entries
        .iter()
        .find(|e| e.name == "calibration")
        .map(|e| e.events_per_sec)
        .filter(|r| *r > 0.0);
    let cal_old = old
        .iter()
        .find(|o| o.name == "calibration")
        .map(|o| o.events_per_sec)
        .filter(|r| *r > 0.0);
    let mut out = Vec::new();
    for e in entries.iter().filter(|e| gated(e.name)) {
        let Some(o) = old.iter().find(|o| o.name == e.name) else {
            continue;
        };
        let (slowdown, metric, limit) = if e.events_per_sec > 0.0 && o.events_per_sec > 0.0 {
            if let (Some(cn), Some(co)) = (cal_new, cal_old) {
                let (new_norm, old_norm) = (e.events_per_sec / cn, o.events_per_sec / co);
                (
                    old_norm / new_norm - 1.0,
                    format!(
                        "{:.0} -> {:.0} events/s ({:.4} -> {:.4} normalized)",
                        o.events_per_sec, e.events_per_sec, old_norm, new_norm
                    ),
                    threshold.min(NORMALIZED_GATE),
                )
            } else {
                (
                    o.events_per_sec / e.events_per_sec - 1.0,
                    format!(
                        "{:.0} -> {:.0} events/s",
                        o.events_per_sec, e.events_per_sec
                    ),
                    threshold,
                )
            }
        } else {
            (
                e.wall_ms / o.wall_ms - 1.0,
                format!("{:.1} -> {:.1} ms", o.wall_ms, e.wall_ms),
                threshold,
            )
        };
        if slowdown > limit {
            out.push((e.name.to_string(), metric, slowdown));
        }
    }
    out
}

// ---- determinism fingerprint ----------------------------------------------

/// Debug-dump a set of seeded reference runs. Any code change that
/// preserves the determinism contract must reproduce this file
/// byte-for-byte — and so must any `sim_shards` value: CI diffs the
/// artifact across shard counts {1, 2, 4, 8}.
fn fingerprint(sim_shards: usize) -> String {
    let mut s = String::new();
    for seed in [20040426u64, 7, 424242] {
        let r = simdriver::run(
            reference_config(seed, PiggybackMode::SnOnly).with_sim_shards(sim_shards),
        );
        let _ = writeln!(s, "reference sn_only seed={seed}\n{r:#?}\n");
        let r = simdriver::run(
            reference_config(seed, PiggybackMode::FullDdv).with_sim_shards(sim_shards),
        );
        let _ = writeln!(s, "reference full_ddv seed={seed}\n{r:#?}\n");
    }
    // Faulty run: rollback + alert + replay paths.
    let mut cfg = reference_config(20040426, PiggybackMode::SnOnly).with_sim_shards(sim_shards);
    for h in 1..8u64 {
        cfg = cfg.with_fault(
            SimTime::ZERO + SimDuration::from_minutes(h * 60 + 11),
            NodeId::new((h % 2) as u16, (h * 13 % 100) as u32),
        );
    }
    let r: RunReport = simdriver::run(cfg);
    let _ = writeln!(s, "reference faulty seed=20040426\n{r:#?}\n");
    // Wide ring: many clusters, forced-CLC heavy.
    let r = simdriver::run(ring_config(12, 4, 2, 20040426).with_sim_shards(sim_shards));
    let _ = writeln!(s, "ring 12x4 seed=20040426\n{r:#?}\n");
    // Hostile ring: duplication + reordering + a lossy wire behind the
    // reliable transport. The hostile ledger is fingerprinted alongside
    // the report, so the per-pair RNG streams and canonical inbox
    // ordering must hold shard-invariantly too.
    let spec = HostileSpec::seeded(20040426)
        .with_duplication(0.10, SimDuration::from_millis(1))
        .with_reorder(0.10, SimDuration::from_micros(500))
        .with_loss(0.05);
    let cfg = ring_config(6, 4, 1, 20040426)
        .with_hostile(spec)
        .with_reliable_transport()
        .with_sim_shards(sim_shards);
    let (r, h) = simdriver::run_hostile(cfg);
    let _ = writeln!(s, "ring hostile 6x4 seed=20040426\n{r:#?}\n{h:#?}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json_path = None;
    let mut md_path = None;
    let mut compare_path = None;
    let mut fingerprint_path = None;
    let mut fail_on_regression = None;
    let mut sim_shards = 1usize;
    let mut seed = experiments::DEFAULT_SEED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = it.next().cloned(),
            "--md" => md_path = it.next().cloned(),
            "--compare" => compare_path = it.next().cloned(),
            "--fingerprint" => fingerprint_path = it.next().cloned(),
            "--fail-on-regression" => {
                fail_on_regression = Some(
                    it.next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .expect("--fail-on-regression needs a fraction, e.g. 0.20"),
                )
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer")
            }
            "--sim-shards" => {
                sim_shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|k| *k > 0)
                    .expect("--sim-shards needs a positive integer")
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = fingerprint_path {
        eprintln!("writing determinism fingerprint to {path} (sim-shards {sim_shards})…");
        std::fs::write(&path, fingerprint(sim_shards)).expect("write fingerprint");
        // A fingerprint-only invocation (CI diffs several shard counts)
        // skips the timing suite entirely.
        if json_path.is_none() && md_path.is_none() && compare_path.is_none() {
            return;
        }
    }

    let old_pairs = compare_path.map(|p| {
        let text = std::fs::read_to_string(&p).expect("read --compare file");
        parse_old(&text)
    });
    let old = old_pairs.as_deref();

    let entries = run_suite(quick, seed);
    let json_text = json(&entries, quick, seed, old);
    let md_text = markdown(&entries, quick, seed, old);
    print!("{md_text}");
    if let Some(p) = json_path {
        std::fs::write(&p, &json_text).expect("write json");
        eprintln!("wrote {p}");
    }
    if let Some(p) = md_path {
        std::fs::write(&p, &md_text).expect("write md");
        eprintln!("wrote {p}");
    }

    if let Some(threshold) = fail_on_regression {
        let old = old.expect("--fail-on-regression requires --compare OLD.json");
        let offenders = regressions(&entries, old, threshold);
        if offenders.is_empty() {
            eprintln!(
                "regression gate OK: no gated entry more than {:.0}% worse than the baseline \
                 ({:.0}% for calibration-normalized rates)",
                threshold * 100.0,
                (threshold.min(NORMALIZED_GATE)) * 100.0
            );
        } else {
            for (name, metric, slowdown) in &offenders {
                eprintln!(
                    "REGRESSION {name}: {metric} ({:.0}% worse, threshold {:.0}%)",
                    slowdown * 100.0,
                    threshold * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}
