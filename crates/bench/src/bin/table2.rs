//! Regenerate Table 2: stored CLCs before/after each GC (two clusters).
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let report = experiments::table2(seed);
    print!(
        "{}",
        render::gc_table(
            "Table 2: Number of stored CLCs (2 clusters, GC every 2 h)",
            &report
        )
    );
}
