//! Ablation: HC3I vs global-coordinated vs independent vs pessimistic log.
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let rows = experiments::ablation_protocols(seed);
    print!("{}", render::ablation_protocols(&rows));
}
