//! Regenerate Table 3: stored CLCs before/after each GC (three clusters).
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let report = experiments::table3(seed);
    print!(
        "{}",
        render::gc_table(
            "Table 3: Number of stored CLCs (3 clusters, GC every 2 h)",
            &report
        )
    );
}
