//! Regenerate Figure 6: CLC counts in cluster 0 vs cluster-0 timer.
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let rows = experiments::figure6_7(&experiments::figure6_delays(), seed);
    print!("{}", render::figure6(&rows));
}
