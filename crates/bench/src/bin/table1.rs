//! Regenerate Table 1: application message counts of the reference workload.
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let report = experiments::table1(seed);
    print!("{}", render::table1(&report));
}
