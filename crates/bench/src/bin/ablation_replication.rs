//! Ablation: stable-storage replication degree (paper §7 extension).
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let rows = experiments::ablation_replication(&[1, 2, 3, 4], seed);
    print!("{}", render::ablation_replication(&rows));
}
