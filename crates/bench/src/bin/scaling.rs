//! Federation-scaling sensitivity sweep.
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let rows = experiments::federation_scaling(&[2, 3, 4, 6, 8, 12], seed);
    print!("{}", render::scaling(&rows));
}
