//! Regenerate the paper's section 5.2 overhead analysis.
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let rows = experiments::overhead_breakdown(
        &[None, Some(120), Some(60), Some(30), Some(15), Some(5)],
        seed,
    );
    print!("{}", render::overhead(&rows));
}
