//! Regenerate Figure 9: forced CLCs vs reverse-direction traffic.
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let rows = experiments::figure9(&experiments::figure9_counts(), seed);
    print!("{}", render::figure9(&rows));
}
