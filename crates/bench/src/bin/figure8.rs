//! Regenerate Figure 8: impact of cluster-1 timer on both clusters.
use hc3i_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(experiments::DEFAULT_SEED);
    let rows = experiments::figure8(&experiments::figure8_delays(), seed);
    print!("{}", render::figure8(&rows));
}
