//! # hc3i-bench — the paper's evaluation, regenerated
//!
//! One function per table and figure of the paper (module
//! [`experiments`]), plain-text renderers in the paper's row format
//! (module [`render`]), regenerator binaries (`cargo run -p hc3i-bench
//! --release --bin figure6` etc.) and Criterion benches
//! (`cargo bench -p hc3i-bench`).

#![warn(missing_docs)]

pub mod experiments;
pub mod render;
