//! Plain-text rendering of experiment results, in the paper's row format.

use crate::experiments::{
    DdvAblationRow, Fig67Row, Fig8Row, Fig9Row, OverheadRow, ProtocolRow, ReplicationRow,
    ScalingRow,
};
use simdriver::RunReport;

/// Render Table 1 (application message counts).
pub fn table1(report: &RunReport) -> String {
    format!(
        "Table 1: Application messages (reference workload)\n{}",
        report.format_app_matrix()
    )
}

/// Render Figure 6 (cluster-0 CLC counts vs cluster-0 timer).
pub fn figure6(rows: &[Fig67Row]) -> String {
    let mut s = String::from(
        "Figure 6: Interval Between CLCs Influence in Cluster 0\n\
         delay_min  unforced  forced  total\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>9}  {:>8}  {:>6}  {:>5}\n",
            r.delay_min,
            r.c0_unforced,
            r.c0_forced,
            r.c0_unforced + r.c0_forced
        ));
    }
    s
}

/// Render Figure 7 (cluster-1 CLC counts vs cluster-0 timer).
pub fn figure7(rows: &[Fig67Row]) -> String {
    let mut s = String::from(
        "Figure 7: Interval Between CLCs Influence in Cluster 1\n\
         delay_min  unforced  forced  total\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>9}  {:>8}  {:>6}  {:>5}\n",
            r.delay_min,
            r.c1_unforced,
            r.c1_forced,
            r.c1_unforced + r.c1_forced
        ));
    }
    s
}

/// Render Figure 8 (impact of cluster-1 timer on both clusters).
pub fn figure8(rows: &[Fig8Row]) -> String {
    let mut s = String::from(
        "Figure 8: Increasing the Number of CLCs in Cluster 1\n\
         c1_delay_min  c0_total  c1_total  c1_forced\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>12}  {:>8}  {:>8}  {:>9}\n",
            r.c1_delay_min, r.c0_total, r.c1_total, r.c1_forced
        ));
    }
    s
}

/// Render Figure 9 (communication-pattern sweep).
pub fn figure9(rows: &[Fig9Row]) -> String {
    let mut s = String::from(
        "Figure 9: Increasing Communication from Cluster 1 to Cluster 0\n\
         msgs_1to0  c0_total  c0_forced  c1_total  c1_forced\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>9}  {:>8}  {:>9}  {:>8}  {:>9}\n",
            r.reverse_msgs, r.c0_total, r.c0_forced, r.c1_total, r.c1_forced
        ));
    }
    s
}

/// Render Tables 2/3 (stored CLCs before/after each garbage collection).
pub fn gc_table(title: &str, report: &RunReport) -> String {
    let mut s = format!("{title}\n");
    let n = report.clusters.len();
    let collections = report
        .clusters
        .iter()
        .map(|c| c.gc_before_after.len())
        .max()
        .unwrap_or(0);
    s.push_str("gc#  ");
    for c in 0..n {
        s.push_str(&format!("cluster{c}_before  cluster{c}_after  "));
    }
    s.push('\n');
    for k in 0..collections {
        s.push_str(&format!("{:>3}  ", k + 1));
        for c in 0..n {
            match report.clusters[c].gc_before_after.get(k) {
                Some(&(before, after)) => {
                    s.push_str(&format!("{before:>15}  {after:>14}  "));
                }
                None => s.push_str(&format!("{:>15}  {:>14}  ", "-", "-")),
            }
        }
        s.push('\n');
    }
    s
}

/// Render the SnOnly-vs-FullDdv ablation.
pub fn ablation_ddv(rows: &[DdvAblationRow]) -> String {
    let mut s = String::from(
        "Ablation: dependency piggybacking (paper §7 extension)\n\
         clusters  forced_sn_only  forced_full_ddv  reduction\n",
    );
    for r in rows {
        let reduction = if r.forced_sn_only == 0 {
            0.0
        } else {
            100.0 * (r.forced_sn_only.saturating_sub(r.forced_full_ddv)) as f64
                / r.forced_sn_only as f64
        };
        s.push_str(&format!(
            "{:>8}  {:>14}  {:>15}  {:>8.1}%\n",
            r.clusters, r.forced_sn_only, r.forced_full_ddv, reduction
        ));
    }
    s
}

/// Render the cross-protocol ablation.
pub fn ablation_protocols(rows: &[ProtocolRow]) -> String {
    let mut s = String::from(
        "Ablation: protocol families on the reference workload (2 faults)\n\
         protocol            ckpts  proto_msgs  scope  lost_node_s  peak_log_bytes\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<18}  {:>5}  {:>10}  {:>5.2}  {:>11.0}  {:>14}\n",
            r.protocol,
            r.checkpoints,
            r.protocol_messages,
            r.mean_rollback_scope,
            r.lost_node_seconds,
            r.peak_log_bytes
        ));
    }
    s
}

/// Render the replication-degree ablation.
pub fn ablation_replication(rows: &[ReplicationRow]) -> String {
    let mut s = String::from(
        "Ablation: stable-storage replication degree (paper §7 extension)\n\
         degree  guaranteed_faults  copies_per_clc  triple_fault_survival\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>6}  {:>17}  {:>14}  {:>20.3}\n",
            r.degree, r.guaranteed_faults, r.copies_per_clc, r.random_triple_fault_survival
        ));
    }
    s
}

/// Render the §5.2 overhead breakdown.
pub fn overhead(rows: &[OverheadRow]) -> String {
    let mut s = String::from(
        "Overhead breakdown (paper 5.2): network and storage cost vs CLC frequency\n\
         timer  clcs  app_MB  proto_MB  ack_KB  proto_msgs  peak_stored  peak_logged\n",
    );
    for r in rows {
        let timer = match r.delay_min {
            Some(d) => format!("{d}m"),
            None => "inf".to_string(),
        };
        s.push_str(&format!(
            "{:>5}  {:>4}  {:>6.1}  {:>8.1}  {:>6.1}  {:>10}  {:>11}  {:>11}\n",
            timer,
            r.total_clcs,
            r.app_bytes as f64 / 1e6,
            r.protocol_bytes as f64 / 1e6,
            r.ack_bytes as f64 / 1e3,
            r.protocol_messages,
            r.peak_stored,
            r.peak_logged
        ));
    }
    s
}

/// Render the federation-scaling sweep.
pub fn scaling(rows: &[ScalingRow]) -> String {
    let mut s = String::from(
        "Federation scaling: ring workload, 20 nodes per cluster, 10 h\n\
         clusters  total_clcs  forced  proto_msgs    events  ddv_bytes\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>8}  {:>10}  {:>6}  {:>10}  {:>8}  {:>9}\n",
            r.clusters, r.total_clcs, r.forced_clcs, r.protocol_messages, r.events, r.ddv_bytes
        ));
    }
    s
}
