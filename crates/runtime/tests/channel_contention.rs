//! Cross-shard channel contention: every shard worker hammers every other
//! shard's mailbox channel while the controller injects an all-to-all
//! traffic storm from outside.
//!
//! This is the workload the lock-free MPSC channel exists for: with the
//! old `Mutex<VecDeque>`+`Condvar` stand-in, each cross-shard `send`
//! serialized on the destination shard's lock, so a worker pool larger
//! than one degraded into lock convoys under all-to-all traffic. The
//! assertions are the channel contract the runtime builds on — every
//! message delivered **exactly once**, the federation coherent afterwards
//! — checked under deliberately oversubscribed concurrency (8 shard
//! workers regardless of the host's core count).
//!
//! The full-size storm is `--ignored` (run by CI's runtime-scale job):
//!
//! ```text
//! cargo test --release -p runtime --test channel_contention -- --ignored --nocapture
//! ```

use hc3i_core::AppPayload;
use netsim::NodeId;
use runtime::{Federation, RtEvent, RuntimeConfig};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// All-to-all storm: `msgs` messages fan out so consecutive sends target
/// *different* destination clusters (and thus, with cluster-major
/// round-robin assignment, different shards), then every delivery is
/// awaited and counted. Panics on any lost or duplicated message.
fn all_to_all_storm(clusters: usize, per_cluster: u32, shards: usize, msgs: u64) {
    let t0 = Instant::now();
    let fed =
        Federation::spawn(RuntimeConfig::manual(vec![per_cluster; clusters]).with_shards(shards));

    for k in 0..msgs {
        let c = (k as usize % clusters) as u16;
        let r = (k as u32 / 11) % per_cluster;
        // Stride over all other clusters, not just the ring neighbour, so
        // every (shard, shard) pair carries traffic.
        let stride = 1 + (k as usize / clusters) % (clusters - 1);
        let to_c = ((c as usize + stride) % clusters) as u16;
        let to_r = (r + 5) % per_cluster;
        fed.send_app(
            NodeId::new(c, r),
            NodeId::new(to_c, to_r),
            AppPayload { bytes: 64, tag: k },
        );
    }

    let mut delivered: HashMap<u64, u32> = HashMap::with_capacity(msgs as usize);
    fed.wait_for(Duration::from_secs(180), |e| {
        if let RtEvent::Delivered { payload, .. } = e {
            *delivered.entry(payload.tag).or_insert(0) += 1;
        }
        delivered.len() as u64 == msgs
    })
    .unwrap_or_else(|| {
        panic!(
            "storm lost messages: {} of {msgs} delivered after timeout",
            delivered.len()
        )
    });

    // Flush protocol stragglers, then scan everything still in the event
    // stream for duplicate deliveries before shutting down.
    fed.quiesce(2, Duration::from_secs(30));
    for e in fed.drain_events() {
        if let RtEvent::Delivered { payload, .. } = e {
            *delivered.entry(payload.tag).or_insert(0) += 1;
        }
    }
    let dups: Vec<u64> = delivered
        .iter()
        .filter(|&(_, &n)| n != 1)
        .map(|(&tag, _)| tag)
        .collect();
    assert!(
        dups.is_empty(),
        "{} messages delivered more than once (first few: {:?})",
        dups.len(),
        &dups[..dups.len().min(8)]
    );
    fed.shutdown();
    eprintln!(
        "contention storm: {msgs} messages across {} nodes on {shards} shards, exactly-once, in {:.1?}",
        clusters * per_cluster as usize,
        t0.elapsed()
    );
}

/// Default-run floor: a small all-to-all storm on an oversubscribed pool,
/// so every `cargo test` exercises concurrent cross-shard sends.
#[test]
fn small_storm_is_exactly_once() {
    all_to_all_storm(4, 4, 4, 4_000);
}

/// The full contention storm: 128 nodes on 8 workers (oversubscribed on
/// most CI hosts — maximum interleaving), 100k messages, every (shard,
/// shard) pair loaded.
#[test]
#[ignore = "contention scale: 100k cross-shard messages; run explicitly"]
fn cross_shard_contention_storm_is_exactly_once() {
    all_to_all_storm(8, 16, 8, 100_000);
}
